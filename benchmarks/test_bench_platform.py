"""Benchmark: study-platform resume — cold grid run vs warm store pass.

The content-addressed store's contract is that an identical re-run
recomputes nothing; this bench times the warm side (probe + digest
verification + in-order merge, no scheduling work) against a freshly
populated store and asserts the 100% cache-hit, bit-identical replay
the resumable CLI relies on.
"""

from repro.core.strategy import StrategyType
from repro.experiments.study import (ApplicationStudyConfig,
                                     application_grid)
from repro.platform import ResultStore


def test_bench_platform_warm_resume(benchmark, one_shot, tmp_path):
    config = ApplicationStudyConfig(
        seed=2009, n_jobs=50,
        stypes=(StrategyType.S1, StrategyType.S3))
    store = ResultStore(tmp_path / "store")
    cold = application_grid(config).run(store=store)

    warm = benchmark.pedantic(
        lambda: application_grid(config).run(store=store), **one_shot)

    assert cold.meta["computed"] == cold.meta["total"] == 4
    assert warm.meta["cached"] == warm.meta["total"] == 4
    assert warm.meta["computed"] == warm.meta["corrupt"] == 0
    assert warm.rows == cold.rows
