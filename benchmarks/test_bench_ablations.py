"""Benchmarks: design ablations.

* abl-dp — the DP critical works method versus greedy / HEFT /
  independent-task min-min;
* abl-strategy — strategy completeness (S1 vs MS1): generation expense
  versus coverage.
"""

from repro.experiments.abl_baselines import run as run_baselines
from repro.experiments.abl_strategy_size import run as run_strategy_size


def test_bench_abl_dp_baselines(benchmark, one_shot):
    table = benchmark.pedantic(run_baselines,
                               kwargs={"n_jobs": 40, "seed": 2009},
                               **one_shot)
    rows = table.row_map("scheduler")
    assert rows["critical-works"]["admissible %"] > 0
    for name in ("greedy", "heft"):
        if rows[name]["admissible %"] > 0:
            assert (rows["critical-works"]["mean CF"]
                    <= rows[name]["mean CF"] * 1.1)


def test_bench_abl_strategy_completeness(benchmark, one_shot):
    table = benchmark.pedantic(run_strategy_size,
                               kwargs={"n_jobs": 40, "seed": 2009},
                               **one_shot)
    rows = table.row_map("strategy")
    assert rows["S1"]["mean expense"] > rows["MS1"]["mean expense"]
