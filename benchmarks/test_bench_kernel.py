"""Micro-benchmarks of the substrates under the experiments.

These are not paper figures; they size the building blocks so a change
that slows a substrate shows up here before it stretches the studies.
"""

from repro.core.calendar import ReservationCalendar
from repro.core.critical_works import CriticalWorksScheduler
from repro.local.profile import AvailabilityProfile
from repro.sim import Environment
from repro.workload.paper_example import fig2_job, fig2_pool


def test_bench_des_event_throughput(benchmark):
    """A ping-pong of 10k timeout events through the DES kernel."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(1)

        env.process(ticker(env))
        env.run()
        return env.now

    assert benchmark(run) == 10_000


def test_bench_calendar_reserve_release(benchmark):
    """1k disjoint reservations plus window queries."""

    def run():
        calendar = ReservationCalendar()
        for index in range(1_000):
            calendar.reserve(index * 3, index * 3 + 2, tag=f"r{index}")
        return len(calendar.free_windows(0, 3_000))

    assert benchmark(run) == 1_000


def test_bench_profile_backfill_queries(benchmark):
    """1k earliest-start queries against a fragmenting profile."""

    def run():
        profile = AvailabilityProfile(16)
        total = 0
        for index in range(1_000):
            start = profile.earliest_start(duration=3 + index % 5,
                                           width=1 + index % 4,
                                           from_=index % 50)
            profile.add(start, 3 + index % 5, 1 + index % 4)
            total += start
        return total

    assert benchmark(run) > 0


def test_bench_calendar_query_path(benchmark):
    """2k conflicts/earliest-fit probes against a 1k-reservation calendar.

    Exercises the bisect-based query path; before the lazy rewrite this
    walked (and for ``conflicts`` copied) long reservation prefixes.
    """
    calendar = ReservationCalendar()
    for index in range(1_000):
        calendar.reserve(index * 5, index * 5 + 3, tag=f"r{index}")

    def run():
        hits = 0
        for index in range(2_000):
            hits += len(calendar.conflicts(index * 2, index * 2 + 4))
            calendar.earliest_fit(2, earliest=index, deadline=index + 5_000)
        return hits

    assert benchmark(run) > 0


def test_bench_calendar_cow_snapshots(benchmark):
    """What-if snapshots of a large calendar, only a few ever mutated.

    The critical-works scheduler's ``_attempt`` takes exactly this
    shape: many copies, most discarded untouched.  Copy-on-write makes
    the untouched ones O(1).
    """
    calendar = ReservationCalendar()
    for index in range(1_000):
        calendar.reserve(index * 4, index * 4 + 2, tag=f"r{index}")

    def run():
        mutated = 0
        for index in range(200):
            clone = calendar.copy()
            if index % 20 == 0:  # a collision forces a real write
                clone.reserve(index * 4 + 2, index * 4 + 3, tag="retry")
                mutated += 1
        return mutated

    assert benchmark(run) == 10


def test_bench_critical_works_fig2(benchmark):
    """One full critical-works run on the Fig. 2 job."""
    pool = fig2_pool()
    job = fig2_job()
    scheduler = CriticalWorksScheduler(pool)

    def run():
        calendars = {n.node_id: ReservationCalendar() for n in pool}
        return scheduler.build_schedule(job, calendars)

    outcome = benchmark(run)
    assert outcome.admissible
