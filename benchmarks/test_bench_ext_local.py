"""Benchmark: Section 5 local-queue claims (FCFS / LWF / backfilling /
advance reservations)."""

from repro.experiments.ext_local_policies import reservation_impact, run


def test_bench_ext_local_policies(benchmark, one_shot):
    table = benchmark.pedantic(run, kwargs={"n_jobs": 250, "seed": 2009},
                               **one_shot)
    rows = table.row_map("policy")
    assert rows["EASY"]["mean wait"] <= rows["FCFS"]["mean wait"]
    assert (rows["FCFS"]["mean forecast error"]
            > rows["LWF"]["mean forecast error"])
    assert rows["LWF"]["max wait"] > rows["FCFS"]["max wait"]


def test_bench_reservation_impact(benchmark, one_shot):
    with_res, without_res = benchmark.pedantic(
        reservation_impact, kwargs={"n_jobs": 250, "seed": 2009},
        **one_shot)
    assert with_res > without_res
