"""Benchmark: Fig. 4b — relative job completion cost and task execution
time for MS1 / S2 / S3.

Paper: S3 clearly cheapest (≈ half); S2's task execution time shorter
than MS1's; S3 the slowest to complete.
"""

from repro.experiments.fig4_cost_time import run


def test_bench_fig4b_cost_and_time(benchmark, one_shot):
    table = benchmark.pedantic(run, kwargs={"n_jobs": 25, "seed": 2009},
                               **one_shot)
    rows = table.row_map("strategy")
    assert rows["S3"]["relative cost"] < rows["S2"]["relative cost"]
    assert rows["S3"]["relative cost"] < rows["MS1"]["relative cost"]
    assert (rows["S2"]["relative exec time"]
            < rows["MS1"]["relative exec time"])
    assert rows["S3"]["relative completion"] == 1.0  # the slowest
