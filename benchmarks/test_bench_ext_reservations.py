"""Benchmark: advance reservations vs best effort (QoS extension)."""

from repro.experiments.ext_reservations import run


def test_bench_ext_reservations(benchmark, one_shot):
    table = benchmark.pedantic(run, kwargs={"n_jobs": 40, "seed": 2009},
                               **one_shot)
    rows = table.row_map("mode")
    assert (rows["reservations"]["deadline hit % (accepted)"]
            > rows["best-effort"]["deadline hit % (accepted)"])
