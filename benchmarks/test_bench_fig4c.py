"""Benchmark: Fig. 4c — strategy time-to-live and start deviation.

Paper: S3 (cheap, slow) the most persistent; S2 (fast, expensive,
accurate) the least persistent.
"""

from repro.experiments.fig4_ttl_deviation import run


def test_bench_fig4c_ttl_and_deviation(benchmark, one_shot):
    table = benchmark.pedantic(run, kwargs={"n_jobs": 25, "seed": 2009},
                               **one_shot)
    rows = table.row_map("strategy")
    assert rows["S3"]["relative TTL"] == 1.0  # most persistent
    assert rows["S2"]["TTL (slots)"] <= rows["S3"]["TTL (slots)"]
    for name in ("MS1", "S2", "S3"):
        assert 0.0 <= rows[name]["deviation/runtime"] <= 1.0
