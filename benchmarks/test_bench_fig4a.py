"""Benchmark: Fig. 4a — average node load level per performance group.

Paper: S1 occupies the slow nodes, S2 balances, S3 monopolizes the
highest-performance group.
"""

from repro.experiments.fig4_load import run


def test_bench_fig4a_load_levels(benchmark, one_shot):
    table = benchmark.pedantic(run, kwargs={"n_jobs": 25, "seed": 2009},
                               **one_shot)
    rows = table.row_map("strategy")
    # S1 is the heaviest user of the slow group.
    assert rows["S1"]["slow %"] > rows["S2"]["slow %"]
    assert rows["S1"]["slow %"] > rows["S3"]["slow %"]
    # S3 concentrates its (smaller) load on the fast group.
    assert rows["S3"]["fast %"] > rows["S3"]["slow %"]
