"""Benchmark: Fig. 3a — admissible application-level schedule rate.

Paper values: S1 38 %, S2 37 %, S3 33 % over 12 000 jobs.  The bench
runs a reduced seeded sample and asserts the ordering.
"""

from repro.experiments.fig3_admissible import run


def test_bench_fig3a_admissible_rate(benchmark, one_shot):
    table = benchmark.pedantic(run, kwargs={"n_jobs": 60, "seed": 2009},
                               **one_shot)
    rows = table.row_map("strategy")
    assert rows["S1"]["admissible %"] >= rows["S3"]["admissible %"]
    # All families land in a plausible admissibility band.
    for name in ("S1", "S2", "S3"):
        assert 5.0 <= rows[name]["admissible %"] <= 80.0
