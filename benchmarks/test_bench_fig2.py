"""Benchmark: the Fig. 2 worked example (Section 3).

Regenerates the three supporting distributions, the critical-works
ranking (12/11/10/9), and the method's own schedule with its P4/P5
collision resolution.
"""

from repro.experiments.fig2_example import run


def test_bench_fig2_worked_example(benchmark):
    table = benchmark(run)
    rows = table.row_map("distribution")
    assert rows["Distribution 2"]["CF"] < rows["Distribution 1"]["CF"]
    assert rows["Distribution 1"]["CF"] == rows["Distribution 3"]["CF"]
    assert rows["critical works method"]["admissible"]
