"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures at a
reduced-but-meaningful scale (the experiments accept ``--jobs 12000``
through the CLI for the paper's full scale).  ``rounds=1`` because the
workloads are seeded and deterministic — variance across rounds would
only measure interpreter noise, and the studies are seconds-long.
"""

import pytest

#: Keyword arguments shared by the one-shot study benchmarks.
ONE_SHOT = dict(rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture()
def one_shot():
    """Pedantic-mode settings for deterministic, seconds-long studies."""
    return ONE_SHOT
