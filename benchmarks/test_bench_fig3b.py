"""Benchmark: Fig. 3b — collision split over node performance groups.

Paper values: S1 32/68, S2 56/44, S3 74/26 (fast % / slow %).
"""

from repro.experiments.fig3_collisions import run


def test_bench_fig3b_collision_split(benchmark, one_shot):
    table = benchmark.pedantic(run, kwargs={"n_jobs": 60, "seed": 2009},
                               **one_shot)
    rows = table.row_map("strategy")
    # The Fig. 3b ordering: S1 the least fast-heavy, S3 the most.
    # (S1's absolute slow majority emerges at the full 200-job scale.)
    assert rows["S3"]["fast %"] > rows["S3"]["slow %"]
    assert rows["S1"]["fast %"] < rows["S2"]["fast %"] < rows["S3"]["fast %"]
