"""Benchmark: sensitivity of the Fig. 3 shapes to policy constants."""

from repro.experiments.sens_policy import run


def test_bench_sens_policy(benchmark, one_shot):
    table = benchmark.pedantic(run, kwargs={"n_jobs": 20, "seed": 2009},
                               **one_shot)
    s2_rows = [row for row in table.rows if row["strategy"] == "S2"]
    # Heavier CF weight pushes S2 off the fast nodes, monotonically.
    fast_shares = [row["fast %"] for row in s2_rows]
    assert fast_shares == sorted(fast_shares, reverse=True)
