"""Micro-benchmarks of the newer substrates (query language, preemption,
online simulation)."""

from repro.local.query import ResourceQuery, parse
from repro.sim import Environment, Interrupt, PreemptiveResource
from repro.workload.paper_example import fig2_pool


def test_bench_query_parse_and_select(benchmark):
    """Parse + evaluate a realistic requirements/rank pair over a pool."""
    pool = fig2_pool()

    def run():
        query = ResourceQuery(
            "performance >= 0.3 && (group != 'slow' || price_rate < 0.4)",
            rank="performance * 2 - price_rate")
        return len(query.select(pool))

    assert benchmark(run) >= 1


def test_bench_query_parser_throughput(benchmark):
    """1k parses of a nested expression."""
    text = "((a + 2) * 3 - b / 4 >= 10) && !(c == 'x') || d < e"

    def run():
        for _ in range(1_000):
            parse(text)
        return True

    assert benchmark(run)


def test_bench_preemptive_resource_churn(benchmark):
    """500 preemption cycles on one contested resource."""

    def run():
        env = Environment()
        resource = PreemptiveResource(env, capacity=1)
        evictions = []

        def weak(env, resource):
            for _ in range(500):
                with resource.request(priority=5) as claim:
                    yield claim
                    try:
                        yield env.timeout(4)
                    except Interrupt:
                        evictions.append(env.now)

        def strong(env, resource):
            while True:
                yield env.timeout(2)
                with resource.request(priority=1) as claim:
                    yield claim
                    yield env.timeout(1)

        env.process(weak(env, resource))
        env.process(strong(env, resource))
        env.run(until=2_000)
        return len(evictions)

    assert benchmark(run) > 0
