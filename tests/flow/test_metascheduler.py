"""Unit tests for the metascheduler, job managers, and the VO façade."""

import numpy as np
import pytest

from repro.core.calendar import ReservationCalendar
from repro.core.job import Job, Task
from repro.core.resources import ProcessorNode, ResourcePool
from repro.core.strategy import StrategyType
from repro.flow.manager import JobManager
from repro.flow.metascheduler import Metascheduler
from repro.flow.vo import VirtualOrganization
from repro.grid.environment import GridEnvironment
from repro.workload.paper_example import fig2_job


def two_domain_pool():
    return ResourcePool([
        ProcessorNode(node_id=1, performance=1.0, domain="alpha"),
        ProcessorNode(node_id=2, performance=0.5, domain="alpha"),
        ProcessorNode(node_id=3, performance=1.0, domain="beta"),
        ProcessorNode(node_id=4, performance=0.33, domain="beta"),
    ])


def simple_job(job_id="j", deadline=30, owner="anonymous"):
    return Job(
        job_id,
        [Task("A", volume=20, best_time=2), Task("B", volume=10, best_time=1)],
        [],
        deadline=deadline,
        owner=owner,
    )


# ----------------------------------------------------------------------
# JobManager
# ----------------------------------------------------------------------

def test_manager_plans_only_on_its_domain():
    pool = two_domain_pool()
    manager = JobManager("alpha", pool)
    calendars = {n.node_id: ReservationCalendar() for n in pool}
    strategy = manager.plan(simple_job(), calendars, StrategyType.S1)
    assert strategy.admissible
    for schedule in strategy.admissible_schedules():
        assert schedule.distribution.node_ids() <= {1, 2}
    assert "j" in manager.strategies
    manager.drop("j")
    assert "j" not in manager.strategies


def test_manager_rejects_empty_domain():
    with pytest.raises(ValueError):
        JobManager("ghost", two_domain_pool())


def test_manager_resource_requests_match_best_schedule():
    pool = two_domain_pool()
    manager = JobManager("alpha", pool)
    calendars = {n.node_id: ReservationCalendar() for n in pool}
    strategy = manager.plan(simple_job(), calendars, StrategyType.S1)
    requests = manager.resource_requests(strategy)
    best = strategy.best_schedule()
    assert len(requests) == len(best.distribution)
    for request in requests:
        placement = best.distribution.placement(
            request.attributes["task_id"])
        assert request.reserved_start == placement.start
        assert request.wall_time == placement.duration


# ----------------------------------------------------------------------
# Metascheduler
# ----------------------------------------------------------------------

def test_dispatch_commits_job():
    grid = GridEnvironment(two_domain_pool())
    scheduler = Metascheduler(grid)
    scheduler.submit(simple_job(), StrategyType.S1)
    records = scheduler.dispatch()
    assert len(records) == 1
    record = records[0]
    assert record.committed
    assert record.domain in ("alpha", "beta")
    assert record.chosen is not None
    # The reservations landed in the environment.
    booked = sum(len(cal) for cal in grid.calendars.values())
    assert booked == 2


def test_dispatch_rejects_impossible_deadline():
    grid = GridEnvironment(two_domain_pool())
    scheduler = Metascheduler(grid)
    scheduler.submit(simple_job(deadline=1), StrategyType.S1)
    records = scheduler.dispatch()
    assert not records[0].committed
    assert records[0].reason == "inadmissible"


def test_flows_empty_after_dispatch():
    grid = GridEnvironment(two_domain_pool())
    scheduler = Metascheduler(grid)
    scheduler.submit(simple_job(), StrategyType.S2)
    scheduler.dispatch()
    assert scheduler.pending() == []


def test_pending_interleaves_flows_round_robin():
    grid = GridEnvironment(two_domain_pool())
    scheduler = Metascheduler(grid)
    scheduler.submit(simple_job("a"), StrategyType.S1)
    scheduler.submit(simple_job("b"), StrategyType.S1)
    scheduler.submit(simple_job("c"), StrategyType.S2)
    order = [job.job_id for job, _ in scheduler.pending()]
    assert order == ["a", "c", "b"]


def test_sequential_jobs_share_resources_without_overlap():
    grid = GridEnvironment(two_domain_pool())
    scheduler = Metascheduler(grid)
    for index in range(4):
        scheduler.submit(simple_job(f"j{index}"), StrategyType.S1)
    records = scheduler.dispatch()
    assert all(record.committed for record in records)
    # Environment calendars enforce disjointness; reaching here without
    # ReservationConflict proves the schedules interleave correctly.


def test_fig2_job_through_framework():
    pool = ResourcePool([
        ProcessorNode(node_id=1, performance=1.0),
        ProcessorNode(node_id=2, performance=0.5),
        ProcessorNode(node_id=3, performance=1 / 3),
        ProcessorNode(node_id=4, performance=0.25),
    ])
    grid = GridEnvironment(pool)
    scheduler = Metascheduler(grid)
    scheduler.submit(fig2_job(), StrategyType.S1)
    records = scheduler.dispatch()
    assert records[0].committed


# ----------------------------------------------------------------------
# VirtualOrganization façade
# ----------------------------------------------------------------------

def test_vo_run_flow_and_summary():
    vo = VirtualOrganization(two_domain_pool(), with_economics=False)
    records = vo.run_flow([
        (simple_job("ok"), StrategyType.S1),
        (simple_job("late", deadline=1), StrategyType.S1),
    ])
    summary = vo.summarize(records)
    assert summary.total == 2
    assert summary.committed == 1
    assert summary.inadmissible == 1
    assert summary.admission_rate == 0.5


def test_vo_economics_charges_and_rejects():
    vo = VirtualOrganization(two_domain_pool())
    vo.register_user("rich", budget=1000)
    vo.register_user("poor", budget=0.1)
    records = vo.run_flow([
        (simple_job("a", owner="rich"), StrategyType.S1),
        (simple_job("b", owner="poor"), StrategyType.S1),
    ])
    by_id = {r.job_id: r for r in records}
    assert by_id["a"].committed
    assert by_id["a"].charge is not None
    assert not by_id["b"].committed
    assert by_id["b"].reason == "budget"


def test_vo_surge_priority_orders_dispatch():
    vo = VirtualOrganization(two_domain_pool())
    vo.register_user("calm", budget=1000)
    vo.register_user("urgent", budget=1000)
    vo.economics.set_surge("urgent", 3.0)
    vo.submit(simple_job("a", owner="calm"), StrategyType.S1)
    vo.submit(simple_job("b", owner="urgent"), StrategyType.S1)
    order = [job.job_id for job, _ in vo.metascheduler.pending()]
    assert order == ["b", "a"]


def test_vo_without_economics_rejects_registration():
    vo = VirtualOrganization(two_domain_pool(), with_economics=False)
    with pytest.raises(RuntimeError):
        vo.register_user("u", 10)


def test_vo_background_and_load_metrics():
    vo = VirtualOrganization(two_domain_pool(), with_economics=False)
    vo.preload_background(np.random.default_rng(0), busy_fraction=0.3,
                          horizon=100)
    records = vo.run_flow([(simple_job(), StrategyType.S1)])
    load = vo.load_by_group(0, 100)
    assert set(load) == {group for group in load}
    total_load = vo.load_by_group(0, 100, jobs_only=False)
    assert all(total_load[g] >= load[g] for g in load)


# ----------------------------------------------------------------------
# Epoch-keyed plan cache and conflict retries
# ----------------------------------------------------------------------

def test_conflict_retries_validation():
    grid = GridEnvironment(two_domain_pool())
    with pytest.raises(ValueError):
        Metascheduler(grid, conflict_retries=-1)


def test_plan_cache_reuses_untouched_domains():
    """Re-dispatching a job replans only domains whose epoch slice
    moved; the untouched domain's strategy is reused object-identically."""
    from repro.perf import PERF

    grid = GridEnvironment(two_domain_pool())
    scheduler = Metascheduler(grid)
    job = simple_job()

    with PERF.collecting() as registry:
        scheduler.submit(job, StrategyType.S1)
        first = scheduler.dispatch()[0]
        assert first.committed
        counters = dict(registry.counters)
    assert counters.get("flow.plan_cache_misses") == 2  # both domains
    assert counters.get("flow.plan_cache_hits") is None

    committed_domain = first.domain
    untouched = [m for m in scheduler.managers
                 if m.domain != committed_domain][0]
    cached_strategy = untouched.strategies[job.job_id]

    with PERF.collecting() as registry:
        scheduler.submit(job, StrategyType.S1)
        second = scheduler.dispatch()[0]
        counters = dict(registry.counters)
    # The committed domain's calendars moved, but its own stale plan
    # (same structure) now seeds a warm repair instead of a cold miss;
    # the other domain is served exactly.
    assert counters.get("flow.plan_cache_hits") == 1
    assert counters.get("flow.plan_repairs") == 1
    assert counters.get("flow.plan_cache_misses") is None
    assert untouched.strategies[job.job_id] is cached_strategy
    assert second.job_id == job.job_id


def test_two_phase_warm_second_plan_hits_cache():
    """plan_job books nothing; a warm second plan over unchanged
    calendars is served entirely from the plan cache; commit_planned
    then books and records the outcome."""
    from repro.perf import PERF

    grid = GridEnvironment(two_domain_pool())
    scheduler = Metascheduler(grid)
    job = simple_job()
    all_nodes = grid.pool.node_ids()

    epochs_before = grid.epoch_slice(all_nodes)
    with PERF.collecting() as registry:
        planned = scheduler.plan_job(job, StrategyType.S1, release=0)
        counters = dict(registry.counters)
    assert planned.manager is not None
    assert counters.get("flow.plan_cache_misses") == 2  # both domains
    # Planning alone must not touch any calendar.
    assert grid.epoch_slice(all_nodes) == epochs_before

    with PERF.collecting() as registry:
        replanned = scheduler.plan_job(job, StrategyType.S1, release=0)
        counters = dict(registry.counters)
    assert counters.get("flow.plan_cache_hits") == 2
    assert counters.get("flow.plan_cache_misses") is None
    assert replanned.strategy is planned.strategy

    record = scheduler.commit_planned(planned)
    assert record.committed
    assert scheduler.records[-1] is record
    assert grid.epoch_slice(all_nodes) != epochs_before


def test_plan_cache_misses_on_release_change():
    grid = GridEnvironment(two_domain_pool())
    scheduler = Metascheduler(grid)
    job = simple_job(deadline=60)
    from repro.perf import PERF

    with PERF.collecting() as registry:
        scheduler.submit(job, StrategyType.S1)
        scheduler.dispatch(release=0)
        grid.release_job(job.job_id)  # put calendars back
        scheduler.submit(job, StrategyType.S1)
        scheduler.dispatch(release=5)
        counters = dict(registry.counters)
    # A different release never hits, even where epochs happen to match.
    assert counters.get("flow.plan_cache_hits") is None


def conflict_once_grid():
    """A grid whose ``can_commit`` refuses every variant during the
    first planning pass only — the commit-time conflict scenario.

    Planning passes are detected by counting ``epoch_slice`` calls (one
    per manager per pass), so the gate opens exactly when a retry
    re-plans.
    """
    grid = GridEnvironment(two_domain_pool())
    true_can_commit = grid.can_commit
    true_epoch_slice = grid.epoch_slice
    calls = {"passes": 0}

    def counting_epoch_slice(node_ids):
        calls["passes"] += 1
        return true_epoch_slice(node_ids)

    def gated_can_commit(distribution):
        if calls["passes"] <= len(grid.pool.domains()):
            return False  # still the first pass: steal everything
        return true_can_commit(distribution)

    grid.epoch_slice = counting_epoch_slice
    grid.can_commit = gated_can_commit
    return grid


def strategy_snapshot(strategy):
    """Every supporting schedule flattened to comparable placements."""
    return [
        (schedule.level, schedule.admissible,
         None if schedule.distribution is None else sorted(
             (p.task_id, p.node_id, p.start, p.end)
             for p in schedule.distribution))
        for schedule in strategy.schedules
    ]


@pytest.mark.parametrize("deadline", [25, 30, 45])
@pytest.mark.parametrize("stype", [StrategyType.S1, StrategyType.S2])
def test_repaired_plan_is_bit_identical_to_cold_replan(deadline, stype):
    """A warm repair (stale same-structure sibling seeding regeneration
    after epoch drift) must equal the cold replan it replaces on every
    domain, level by level and placement by placement."""
    from repro.perf import PERF

    def drifted_grid():
        """A grid whose epochs moved after a first job was planned and
        committed — built twice, identically, for both sides."""
        grid = GridEnvironment(two_domain_pool())
        scheduler = Metascheduler(grid)
        scheduler.submit(simple_job("seed-job", deadline=deadline), stype)
        assert scheduler.dispatch()[0].committed
        return grid, scheduler

    sibling = simple_job("sibling", deadline=deadline)

    warm_grid, warm_scheduler = drifted_grid()
    with PERF.collecting() as registry:
        warm_scheduler.plan_job(sibling, stype, release=0)
        counters = dict(registry.counters)
    # The committed domain drifted (repair); the other is exact.
    assert counters.get("flow.plan_repairs") == 1
    assert counters.get("flow.plan_cache_hits") == 1
    assert counters.get("flow.plan_rebinds") == 1

    cold_grid, _ = drifted_grid()
    cold_scheduler = Metascheduler(cold_grid)  # fresh, empty plan cache
    with PERF.collecting() as registry:
        cold_scheduler.plan_job(sibling, stype, release=0)
        counters = dict(registry.counters)
    assert counters.get("flow.plan_cache_misses") == 2

    for warm_manager, cold_manager in zip(warm_scheduler.managers,
                                          cold_scheduler.managers):
        assert warm_manager.domain == cold_manager.domain
        assert strategy_snapshot(
            warm_manager.strategies["sibling"]) == strategy_snapshot(
            cold_manager.strategies["sibling"])


def test_commit_conflict_rejects_without_retries():
    scheduler = Metascheduler(conflict_once_grid(), conflict_retries=0)
    scheduler.submit(simple_job(), StrategyType.S1)
    record = scheduler.dispatch()[0]
    assert not record.committed
    assert record.reason == "conflict"


def test_conflict_retry_replans_and_commits():
    """When every variant is stolen between planning and commitment,
    ``conflict_retries`` re-plans instead of rejecting outright; with
    unchanged epochs the retry is served entirely from the plan cache."""
    from repro.perf import PERF

    scheduler = Metascheduler(conflict_once_grid(), conflict_retries=1)
    scheduler.submit(simple_job(), StrategyType.S1)
    with PERF.collecting() as registry:
        record = scheduler.dispatch()[0]
        counters = dict(registry.counters)
    assert record.committed
    assert record.reason == ""
    # Nothing was committed between the passes, so the retry hit the
    # cache for both domains.
    assert counters.get("flow.plan_cache_hits") == 2
