"""Tests for the full Fig. 1 hierarchy: commits through local managers."""

import pytest

from repro.core.job import Job, Task
from repro.core.resources import ProcessorNode, ResourcePool
from repro.core.strategy import StrategyType
from repro.flow.metascheduler import Metascheduler
from repro.grid.environment import GridEnvironment


def two_domain_pool():
    return ResourcePool([
        ProcessorNode(node_id=1, performance=1.0, domain="alpha"),
        ProcessorNode(node_id=2, performance=0.5, domain="alpha"),
        ProcessorNode(node_id=3, performance=1.0, domain="beta"),
        ProcessorNode(node_id=4, performance=0.33, domain="beta"),
    ])


def simple_job(job_id="j", deadline=40):
    return Job(job_id,
               [Task("A", volume=20, best_time=2, worst_time=4),
                Task("B", volume=10, best_time=1, worst_time=2)], [],
               deadline=deadline)


def make(use_local_managers):
    grid = GridEnvironment(two_domain_pool())
    return Metascheduler(grid, use_local_managers=use_local_managers), grid


def test_local_managers_share_grid_calendars():
    scheduler, grid = make(use_local_managers=True)
    assert set(scheduler.local_managers) == {"alpha", "beta"}
    for domain, local in scheduler.local_managers.items():
        for node in local.pool:
            assert local.calendars[node.node_id] is grid.calendars[
                node.node_id]


def test_commit_through_local_managers_matches_direct_path():
    direct, grid_direct = make(use_local_managers=False)
    routed, grid_routed = make(use_local_managers=True)
    for scheduler in (direct, routed):
        for index in range(4):
            scheduler.submit(simple_job(f"j{index}"), StrategyType.S1)
    records_direct = direct.dispatch()
    records_routed = routed.dispatch()

    assert all(r.committed for r in records_direct)
    assert all(r.committed for r in records_routed)
    # Identical seedless planning on identical pools: the reservations
    # the two paths produce are slot-for-slot identical.
    for node_id in grid_direct.calendars:
        direct_spans = [(r.start, r.end, r.tag)
                        for r in grid_direct.calendars[node_id]]
        routed_spans = [(r.start, r.end, r.tag)
                        for r in grid_routed.calendars[node_id]]
        assert direct_spans == routed_spans


def test_grants_recorded_per_domain():
    scheduler, grid = make(use_local_managers=True)
    scheduler.submit(simple_job(), StrategyType.S1)
    record = scheduler.dispatch()[0]
    assert record.committed
    local = scheduler.local_managers[record.domain]
    for placement in record.chosen.distribution:
        grant = local.grant_of(f"j:{placement.task_id}")
        assert grant is not None
        assert grant.node_id == placement.node_id
        assert (grant.start, grant.end) == (placement.start, placement.end)


def test_routed_commits_still_respect_prior_load():
    scheduler, grid = make(use_local_managers=True)
    for calendar in grid.calendars.values():
        calendar.reserve(0, 5, "background")
    scheduler.submit(simple_job(), StrategyType.S1)
    record = scheduler.dispatch()[0]
    assert record.committed
    for placement in record.chosen.distribution:
        assert placement.start >= 5


def test_default_metascheduler_has_no_local_managers():
    scheduler, _ = make(use_local_managers=False)
    assert scheduler.local_managers == {}
