"""Differential tests for the sharded batch engine.

The engine's whole contract is in two equalities:

* the *shard count* is semantic — different shard counts are allowed
  to (and do) produce different schedules, but every run is
  deterministic; and
* the *worker count* is pure transport — for any shard count, any
  worker count is bit-identical to the in-process lane (``workers=1``),
  which these tests assert through :meth:`ShardedSimulation.digest`
  (the content hash of every committed reservation and every outcome).

The configs here are deliberately small (hundreds of jobs) but use a
tiny ``sync_interval`` so the worker lane is forced through several
shared-memory re-exports and delta-log replays per run.
"""

import pytest

from repro.core.context import PlanCache
from repro.flow.sharded import (ShardedConfig, ShardedOutcome,
                                ShardedSimulation)
from repro.perf import PERF
from repro.sim import RandomStreams
from repro.workload import WorkloadConfig, generate_pool
from repro.workload.generator import template_workload_factory


def make_pool(seed=42, nodes=24, domains=6):
    return generate_pool(RandomStreams(seed).stream("pool"),
                         WorkloadConfig(pool_size=(nodes, nodes)),
                         domains=domains)


def run_sharded(shards, workers=1, jobs=300, sync_interval=8, **overrides):
    config = ShardedConfig(jobs=jobs, mean_interarrival=0.05, window=4,
                           shards=shards, workers=workers,
                           sync_interval=sync_interval, **overrides)
    simulation = ShardedSimulation(
        make_pool(), seed=7, config=config,
        job_factory=template_workload_factory((5.0, 3.0, 1.0)))
    simulation.run()
    return simulation


def test_config_validation():
    with pytest.raises(ValueError):
        ShardedConfig(jobs=0)
    with pytest.raises(ValueError):
        ShardedConfig(shards=0)
    with pytest.raises(ValueError):
        ShardedConfig(workers=0)
    with pytest.raises(ValueError):
        ShardedConfig(window=0)
    with pytest.raises(ValueError):
        ShardedConfig(sync_interval=0)
    with pytest.raises(ValueError):
        ShardedConfig(conflict_retries=-1)
    with pytest.raises(ValueError):
        ShardedConfig(stypes=())


def test_run_is_deterministic_and_commits_jobs():
    a = run_sharded(shards=4, jobs=120)
    b = run_sharded(shards=4, jobs=120)
    assert a.digest() == b.digest()
    assert len(a.outcomes) == 120
    assert [o.index for o in a.outcomes] == sorted(
        o.index for o in a.outcomes)
    assert any(o.committed for o in a.outcomes)


def test_every_outcome_is_accounted_for():
    simulation = run_sharded(shards=2, jobs=150)
    for outcome in simulation.outcomes:
        assert isinstance(outcome, ShardedOutcome)
        if outcome.committed:
            assert outcome.reason == ""
            assert outcome.domain is not None
            assert outcome.cost is not None
        else:
            assert outcome.reason in ("inadmissible", "conflict")


def test_commits_only_touch_the_jobs_own_shard():
    simulation = run_sharded(shards=4, jobs=200)
    domain_to_shard = {
        domain: shard_id
        for shard_id, group in enumerate(simulation.partition)
        for domain in group}
    committed = [o for o in simulation.outcomes if o.committed]
    assert committed
    for outcome in committed:
        assert domain_to_shard[outcome.domain] == outcome.shard
        assert outcome.shard == outcome.index % len(simulation.planners)


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("workers", [2, 4])
def test_worker_lane_is_bit_identical(shards, workers):
    """Any worker count reproduces the in-process lane bit for bit."""
    sequential = run_sharded(shards=shards, workers=1)
    fanned = run_sharded(shards=shards, workers=workers)
    assert fanned.digest() == sequential.digest()


def test_tiny_sync_interval_forces_reexports():
    """With sync_interval=1 every window re-exports; still identical."""
    sequential = run_sharded(shards=2, workers=1, jobs=150)
    fanned = run_sharded(shards=2, workers=2, jobs=150, sync_interval=1)
    assert fanned.digest() == sequential.digest()


def test_coarse_seed_tier_is_bit_identical(monkeypatch):
    """Disabling the coarse fallback must not change any schedule.

    Coarse seeds only warm-start the DP; exact pruning discards hints
    that no longer fit, so outcomes are independent of whether the
    tier served anything.
    """
    with_coarse = run_sharded(shards=2, jobs=150)
    monkeypatch.setattr(PlanCache, "coarse_seed",
                        lambda self, stype, domain, node_ids: None)
    without_coarse = run_sharded(shards=2, jobs=150)
    assert without_coarse.digest() == with_coarse.digest()


def test_worker_perf_counters_are_merged():
    """Planning counters from worker processes land in the parent."""
    PERF.enable()
    try:
        base = PERF.snapshot()
        run_sharded(shards=2, workers=2, jobs=100)
        delta = PERF.delta(base)
    finally:
        PERF.disable()
    # All planning happened in the workers; without the merge these
    # counters would read zero in the parent.
    counters = delta["counters"]
    planned = sum(counters.get(name, 0)
                  for name in ("flow.plan_cache_hits",
                               "flow.plan_cache_misses",
                               "flow.plan_repairs"))
    assert planned > 0


def test_stats_merge_all_shard_contexts():
    simulation = run_sharded(shards=4, jobs=100)
    stats = simulation.stats()
    assert "flow.plan_cache" in stats
    assert stats["flow.plan_cache"]["entries"] > 0


def test_admission_rate_matches_outcomes():
    simulation = run_sharded(shards=2, jobs=100)
    committed = sum(1 for o in simulation.outcomes if o.committed)
    assert simulation.admission_rate() == committed / 100
