"""Tests for the metascheduler's commit-time reallocation fallback.

In sequential dispatch the environment cannot drift between planning
and commitment, so these tests inject the drift by hand: occupy the
slots of the cheapest supporting schedule after planning, then commit.
"""

import pytest

from repro.core.job import Job, Task
from repro.core.resources import ProcessorNode, ResourcePool
from repro.core.strategy import StrategyType
from repro.flow.metascheduler import Metascheduler
from repro.grid.environment import GridEnvironment


def make_scheduler():
    pool = ResourcePool([
        ProcessorNode(node_id=1, performance=1.0),
        ProcessorNode(node_id=2, performance=0.5),
        ProcessorNode(node_id=3, performance=0.33),
    ])
    grid = GridEnvironment(pool)
    return Metascheduler(grid), grid


def plan(scheduler, grid, job, stype=StrategyType.S1):
    manager = scheduler.managers[0]
    return manager, manager.plan(job, grid.snapshot(), stype)


def simple_job(deadline=40):
    # Distinct best/worst estimates so the level variants differ.
    return Job("j", [Task("A", volume=20, best_time=2, worst_time=6),
                     Task("B", volume=10, best_time=1, worst_time=3)], [],
               deadline=deadline)


def test_commit_falls_back_when_best_variant_is_stolen():
    scheduler, grid = make_scheduler()
    job = simple_job()
    manager, strategy = plan(scheduler, grid, job)
    variants = sorted(strategy.admissible_schedules(),
                      key=lambda s: (s.outcome.cost, s.outcome.makespan))
    assert len(variants) >= 2
    best = variants[0]

    def covers(variant, node_id, slot):
        return any(p.node_id == node_id and p.start <= slot < p.end
                   for p in variant.distribution)

    # Drift: steal one slot that the best variant needs but some other
    # variant does not touch, so a fallback is guaranteed to exist.
    stolen = None
    for placement in best.distribution:
        for slot in range(placement.start, placement.end):
            survivors = [v for v in variants[1:]
                         if not covers(v, placement.node_id, slot)]
            if survivors:
                stolen = (placement.node_id, slot)
                break
        if stolen:
            break
    assert stolen is not None, "variants are indistinguishable"
    grid.calendars[stolen[0]].reserve(stolen[1], stolen[1] + 1, "intruder")

    record = scheduler._commit(job, StrategyType.S1, manager, strategy)
    assert record.reallocations >= 1
    assert record.committed
    assert record.chosen is not best


def test_commit_reports_conflict_when_everything_is_stolen():
    scheduler, grid = make_scheduler()
    job = simple_job()
    manager, strategy = plan(scheduler, grid, job)
    # Drift: saturate every node for the whole window.
    for node_id, calendar in grid.calendars.items():
        calendar.reserve(0, 10_000, "intruder")
    record = scheduler._commit(job, StrategyType.S1, manager, strategy)
    assert not record.committed
    assert record.reason == "conflict"
    assert record.reallocations == len(strategy.admissible_schedules())


def test_committed_fallback_is_valid_against_environment():
    scheduler, grid = make_scheduler()
    job = simple_job()
    manager, strategy = plan(scheduler, grid, job)
    best = min(strategy.admissible_schedules(),
               key=lambda s: (s.outcome.cost, s.outcome.makespan))
    grid.commit_distribution(
        type(best.distribution)("intruder",
                                [p for p in best.distribution]))
    record = scheduler._commit(job, StrategyType.S1, manager, strategy)
    if record.committed:
        # The fallback variant's reservations really are booked now.
        for placement in record.chosen.distribution:
            assert not grid.calendars[placement.node_id].is_free(
                placement.start, placement.end)
