"""Tests for the online (DES-driven) framework simulation."""

import pytest

from repro.core.strategy import StrategyType
from repro.flow.simulation import JobOutcome, OnlineConfig, OnlineSimulation
from repro.sim import RandomStreams
from repro.workload import generate_pool


def make_pool(seed=5):
    return generate_pool(RandomStreams(seed).stream("pool"))


def test_config_validation():
    with pytest.raises(ValueError):
        OnlineConfig(horizon=0)
    with pytest.raises(ValueError):
        OnlineConfig(mean_interarrival=0)
    with pytest.raises(ValueError):
        OnlineConfig(stypes=())


def test_outcome_slack():
    outcome = JobOutcome("j", StrategyType.S1, submitted=0, committed=True,
                         planned_makespan=10, actual_makespan=8)
    assert outcome.slack == 2
    assert JobOutcome("j", StrategyType.S1, 0, False).slack is None


def test_run_is_deterministic():
    config = OnlineConfig(horizon=150)
    a = OnlineSimulation(make_pool(), seed=5, config=config).run()
    b = OnlineSimulation(make_pool(), seed=5, config=config).run()
    assert [(o.job_id, o.committed, o.actual_makespan) for o in a] == [
        (o.job_id, o.committed, o.actual_makespan) for o in b]


def test_punctual_mode_never_runs_late():
    """With actual levels within plan, every job meets its schedule."""
    config = OnlineConfig(horizon=200, actual_within_plan=True)
    simulation = OnlineSimulation(make_pool(), seed=5, config=config)
    outcomes = simulation.run()
    executed = [o for o in outcomes if o.actual_makespan is not None]
    assert executed
    for outcome in executed:
        assert outcome.slack is not None and outcome.slack >= 0
        assert outcome.met_deadline


def test_overrun_mode_can_run_late():
    """Unbounded actual levels produce at least some lateness."""
    config = OnlineConfig(horizon=250, mean_interarrival=8.0,
                          actual_within_plan=False)
    simulation = OnlineSimulation(make_pool(), seed=5, config=config)
    outcomes = simulation.run()
    executed = [o for o in outcomes if o.slack is not None]
    assert executed
    assert any(o.slack < 0 for o in executed)
    # Punctual mode on the same arrivals is never worse on average.
    punctual = OnlineSimulation(
        make_pool(), seed=5,
        config=OnlineConfig(horizon=250, mean_interarrival=8.0,
                            actual_within_plan=True)).run()
    mean_late = sum(min(0, o.slack) for o in executed) / len(executed)
    assert mean_late <= 0


def test_strategy_cycle_assignment():
    config = OnlineConfig(horizon=200,
                          stypes=(StrategyType.S1, StrategyType.S3))
    outcomes = OnlineSimulation(make_pool(), seed=5, config=config).run()
    assert {o.stype for o in outcomes} <= {StrategyType.S1,
                                           StrategyType.S3}
    assert [o.stype for o in outcomes[:2]] == [StrategyType.S1,
                                               StrategyType.S3]


def test_metrics_are_consistent():
    simulation = OnlineSimulation(make_pool(), seed=5,
                                  config=OnlineConfig(horizon=150))
    outcomes = simulation.run()
    committed = sum(1 for o in outcomes if o.committed)
    assert simulation.admission_rate() == pytest.approx(
        committed / len(outcomes))
    utilization = simulation.node_utilization()
    assert all(0.0 <= value <= 1.0 for value in utilization.values())
    # Committed jobs did execute on the agents.
    total_runs = sum(len(agent.completed)
                     for agent in simulation.agents.values())
    assert total_runs > 0
    # Everything admitted eventually left the system.
    assert simulation.in_system.value == 0
    assert simulation.mean_concurrency() > 0


def test_background_load_reduces_admission():
    light = OnlineSimulation(
        make_pool(), seed=5,
        config=OnlineConfig(horizon=200, busy_fraction=0.0))
    heavy = OnlineSimulation(
        make_pool(), seed=5,
        config=OnlineConfig(horizon=200, busy_fraction=0.6))
    assert light.run() and heavy.run()
    assert heavy.admission_rate() <= light.admission_rate()


def test_conflict_retries_config_validation():
    with pytest.raises(ValueError):
        OnlineConfig(conflict_retries=-1)
    config = OnlineConfig(conflict_retries=2)
    assert config.conflict_retries == 2


def test_plan_latency_validation():
    with pytest.raises(ValueError):
        OnlineConfig(plan_latency=-1)
    assert OnlineConfig(plan_latency=3).plan_latency == 3


def test_plan_latency_exercises_plan_cache():
    """With a decision lag, other commitments land between a job's plan
    and its commit; conflicted jobs replan through the epoch-keyed
    cache, so the online run produces real cache hits (the bench
    scenario's configuration — the cache used to be dead there)."""
    from repro.perf import PERF

    config = OnlineConfig(horizon=400, mean_interarrival=6.0,
                          busy_fraction=0.3, conflict_retries=1,
                          plan_latency=4)
    pool = generate_pool(RandomStreams(2009).stream("bench.online_pool"))
    simulation = OnlineSimulation(pool, seed=2009, config=config)
    with PERF.collecting() as registry:
        outcomes = simulation.run()
        counters = dict(registry.counters)
    assert any(o.committed for o in outcomes)
    assert counters.get("flow.plan_cache_hits", 0) > 0
    # Every planned job was eventually committed or recorded as refused.
    assert len(simulation.metascheduler.records) == len(outcomes)


def crowd_config(**overrides):
    """A dense window with a decision lag, so commits drift the
    environment while other jobs sit in the latency window — the shape
    speculative pre-planning exists for."""
    kwargs = dict(horizon=120, mean_interarrival=1.5, busy_fraction=0.3,
                  conflict_retries=2, plan_latency=6)
    kwargs.update(overrides)
    return OnlineConfig(**kwargs)


def test_speculation_is_outcome_invariant():
    """Speculative pre-planning is strictly a cache-warming policy:
    every job outcome is bit-identical with it on or off."""
    plain = OnlineSimulation(make_pool(), seed=5,
                             config=crowd_config()).run()
    speculated = OnlineSimulation(make_pool(), seed=5,
                                  config=crowd_config(speculate=True)).run()

    def flat(outcomes):
        return [(o.job_id, o.stype, o.committed, o.reason,
                 o.planned_makespan, o.actual_makespan) for o in outcomes]

    assert flat(plain) == flat(speculated)


def test_speculation_tallies_fresh_and_wasted():
    from repro.perf import PERF

    simulation = OnlineSimulation(make_pool(), seed=5,
                                  config=crowd_config(speculate=True))
    with PERF.collecting() as registry:
        outcomes = simulation.run()
        counters = dict(registry.counters)
    assert any(o.committed for o in outcomes)
    tallied = (counters.get("flow.speculative_fresh", 0)
               + counters.get("flow.speculative_wasted", 0))
    assert tallied > 0
    # Speculation re-plans through the cache, never behind its back:
    # the reserved cache pair stays owned by the plan cache alone.
    assert "flow.speculative_hits" not in counters
    assert "flow.speculative_misses" not in counters


def test_speculation_off_by_default_and_emits_nothing():
    from repro.perf import PERF

    simulation = OnlineSimulation(make_pool(), seed=5,
                                  config=crowd_config())
    assert simulation.config.speculate is False
    with PERF.collecting() as registry:
        simulation.run()
        counters = dict(registry.counters)
    assert "flow.speculative_fresh" not in counters
    assert "flow.speculative_wasted" not in counters


def test_conflict_retries_reach_metascheduler():
    sim = OnlineSimulation(make_pool(), seed=5,
                           config=OnlineConfig(horizon=10,
                                               conflict_retries=3))
    assert sim.metascheduler.conflict_retries == 3
