"""Unit tests for schedule invalidation and strategy time-to-live."""

import pytest

from repro.core.calendar import ReservationCalendar
from repro.core.schedule import Distribution, Placement
from repro.core.strategy import StrategyGenerator, StrategyType
from repro.flow.reallocation import (
    invalidates,
    strategy_time_to_live,
)
from repro.grid.environment import BackgroundEvent
from repro.workload.paper_example import fig2_job, fig2_pool


def test_invalidates_matches_node_and_interval():
    dist = Distribution("j", [Placement("A", 1, 5, 10)])
    assert invalidates(BackgroundEvent(0, 1, 7, 9), dist)
    assert invalidates(BackgroundEvent(0, 1, 0, 6), dist)
    assert not invalidates(BackgroundEvent(0, 2, 7, 9), dist)   # other node
    assert not invalidates(BackgroundEvent(0, 1, 10, 12), dist)  # after
    assert not invalidates(BackgroundEvent(0, 1, 0, 5), dist)    # before


def test_plan_windows_are_stealable_by_default():
    dist = Distribution("j", [Placement("A", 1, 0, 5)])
    # Plan semantics: the window is stealable whenever the event arrives.
    assert invalidates(BackgroundEvent(6, 1, 2, 4), dist)


def test_executed_before_grants_immunity():
    dist = Distribution("j", [Placement("A", 1, 0, 5)])
    event = BackgroundEvent(6, 1, 2, 4)
    assert not invalidates(event, dist, executed_before=6)
    assert invalidates(event, dist, executed_before=3)


def make_strategy(stype=StrategyType.S1, deadline=30):
    pool = fig2_pool()
    generator = StrategyGenerator(pool)
    calendars = {n.node_id: ReservationCalendar() for n in pool}
    return generator.generate(fig2_job(deadline=deadline), calendars, stype)


def test_ttl_survives_without_events():
    strategy = make_strategy()
    result = strategy_time_to_live(strategy, [], horizon=100)
    assert result.survived
    assert result.ttl == 100
    assert result.switches == 0
    assert result.final is not None


def test_ttl_zero_for_inadmissible_strategy():
    strategy = make_strategy(deadline=5)
    result = strategy_time_to_live(strategy, [], horizon=100)
    assert not result.survived
    assert result.ttl == 0
    assert result.final is None


def test_ttl_validation():
    strategy = make_strategy()
    with pytest.raises(ValueError):
        strategy_time_to_live(strategy, [], horizon=0)


def test_harmless_events_do_not_switch():
    strategy = make_strategy()
    active = strategy.best_schedule()
    free_node = None
    for node in fig2_pool():
        if node.node_id not in active.distribution.node_ids():
            free_node = node.node_id
            break
    events = []
    if free_node is not None:
        events = [BackgroundEvent(1, free_node, 0, 5)]
    result = strategy_time_to_live(strategy, events, horizon=100)
    assert result.survived
    assert result.switches == 0


def test_invalidation_triggers_switch_or_death():
    strategy = make_strategy()
    active = strategy.best_schedule()
    placement = next(iter(active.distribution))
    event = BackgroundEvent(1, placement.node_id, placement.start,
                            placement.end)
    result = strategy_time_to_live(strategy, [event], horizon=100)
    if result.survived:
        assert result.switches >= 1
        assert result.final is not active
    else:
        assert result.ttl == 1


def test_saturating_events_kill_strategy():
    strategy = make_strategy()
    events = [
        BackgroundEvent(2, node.node_id, 0, 1000)
        for node in fig2_pool()
    ]
    result = strategy_time_to_live(strategy, events, horizon=100)
    assert not result.survived
    assert result.ttl == 2


def test_events_beyond_horizon_ignored():
    strategy = make_strategy()
    events = [
        BackgroundEvent(200, node.node_id, 0, 1000)
        for node in fig2_pool()
    ]
    result = strategy_time_to_live(strategy, events, horizon=100)
    assert result.survived
    assert result.ttl == 100


# ---------------------------------------------------------------------------
# Boundary semantics, deterministic ordering, and the interval index
# ---------------------------------------------------------------------------

def test_zero_length_windows_are_rejected():
    with pytest.raises(ValueError, match="empty or inverted"):
        BackgroundEvent(0, 1, 3, 3)
    with pytest.raises(ValueError, match="empty or inverted"):
        BackgroundEvent(0, 1, 4, 3)


def test_executed_before_exact_end_boundary():
    """A placement ending exactly at ``executed_before`` has fully run:
    it must be immune, while one slot less exposes the final sliver."""
    dist = Distribution("j", [Placement("A", 1, 0, 5)])
    event = BackgroundEvent(6, 1, 2, 4)
    assert not invalidates(event, dist, executed_before=5)
    assert invalidates(event, dist, executed_before=4)


def test_partially_executed_placements_stay_vulnerable():
    """Immunity is all-or-nothing: only a placement that ran to
    completion (``end <= executed_before``) is safe — a still-running
    one is invalidated by any overlap with its whole window."""
    dist = Distribution("j", [Placement("A", 1, 0, 5)])
    assert invalidates(BackgroundEvent(6, 1, 0, 3), dist,
                       executed_before=3)
    # A window beyond the placement never clashes, executed or not.
    assert not invalidates(BackgroundEvent(6, 1, 5, 8), dist,
                           executed_before=3)


def test_interval_index_matches_invalidates():
    """The per-node interval index answers exactly like the reference
    predicate, across random placements, windows, and progress marks."""
    import numpy as np

    from repro.flow.reallocation import _NodeIntervalIndex

    rng = np.random.default_rng(5)
    for _ in range(300):
        placements = []
        for index in range(int(rng.integers(1, 7))):
            start = int(rng.integers(0, 30))
            placements.append(Placement(
                f"T{index}", int(rng.integers(1, 4)), start,
                start + int(rng.integers(1, 6))))
        dist = Distribution("j", placements)
        interval_index = _NodeIntervalIndex(dist)
        event_start = int(rng.integers(0, 35))
        event = BackgroundEvent(int(rng.integers(0, 10)),
                                int(rng.integers(1, 4)), event_start,
                                event_start + int(rng.integers(1, 6)))
        for executed_before in (None, 0, int(rng.integers(0, 35))):
            assert (interval_index.clashes(event, executed_before)
                    == invalidates(event, dist,
                                   executed_before=executed_before))


def test_shared_arrival_events_replay_order_independently():
    """Events sharing an arrival slot replay in the deterministic
    ``(arrival, node_id, start)`` order, so the caller's input order
    cannot change the outcome (regression: ties used to keep input
    order)."""
    import itertools

    strategy = make_strategy()
    nodes = [node.node_id for node in fig2_pool()][:3]
    events = [BackgroundEvent(3, node_id, 0, 50) for node_id in nodes]
    results = set()
    for permutation in itertools.permutations(events):
        result = strategy_time_to_live(strategy, list(permutation),
                                       horizon=100)
        results.add((result.ttl, result.survived, result.switches,
                     id(result.final)))
    assert len(results) == 1


def synthetic_strategy(levels_nodes_costs):
    """A hand-built strategy: one placement per variant, all admissible."""
    from repro.core.critical_works import SchedulingOutcome
    from repro.core.strategy import Strategy, SupportingSchedule

    schedules = []
    for level, node_id, cost in levels_nodes_costs:
        dist = Distribution("j", [Placement("A", node_id, 0, 10)])
        schedules.append(SupportingSchedule(level=level, outcome=(
            SchedulingOutcome(job_id="j", distribution=dist,
                              admissible=True, level=level, cost=cost,
                              makespan=10))))
    job = fig2_job()
    return Strategy(job=job, scheduled_job=job, stype=StrategyType.S1,
                    schedules=schedules, generation_expense=0)


def test_switches_count_only_active_deaths():
    """Killing a fallback variant is free; a switch is counted only
    when the *active* schedule dies, and death ends the replay."""
    strategy = synthetic_strategy(
        [(0.2, 1, 1.0), (0.5, 2, 2.0), (0.8, 3, 3.0)])
    events = [
        BackgroundEvent(2, 2, 0, 10),   # fallback on node 2 dies: free
        BackgroundEvent(4, 1, 0, 10),   # active (cheapest) dies: switch
        BackgroundEvent(6, 3, 0, 10),   # last variant dies: death
    ]
    result = strategy_time_to_live(strategy, events, horizon=100)
    assert not result.survived
    assert result.switches == 1
    assert result.ttl == 6

    survivors = strategy_time_to_live(strategy, events[:2], horizon=100)
    assert survivors.survived
    assert survivors.switches == 1
    assert survivors.final is strategy.schedules[2]


def test_ttl_min_level_uses_covering_variants_only():
    """Variants below the forecast level reserve too little to be a
    fallback: with ``min_level`` set, only covering variants count."""
    strategy = synthetic_strategy([(0.2, 1, 1.0), (0.8, 2, 5.0)])
    kill_node_2 = [BackgroundEvent(3, 2, 0, 10)]
    covered = strategy_time_to_live(strategy, kill_node_2, horizon=100,
                                    min_level=0.6)
    assert not covered.survived and covered.ttl == 3
    # Without the forecast the cheap low-level variant is active and the
    # node-2 death only removes a fallback.
    relaxed = strategy_time_to_live(strategy, kill_node_2, horizon=100)
    assert relaxed.survived and relaxed.switches == 0
    assert relaxed.final is strategy.schedules[0]
    # Exactly-at-level variants stay covering within LEVEL_EPS.
    from repro.core.strategy import LEVEL_EPS
    exact = strategy_time_to_live(strategy, [], horizon=10,
                                  min_level=0.8 + LEVEL_EPS / 2)
    assert exact.survived
    assert exact.final is strategy.schedules[1]
