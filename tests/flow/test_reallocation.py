"""Unit tests for schedule invalidation and strategy time-to-live."""

import pytest

from repro.core.calendar import ReservationCalendar
from repro.core.schedule import Distribution, Placement
from repro.core.strategy import StrategyGenerator, StrategyType
from repro.flow.reallocation import (
    invalidates,
    strategy_time_to_live,
)
from repro.grid.environment import BackgroundEvent
from repro.workload.paper_example import fig2_job, fig2_pool


def test_invalidates_matches_node_and_interval():
    dist = Distribution("j", [Placement("A", 1, 5, 10)])
    assert invalidates(BackgroundEvent(0, 1, 7, 9), dist)
    assert invalidates(BackgroundEvent(0, 1, 0, 6), dist)
    assert not invalidates(BackgroundEvent(0, 2, 7, 9), dist)   # other node
    assert not invalidates(BackgroundEvent(0, 1, 10, 12), dist)  # after
    assert not invalidates(BackgroundEvent(0, 1, 0, 5), dist)    # before


def test_plan_windows_are_stealable_by_default():
    dist = Distribution("j", [Placement("A", 1, 0, 5)])
    # Plan semantics: the window is stealable whenever the event arrives.
    assert invalidates(BackgroundEvent(6, 1, 2, 4), dist)


def test_executed_before_grants_immunity():
    dist = Distribution("j", [Placement("A", 1, 0, 5)])
    event = BackgroundEvent(6, 1, 2, 4)
    assert not invalidates(event, dist, executed_before=6)
    assert invalidates(event, dist, executed_before=3)


def make_strategy(stype=StrategyType.S1, deadline=30):
    pool = fig2_pool()
    generator = StrategyGenerator(pool)
    calendars = {n.node_id: ReservationCalendar() for n in pool}
    return generator.generate(fig2_job(deadline=deadline), calendars, stype)


def test_ttl_survives_without_events():
    strategy = make_strategy()
    result = strategy_time_to_live(strategy, [], horizon=100)
    assert result.survived
    assert result.ttl == 100
    assert result.switches == 0
    assert result.final is not None


def test_ttl_zero_for_inadmissible_strategy():
    strategy = make_strategy(deadline=5)
    result = strategy_time_to_live(strategy, [], horizon=100)
    assert not result.survived
    assert result.ttl == 0
    assert result.final is None


def test_ttl_validation():
    strategy = make_strategy()
    with pytest.raises(ValueError):
        strategy_time_to_live(strategy, [], horizon=0)


def test_harmless_events_do_not_switch():
    strategy = make_strategy()
    active = strategy.best_schedule()
    free_node = None
    for node in fig2_pool():
        if node.node_id not in active.distribution.node_ids():
            free_node = node.node_id
            break
    events = []
    if free_node is not None:
        events = [BackgroundEvent(1, free_node, 0, 5)]
    result = strategy_time_to_live(strategy, events, horizon=100)
    assert result.survived
    assert result.switches == 0


def test_invalidation_triggers_switch_or_death():
    strategy = make_strategy()
    active = strategy.best_schedule()
    placement = next(iter(active.distribution))
    event = BackgroundEvent(1, placement.node_id, placement.start,
                            placement.end)
    result = strategy_time_to_live(strategy, [event], horizon=100)
    if result.survived:
        assert result.switches >= 1
        assert result.final is not active
    else:
        assert result.ttl == 1


def test_saturating_events_kill_strategy():
    strategy = make_strategy()
    events = [
        BackgroundEvent(2, node.node_id, 0, 1000)
        for node in fig2_pool()
    ]
    result = strategy_time_to_live(strategy, events, horizon=100)
    assert not result.survived
    assert result.ttl == 2


def test_events_beyond_horizon_ignored():
    strategy = make_strategy()
    events = [
        BackgroundEvent(200, node.node_id, 0, 1000)
        for node in fig2_pool()
    ]
    result = strategy_time_to_live(strategy, events, horizon=100)
    assert result.survived
    assert result.ttl == 100
