"""Unit tests for VO quota economics."""

import pytest

from repro.core.job import Job, Task
from repro.core.resources import ProcessorNode, ResourcePool
from repro.core.schedule import Distribution, Placement
from repro.flow.economics import InsufficientBudget, UserAccount, VOEconomics


def fixtures():
    job = Job("j", [Task("A", volume=20, best_time=2)], deadline=10)
    pool = ResourcePool([ProcessorNode(node_id=1, performance=1.0)])
    dist = Distribution("j", [Placement("A", 1, 0, 2)])  # CF = 10
    return job, pool, dist


def test_account_validation():
    with pytest.raises(ValueError):
        UserAccount(name="u", budget=-1)
    with pytest.raises(ValueError):
        UserAccount(name="u", budget=1, surge=0)


def test_account_remaining_and_afford():
    account = UserAccount(name="u", budget=100)
    assert account.remaining == 100
    assert account.can_afford(100)
    account.spent = 40
    assert account.remaining == 60
    assert not account.can_afford(61)


def test_surge_inflates_affordability_check():
    account = UserAccount(name="u", budget=100, surge=2.0)
    assert account.can_afford(50)
    assert not account.can_afford(51)


def test_open_account_uniqueness():
    economics = VOEconomics()
    economics.open_account("u", 100)
    with pytest.raises(ValueError):
        economics.open_account("u", 50)
    with pytest.raises(KeyError):
        economics.account("ghost")
    assert economics.has_account("u")
    assert not economics.has_account("ghost")


def test_quote_uses_cost_model():
    job, pool, dist = fixtures()
    economics = VOEconomics()
    assert economics.quote(dist, job, pool) == 10  # ceil(20/2)


def test_charge_debits_account():
    job, pool, dist = fixtures()
    economics = VOEconomics()
    economics.open_account("u", 100)
    amount = economics.charge("u", dist, job, pool)
    assert amount == 10
    assert economics.account("u").remaining == 90


def test_charge_with_surge_costs_more():
    job, pool, dist = fixtures()
    economics = VOEconomics()
    economics.open_account("u", 100)
    economics.set_surge("u", 2.0)
    assert economics.charge("u", dist, job, pool) == 20
    assert economics.priority_of("u") == 2.0


def test_insufficient_budget_leaves_account_intact():
    job, pool, dist = fixtures()
    economics = VOEconomics()
    economics.open_account("poor", 5)
    with pytest.raises(InsufficientBudget):
        economics.charge("poor", dist, job, pool)
    assert economics.account("poor").spent == 0


def test_refund():
    job, pool, dist = fixtures()
    economics = VOEconomics()
    economics.open_account("u", 100)
    amount = economics.charge("u", dist, job, pool)
    economics.refund("u", amount)
    assert economics.account("u").remaining == 100
    with pytest.raises(ValueError):
        economics.refund("u", -1)


def test_set_surge_validation():
    economics = VOEconomics()
    economics.open_account("u", 10)
    with pytest.raises(ValueError):
        economics.set_surge("u", 0)


def test_node_surge_reprices_quotes():
    job, pool, dist = fixtures()
    economics = VOEconomics()
    assert economics.node_surge(1) == 1.0
    economics.set_node_surge(1, 3.0)
    assert economics.node_surge(1) == 3.0
    assert economics.quote(dist, job, pool) == 30  # 10 * 3
    with pytest.raises(ValueError):
        economics.set_node_surge(1, 0)


def test_node_surge_only_affects_that_node():
    from repro.core.resources import ProcessorNode, ResourcePool
    from repro.core.schedule import Distribution, Placement
    from repro.core.job import Job, Task

    job = Job("j", [Task("A", volume=20, best_time=2),
                    Task("B", volume=20, best_time=2)], [], deadline=10)
    pool = ResourcePool([ProcessorNode(node_id=1, performance=1.0),
                         ProcessorNode(node_id=2, performance=1.0)])
    dist = Distribution("j", [Placement("A", 1, 0, 2),
                              Placement("B", 2, 0, 2)])
    economics = VOEconomics()
    base = economics.quote(dist, job, pool)
    economics.set_node_surge(1, 2.0)
    assert economics.quote(dist, job, pool) == base + 10  # A doubled


def test_node_surge_interacts_with_charge():
    job, pool, dist = fixtures()
    economics = VOEconomics()
    economics.open_account("u", 100)
    economics.set_node_surge(1, 2.0)
    assert economics.charge("u", dist, job, pool) == 20
