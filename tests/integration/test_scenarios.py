"""Scenario tests: canonical job shapes through the whole stack."""

import pytest

from repro.core import (
    CriticalWorksScheduler,
    ReservationCalendar,
    StrategyGenerator,
    StrategyType,
)
from repro.core.costs import distribution_cost
from repro.local import LocalResourceManager, ResourceRequest
from repro.viz import render_distribution
from repro.workload.paper_example import fig2_pool
from repro.workload.shapes import chain_job, fork_join_job, intree_job


@pytest.fixture()
def pool():
    return fig2_pool()


def empty_calendars(pool):
    return {node.node_id: ReservationCalendar() for node in pool}


def test_chain_schedules_without_collisions(pool):
    """A pure pipeline has one critical work and nothing to collide."""
    outcome = CriticalWorksScheduler(pool).build_schedule(
        chain_job(length=5), empty_calendars(pool))
    assert outcome.admissible
    assert outcome.collisions == []


def test_fork_join_collides_and_resolves(pool):
    """Parallel branches compete for the best nodes; the method must
    resolve every conflict into a valid schedule."""
    job = fork_join_job(width=4)
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars(pool))
    assert outcome.admissible
    assert outcome.collisions  # branches contend for the cheap nodes
    assert outcome.distribution.internal_overlaps() == []


def test_intree_reduction_schedules(pool):
    outcome = CriticalWorksScheduler(pool).build_schedule(
        intree_job(depth=2), empty_calendars(pool))
    assert outcome.admissible
    assert len(outcome.distribution) == 7


@pytest.mark.parametrize("stype", list(StrategyType))
def test_every_family_handles_every_shape(pool, stype):
    generator = StrategyGenerator(pool)
    calendars = empty_calendars(pool)
    for job in (chain_job(), fork_join_job(), intree_job()):
        strategy = generator.generate(job, calendars, stype)
        assert strategy.admissible, (stype, job.job_id)


def test_schedule_renders_and_grants_end_to_end(pool):
    """Plan → render → submit as resource requests → grants align."""
    job = fork_join_job(width=3)
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars(pool))
    text = render_distribution(outcome.distribution, pool)
    for task_id in job.tasks:
        assert task_id[:2] in text  # labels may truncate to block width

    manager = LocalResourceManager(pool)
    requests = [
        ResourceRequest.from_placement(job.job_id, placement)
        for placement in outcome.distribution
    ]
    grants = manager.handle_all(requests)
    assert len(grants) == len(job)
    booked = sum(len(calendar) for calendar in manager.calendars.values())
    assert booked == len(job)
    # Grants mirror the planned wall-time windows exactly.
    for grant in grants:
        task_id = grant.request_id.split(":", 1)[1]
        placement = outcome.distribution.placement(task_id)
        assert (grant.start, grant.end) == (placement.start, placement.end)


def test_cost_monotone_in_granularity(pool):
    """Coarsening a fork-join never raises the CF of the best schedule
    (the S3 economics in miniature)."""
    from repro.core.granularity import serialize

    job = fork_join_job(width=3, deadline=200)
    calendars = empty_calendars(pool)
    scheduler = CriticalWorksScheduler(pool)
    fine = scheduler.build_schedule(job, calendars)
    serial = serialize(job)
    coarse = scheduler.build_schedule(serial, calendars)
    assert fine.admissible and coarse.admissible
    fine_cost = distribution_cost(fine.distribution, job, pool)
    coarse_cost = distribution_cost(coarse.distribution, serial, pool)
    assert coarse_cost <= fine_cost
