"""Integration tests: the whole framework working together."""

import numpy as np
import pytest

from repro.core import (
    CriticalWorksScheduler,
    StrategyGenerator,
    StrategyType,
)
from repro.core.schedule import check_distribution
from repro.core.transfers import transfer_time_fn
from repro.flow import VirtualOrganization, strategy_time_to_live
from repro.grid import GridEnvironment, NodeAgent, simulate_execution
from repro.grid.data import default_policy_models
from repro.sim import Environment, RandomStreams
from repro.workload import generate_job, generate_pool


@pytest.fixture()
def seeded_world():
    streams = RandomStreams(2009)
    pool = generate_pool(streams.stream("pool"), domains=2)
    return streams, pool


def test_vo_flow_end_to_end(seeded_world):
    """Submit → plan → commit → replay, with invariants at every step."""
    streams, pool = seeded_world
    vo = VirtualOrganization(pool)
    vo.register_user("user", budget=100000)
    vo.preload_background(streams.stream("background"),
                          busy_fraction=0.2, horizon=300)

    jobs = [generate_job(streams.fork("jobs", i), i, owner="user")
            for i in range(10)]
    stypes = [StrategyType.S1, StrategyType.S2, StrategyType.S3,
              StrategyType.MS1]
    records = vo.run_flow(
        (job, stypes[i % 4]) for i, job in enumerate(jobs))

    assert len(records) == 10
    committed = [r for r in records if r.committed]
    assert committed, "at least some jobs must commit"

    models = default_policy_models()
    for record in committed:
        strategy = record.strategy
        scheduled = strategy.scheduled_job
        distribution = record.chosen.distribution
        # The committed schedule is structurally valid at its level.
        manager_pool = [m for m in vo.metascheduler.managers
                        if m.domain == record.domain][0].pool
        violations = check_distribution(
            scheduled, distribution, manager_pool,
            transfer_time_fn(models[strategy.spec.policy]),
            estimation_level=record.chosen.level)
        assert violations == []
        # The user was charged the CF quote.
        assert record.charge is not None and record.charge > 0

    # Replay a committed job with its planned level: punctual.
    record = committed[0]
    manager_pool = [m for m in vo.metascheduler.managers
                    if m.domain == record.domain][0].pool
    trace = simulate_execution(
        record.strategy.scheduled_job, record.chosen.distribution,
        manager_pool, actual_level=record.chosen.level,
        transfer_model=models[record.strategy.spec.policy])
    assert all(run.start_deviation == 0 for run in trace.runs.values())


def test_committed_reservations_execute_on_des(seeded_world):
    """Drive a committed distribution through the DES node agents."""
    streams, pool = seeded_world
    environment = GridEnvironment(pool)
    job = generate_job(streams.fork("jobs", 0), 0)
    generator = StrategyGenerator(pool)
    strategy = generator.generate(job, environment.snapshot(),
                                  StrategyType.S1)
    chosen = strategy.best_schedule()
    assert chosen is not None
    environment.commit_distribution(chosen.distribution)

    sim = Environment()
    agents = {node.node_id: NodeAgent(sim, node) for node in pool}
    handles = []
    for placement in chosen.distribution:
        handles.append(agents[placement.node_id].execute(
            placement.task_id, not_before=placement.start,
            duration=placement.duration))
    sim.run()
    runs = {handle.value.task_id: handle.value for handle in handles}
    # Reservation-driven execution: every task ran inside its slot.
    for placement in chosen.distribution:
        run = runs[placement.task_id]
        assert run.start == placement.start
        assert run.end == placement.end


def test_strategy_survives_and_dies_consistently(seeded_world):
    streams, pool = seeded_world
    environment = GridEnvironment(pool)
    environment.apply_background_load(streams.stream("background"),
                                      busy_fraction=0.3, horizon=200)
    job = generate_job(streams.fork("jobs", 3), 3)
    strategy = StrategyGenerator(pool).generate(
        job, environment.snapshot(), StrategyType.S1)
    if not strategy.admissible:
        pytest.skip("background made this job inadmissible")

    # Without drift the strategy lives to the horizon.
    assert strategy_time_to_live(strategy, [], 500).ttl == 500
    # Saturating every node kills it at the first event.
    from repro.grid.environment import BackgroundEvent

    flood = [BackgroundEvent(7, node.node_id, 0, 10_000) for node in pool]
    result = strategy_time_to_live(strategy, flood, 500)
    assert not result.survived
    assert result.ttl == 7


def test_scheduler_families_share_one_environment(seeded_world):
    """All four families schedule the same job on the same snapshot;
    their outcomes are structurally valid against their own job view."""
    streams, pool = seeded_world
    environment = GridEnvironment(pool)
    environment.apply_background_load(streams.stream("background"),
                                      busy_fraction=0.2, horizon=300)
    job = generate_job(streams.fork("jobs", 5), 5)
    generator = StrategyGenerator(pool)
    calendars = environment.snapshot()
    models = default_policy_models()

    for stype in StrategyType:
        strategy = generator.generate(job, calendars, stype)
        for schedule in strategy.admissible_schedules():
            violations = check_distribution(
                strategy.scheduled_job, schedule.distribution, pool,
                transfer_time_fn(models[strategy.spec.policy]),
                estimation_level=schedule.level)
            assert violations == [], (stype, schedule.level)
            # Placements avoid the pre-existing background load.
            for placement in schedule.distribution:
                assert calendars[placement.node_id].is_free(
                    placement.start, placement.end)
