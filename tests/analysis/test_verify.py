"""Schedule verifier: clean paper example, typed violations on corruption."""

import pytest

from repro.analysis.verify import (
    verify_coallocation,
    verify_distribution,
    verify_outcome,
    verify_strategy,
    verify_trace,
)
from repro.analysis.violations import ViolationKind
from repro.core.calendar import ReservationCalendar
from repro.core.collisions import Collision
from repro.core.critical_works import (
    CriticalWorksScheduler,
    ScheduleInvariantError,
)
from repro.core.resources import NodeGroup
from repro.core.schedule import Distribution, Placement
from repro.core.strategy import StrategyGenerator, StrategyType
from repro.experiments.fig2_example import paper_distributions
from repro.grid.execution import simulate_execution
from repro.workload.paper_example import fig2_job, fig2_pool


@pytest.fixture()
def job():
    return fig2_job()


@pytest.fixture()
def pool():
    return fig2_pool()


@pytest.fixture()
def empty_calendars(pool):
    return {node.node_id: ReservationCalendar() for node in pool}


# ----------------------------------------------------------------------
# The paper example is invariant-clean
# ----------------------------------------------------------------------

def test_fig2_paper_distributions_have_zero_violations(job, pool):
    for distribution in paper_distributions(job, pool).values():
        report = verify_distribution(job, distribution, pool)
        assert report.ok, report.summary()


def test_fig2_critical_works_outcome_is_clean(job, pool, empty_calendars):
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars)
    report = verify_outcome(job, outcome, pool)
    assert report.ok, report.summary()


@pytest.mark.parametrize("stype", list(StrategyType))
def test_fig2_strategies_are_clean(job, pool, empty_calendars, stype):
    generator = StrategyGenerator(pool)
    strategy = generator.generate(job, empty_calendars, stype)
    report = verify_strategy(
        strategy, pool,
        transfer_model=generator.policy_models[strategy.spec.policy])
    assert report.ok, report.summary()


# ----------------------------------------------------------------------
# Deliberate corruption yields the expected typed violations
# ----------------------------------------------------------------------

def _fig2_distribution(job, pool):
    return paper_distributions(job, pool)["Distribution 1"]


def test_double_booked_node_detected(job, pool):
    distribution = _fig2_distribution(job, pool)
    victim = distribution.placement("P4")
    # Park P5 on P4's node over P4's exact interval: a collision the
    # critical works method would have had to resolve.
    corrupted = distribution.replace(Placement(
        "P5", victim.node_id, victim.start, victim.end))
    report = verify_distribution(job, corrupted, pool)
    assert ViolationKind.DOUBLE_BOOKING in report.kinds()
    clash = report.by_kind(ViolationKind.DOUBLE_BOOKING)[0]
    assert clash.node_id == victim.node_id


def test_touching_placements_are_not_double_booking(job, pool):
    distribution = _fig2_distribution(job, pool)
    report = verify_distribution(job, distribution, pool)
    # Distribution 1 serializes P1 and P2 back-to-back on node 1 — the
    # touching-but-not-overlapping case must stay clean.
    p1, p2 = distribution.placement("P1"), distribution.placement("P2")
    assert p1.node_id == p2.node_id and p1.end == p2.start
    assert report.ok, report.summary()


def test_broken_precedence_detected(job, pool):
    distribution = _fig2_distribution(job, pool)
    # P6 consumes P4 and P5; dragging it to slot 0 starts it before its
    # producers finish (and before their transfer windows close).
    corrupted = distribution.replace(Placement("P6", 4, 0, 8))
    report = verify_distribution(job, corrupted, pool)
    assert ViolationKind.PRECEDENCE in report.kinds()
    offenders = {v.task_id for v in report.by_kind(ViolationKind.PRECEDENCE)}
    assert offenders == {"P6"}


def test_deadline_breach_detected(pool):
    tight_job = fig2_job(deadline=5)
    distribution = _fig2_distribution(tight_job, pool)
    report = verify_distribution(tight_job, distribution, pool)
    assert ViolationKind.DEADLINE in report.kinds()


def test_release_window_bounds_detected(job, pool):
    distribution = _fig2_distribution(job, pool)
    report = verify_distribution(job, distribution, pool, release=3,
                                 check_deadline=False)
    assert ViolationKind.WINDOW_BOUNDS in report.kinds()
    early = report.by_kind(ViolationKind.WINDOW_BOUNDS)
    assert all(distribution.placement(v.task_id).start < 3 for v in early)


def test_reservation_too_short_detected(job, pool):
    distribution = _fig2_distribution(job, pool)
    placed = distribution.placement("P2")
    # P2 needs 3 slots on node 1; reserve only 1.
    corrupted = distribution.replace(Placement(
        "P2", placed.node_id, placed.start, placed.start + 1))
    report = verify_distribution(job, corrupted, pool)
    assert ViolationKind.RESERVATION_TOO_SHORT in report.kinds()


def test_missing_and_unknown_tasks_detected(job, pool):
    distribution = _fig2_distribution(job, pool)
    partial = Distribution(job.job_id, [
        placement for placement in distribution
        if placement.task_id != "P3"
    ] + [Placement("P99", 1, 15, 17)])
    report = verify_distribution(job, partial, pool,
                                 check_deadline=False)
    assert ViolationKind.MISSING_TASK in report.kinds()
    assert ViolationKind.UNKNOWN_TASK in report.kinds()


def test_cf_mismatch_detected(job, pool, empty_calendars):
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars)
    outcome.cost = outcome.cost + 1.0
    report = verify_outcome(job, outcome, pool)
    assert ViolationKind.CF_MISMATCH in report.kinds()


def test_makespan_mismatch_detected(job, pool, empty_calendars):
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars)
    outcome.makespan = outcome.makespan + 5
    report = verify_outcome(job, outcome, pool)
    assert ViolationKind.CF_MISMATCH in report.kinds()


def test_admissibility_flag_mismatch_detected(job, pool, empty_calendars):
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars)
    outcome.admissible = False
    report = verify_outcome(job, outcome, pool)
    assert ViolationKind.ADMISSIBILITY in report.kinds()


def test_collision_record_cross_check(job, pool, empty_calendars):
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars)
    # A collision recorded on node 4 (performance 1/4, SLOW) but tagged
    # FAST contradicts the pool — the core/collisions.py ground truth.
    outcome.collisions.append(Collision(
        job_id=job.job_id, task_id="P5", holder="P4", node_id=4,
        node_group=NodeGroup.FAST, time=3))
    report = verify_outcome(job, outcome, pool)
    assert ViolationKind.COLLISION_MISMATCH in report.kinds()


# ----------------------------------------------------------------------
# The scheduler's own invariant hook
# ----------------------------------------------------------------------

def test_self_check_accepts_clean_schedules(job, pool, empty_calendars):
    scheduler = CriticalWorksScheduler(pool, self_check=True)
    outcome = scheduler.build_schedule(job, empty_calendars)
    assert outcome.admissible


def test_self_check_raises_on_corrupted_accounting(job, pool,
                                                   empty_calendars):
    scheduler = CriticalWorksScheduler(pool, self_check=True)
    original = scheduler.accounting_model

    class DriftingModel:
        """Prices drift between calls, so the verifier's recomputation
        cannot match what ``build_schedule`` recorded."""

        def __init__(self):
            self.calls = 0

        def task_cost(self, task, placement, node):
            self.calls += 1
            base = original.task_cost(task, placement, node)
            return base + (1.0 if self.calls <= len(job.tasks) else 0.0)

    scheduler.accounting_model = DriftingModel()
    with pytest.raises(ScheduleInvariantError):
        scheduler.build_schedule(job, empty_calendars)


# ----------------------------------------------------------------------
# Cross-job capacity (co-allocation) checks
# ----------------------------------------------------------------------

def test_coallocation_flags_cross_job_overlap(pool):
    first = Distribution("jobA", [Placement("T1", 1, 0, 4)])
    second = Distribution("jobB", [Placement("U1", 1, 2, 6)])
    report = verify_coallocation([first, second], pool)
    assert ViolationKind.CAPACITY_OVERCOMMIT in report.kinds()


def test_coallocation_flags_background_overlap(pool):
    calendars = {node.node_id: ReservationCalendar() for node in pool}
    calendars[1].reserve(0, 10, tag="background")
    committed = Distribution("jobA", [Placement("T1", 1, 5, 8)])
    report = verify_coallocation([committed], pool, calendars)
    assert ViolationKind.CAPACITY_OVERCOMMIT in report.kinds()


def test_coallocation_ignores_own_booking(pool):
    calendars = {node.node_id: ReservationCalendar() for node in pool}
    calendars[1].reserve(5, 8, tag="T1")
    committed = Distribution("jobA", [Placement("T1", 1, 5, 8)])
    report = verify_coallocation([committed], pool, calendars)
    assert report.ok, report.summary()


def test_coallocation_touching_jobs_are_clean(pool):
    first = Distribution("jobA", [Placement("T1", 1, 0, 4)])
    second = Distribution("jobB", [Placement("U1", 1, 4, 6)])
    report = verify_coallocation([first, second], pool)
    assert report.ok, report.summary()


# ----------------------------------------------------------------------
# Execution traces
# ----------------------------------------------------------------------

def test_clean_replay_trace_verifies(job, pool):
    distribution = _fig2_distribution(job, pool)
    trace = simulate_execution(job, distribution, pool, actual_level=1.0)
    report = verify_trace(job, distribution, trace, pool)
    assert report.ok, report.summary()


def test_corrupted_trace_detected(job, pool):
    distribution = _fig2_distribution(job, pool)
    trace = simulate_execution(job, distribution, pool)
    run = trace.runs["P6"]
    trace.runs["P6"] = type(run)(
        task_id=run.task_id, node_id=run.node_id,
        planned_start=run.planned_start, planned_end=run.planned_end,
        actual_start=0, actual_end=run.actual_end)
    report = verify_trace(job, distribution, trace, pool)
    assert ViolationKind.PRECEDENCE in report.kinds()
    assert ViolationKind.WINDOW_BOUNDS in report.kinds()


# ----------------------------------------------------------------------
# Report ergonomics
# ----------------------------------------------------------------------

def test_report_summary_lists_each_violation(job, pool):
    distribution = _fig2_distribution(job, pool)
    corrupted = distribution.replace(Placement("P6", 4, 0, 8))
    report = verify_distribution(job, corrupted, pool)
    text = report.summary()
    assert "violation" in text
    assert "precedence" in text
    assert str(len(report.violations)) in text
