"""Property test: the engine never crashes, never lies about
positions, and is deterministic on arbitrary syntactically valid
modules.

Free-form text almost never parses, so the strategy assembles modules
from a grammar of statement templates instantiated with drawn
identifiers — heavy on the constructs the rules care about (imports,
aliases, comprehensions, async functions, class bodies, markers) so
shrunk counterexamples stay readable.
"""

import ast
import keyword

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lint import LintViolation, lint_source

identifiers = st.from_regex(r"[a-z_][a-z0-9_]{0,8}", fullmatch=True) \
    .filter(lambda name: not keyword.iskeyword(name))

PATHS = ("src/repro/core/x.py", "src/repro/flow/x.py",
         "src/repro/sim/x.py", "src/repro/core/dp.py",
         "src/repro/core/context.py", "tests/core/test_x.py", "x.py")

TEMPLATES = (
    "import {a}",
    "import {a}.{b} as {c}",
    "from {a} import {b} as {c}",
    "import random",
    "import numpy.random as {a}",
    "from random import shuffle",
    "{a} = {b}",
    "{a} = {b}.{c}",
    "{a} = {{}}",
    "{a} = set()",
    "{a}: dict = {{}}",
    "{a} = {a}",
    "{a} = {b}(4.0)",
    "{a} = {b} == 4.0",
    "{a} = next({b})",
    "def {a}({b}=[], *, {c}=None):\n    return {b}",
    "def {a}({b}):\n    for {c} in {b}:\n        {b}.append({c})",
    "def {a}({b}):\n    return [{c} for {c} in set({b})]",
    "def {a}({b}):\n    {b}[0] = 1\n    global {c}\n    {c} = 2",
    "async def {a}({b}):\n    time.sleep({b})",
    "async def {a}({b}):\n    await {b}()",
    "class {a}:\n    {b} = {{}}\n    def {c}(self):\n        self.{b}.clear()",
    "class {a}:\n    def __init__(self):\n        self._fit_cache = dict()",
    "def {a}(context):\n    return context.fit_cache.get({b})",
    "def {a}(rows):\n    for row in rows:\n        row.calendar.earliest_fit(5)",
    "def {a}():\n    PERF.incr('{b}_hits')",
    "{a} = 1  # lint: {b}",
    "{a} = 2  # lint: exact-float",
    "for {a} in {{'x', 'y'}}:\n    print({a})",
    "try:\n    {a} = 1\nexcept Exception as {b}:\n    {a} = {b}",
    "with open('{a}') as {b}:\n    {a} = {b}",
)

statements = st.tuples(
    st.sampled_from(TEMPLATES), identifiers, identifiers, identifiers,
).map(lambda drawn: drawn[0].format(a=drawn[1], b=drawn[2], c=drawn[3]))

modules = st.lists(statements, min_size=0, max_size=12) \
    .map(lambda body: "\n".join(body) + "\n")


@settings(max_examples=200, deadline=None)
@given(source=modules, path=st.sampled_from(PATHS))
def test_engine_never_crashes_and_is_deterministic(source, path):
    try:
        compile(source, path, "exec", flags=ast.PyCF_ONLY_AST)
    except SyntaxError:
        return  # template collision produced invalid code; not our bug
    first = lint_source(source, path=path)
    second = lint_source(source, path=path)
    assert first == second
    line_count = source.count("\n") + 1
    for violation in first:
        assert isinstance(violation, LintViolation)
        assert violation.path == path
        assert 0 <= violation.line <= line_count
        assert violation.col >= 0
        assert violation.code in {f"REP{i:03d}" for i in range(1, 13)}
        assert violation.message
