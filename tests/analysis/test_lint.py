"""Simulator lint: rule coverage on bad-pattern fixtures, clean source tree."""

from pathlib import Path

from repro.analysis.lint import lint_path, lint_paths, lint_source, main

#: A deliberately bad module exercising every rule at once.
BAD_FIXTURE = '''\
import random
import numpy as np
import time
from datetime import datetime


def fill_randomly(pool, chosen=[]):
    if pool.load == 0.8:
        chosen.append(random.choice(pool.nodes))
    rng = np.random.default_rng()
    started = time.time()
    return chosen, rng, started, datetime.now()
'''


def codes(violations):
    return {violation.code for violation in violations}


def test_unseeded_randomness_caught():
    found = lint_source(BAD_FIXTURE, path="src/repro/experiments/common.py")
    rep001 = [v for v in found if v.code == "REP001"]
    assert len(rep001) == 2  # random.choice and np.random.default_rng
    assert any("random.choice" in v.message for v in rep001)
    assert any("numpy.random.default_rng" in v.message for v in rep001)


def test_float_equality_caught():
    found = lint_source(BAD_FIXTURE, path="src/repro/core/x.py")
    assert "REP002" in codes(found)
    rep002 = [v for v in found if v.code == "REP002"][0]
    assert "0.8" in rep002.message


def test_wall_clock_caught_only_inside_sim():
    inside = lint_source(BAD_FIXTURE, path="src/repro/sim/engine.py")
    outside = lint_source(BAD_FIXTURE, path="src/repro/flow/manager.py")
    assert "REP003" in codes(inside)
    assert "REP003" not in codes(outside)
    rep003 = [v for v in inside if v.code == "REP003"]
    assert any("time.time" in v.message for v in rep003)
    assert any("datetime.datetime.now" in v.message for v in rep003)


def test_mutable_default_caught():
    found = lint_source(BAD_FIXTURE, path="src/repro/core/x.py")
    assert "REP004" in codes(found)


def test_rng_module_is_exempt_from_rep001():
    source = ("import numpy as np\n"
              "rng = np.random.default_rng(np.random.SeedSequence([1]))\n")
    assert lint_source(source, path="src/repro/sim/rng.py") == []
    # The same code anywhere else is a violation.
    assert codes(lint_source(source, path="src/repro/sim/engine.py")) == {
        "REP001"}


def test_import_aliases_are_resolved():
    source = ("from numpy import random as nprand\n"
              "from time import time as wall\n"
              "x = nprand.uniform()\n")
    found = lint_source(source, path="src/repro/flow/x.py")
    assert codes(found) == {"REP001"}


def test_integer_equality_is_fine():
    source = "ok = (3 == 3) and (x != 4)\nbad = x == 4.0\n"
    found = lint_source(source, path="src/repro/core/x.py")
    assert len(found) == 1 and found[0].code == "REP002"


# REP005: scalar earliest_fit inside DP loops -------------------------

SCALAR_FIT_LOOP = '''\
def best_from(rows):
    for row in rows:
        start = row.calendar.earliest_fit(5, earliest=0)
    return start
'''

SCALAR_FIT_SANCTIONED = '''\
def best_from(rows):
    for row in rows:
        # lint: scalar-fallback (COW snapshot without gap tables)
        start = row.calendar.earliest_fit(5, earliest=0)
    return start
'''


def test_scalar_fit_in_dp_loop_caught():
    found = lint_source(SCALAR_FIT_LOOP, path="src/repro/core/dp.py")
    assert codes(found) == {"REP005"}
    assert "scalar-fallback" in found[0].message


def test_scalar_fit_sanction_marker_suppresses():
    found = lint_source(SCALAR_FIT_SANCTIONED, path="src/repro/core/dp.py")
    assert found == []


def test_scalar_fit_only_flagged_in_dp_module():
    for path in ("src/repro/core/calendar.py",
                 "src/repro/flow/dp.py",
                 "tests/core/test_dp.py"):
        assert lint_source(SCALAR_FIT_LOOP, path=path) == []


def test_scalar_fit_outside_loop_is_fine():
    source = ("def probe(calendar):\n"
              "    return calendar.earliest_fit(5, earliest=0)\n")
    assert lint_source(source, path="src/repro/core/dp.py") == []


def test_scalar_fit_in_comprehension_caught():
    source = ("def probe(rows):\n"
              "    return [r.calendar.earliest_fit(5) for r in rows]\n")
    found = lint_source(source, path="src/repro/core/dp.py")
    assert codes(found) == {"REP005"}


def test_scalar_fit_nested_function_resets_loop_depth():
    source = ("def outer(rows):\n"
              "    for row in rows:\n"
              "        def helper(calendar):\n"
              "            return calendar.earliest_fit(5)\n")
    assert lint_source(source, path="src/repro/core/dp.py") == []


# REP006: stray caches outside the SchedulingContext ------------------

STRAY_MODULE_CACHE = "_PLAN_CACHE = {}\n_PLAN_CACHE_LIMIT = 64\n"

STRAY_SELF_CACHE = '''\
class Scheduler:
    def __init__(self, pool):
        self._fit_cache = dict()
        self.pool = pool
'''

STRAY_PARAM_CACHE = '''\
def allocate(chain, pool, fit_cache=None, transfer_matrices=None):
    return chain
'''

STRAY_SETATTR_CACHE = '''\
class Job:
    def __post_init__(self):
        object.__setattr__(self, "_duration_cache", {})
'''

STRAY_SETATTR_SANCTIONED = '''\
class Job:
    def __post_init__(self):
        # lint: context-cache (pure value-keyed memo on a frozen job)
        object.__setattr__(self, "_duration_cache", {})
'''


def test_stray_module_cache_caught_in_core_and_flow():
    for path in ("src/repro/core/dp.py", "src/repro/flow/metascheduler.py"):
        found = lint_source(STRAY_MODULE_CACHE, path=path)
        assert codes(found) == {"REP006"}, path
        assert "_PLAN_CACHE" in found[0].message
        assert "SchedulingContext" in found[0].message


def test_stray_self_attribute_cache_caught():
    found = lint_source(STRAY_SELF_CACHE, path="src/repro/core/cw.py")
    assert codes(found) == {"REP006"}
    assert "self._fit_cache" in found[0].message


def test_cache_threading_parameters_caught():
    found = lint_source(STRAY_PARAM_CACHE, path="src/repro/core/dp.py")
    rep006 = [v for v in found if v.code == "REP006"]
    assert len(rep006) == 2  # fit_cache and transfer_matrices
    assert any("fit_cache" in v.message for v in rep006)
    assert any("transfer_matrices" in v.message for v in rep006)


def test_setattr_smuggled_cache_caught_and_sanctionable():
    found = lint_source(STRAY_SETATTR_CACHE, path="src/repro/core/job.py")
    assert codes(found) == {"REP006"}
    assert "_duration_cache" in found[0].message
    assert lint_source(STRAY_SETATTR_SANCTIONED,
                       path="src/repro/core/job.py") == []


def test_context_cache_marker_suppresses_all_forms():
    sanctioned = ("_RANK_MEMO = {}  # lint: context-cache\n")
    assert lint_source(sanctioned, path="src/repro/core/cw.py") == []
    marker_above = ("# lint: context-cache\n"
                    "_RANK_MEMO = {}\n")
    assert lint_source(marker_above, path="src/repro/core/cw.py") == []


def test_stray_cache_only_flagged_in_core_and_flow():
    for path in ("src/repro/analysis/verify.py",
                 "src/repro/perf/bench.py",
                 "tests/core/test_dp.py"):
        assert lint_source(STRAY_MODULE_CACHE, path=path) == [], path


def test_context_module_is_exempt():
    assert lint_source(STRAY_MODULE_CACHE,
                       path="src/repro/core/context.py") == []
    assert lint_source(STRAY_SELF_CACHE,
                       path="src/repro/core/context.py") == []


def test_local_cache_variables_are_fine():
    source = ("def rank(job):\n"
              "    memo = {}\n"
              "    memo[job] = 1\n"
              "    return memo\n")
    assert lint_source(source, path="src/repro/core/cw.py") == []


def test_non_cache_names_and_values_are_fine():
    # Cache-named but not a container build: fine (e.g. a view handle).
    source = "def f(self):\n    self._fit_cache = make_view()\n"
    # ``make_view`` is not a known container factory.
    assert lint_source(source, path="src/repro/core/cw.py") == []
    # Container build but not cache-named: fine.
    source = "_REGISTRY = {}\n"
    assert lint_source(source, path="src/repro/core/cw.py") == []


def test_source_tree_is_clean():
    src = Path(__file__).resolve().parents[2] / "src"
    assert src.is_dir()
    violations = lint_paths([src])
    assert violations == [], "\n".join(str(v) for v in violations)


def test_lint_path_and_main_on_files(tmp_path, capsys):
    bad = tmp_path / "sim" / "clock.py"
    bad.parent.mkdir()
    bad.write_text(BAD_FIXTURE)
    good = tmp_path / "ok.py"
    good.write_text("def f(x=None):\n    return x\n")

    assert codes(lint_path(bad)) == {"REP001", "REP002", "REP003", "REP004"}
    assert lint_path(good) == []

    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out and "violation" in out

    assert main([str(good)]) == 0
    assert "clean" in capsys.readouterr().out

    assert main([]) == 2

    assert main([str(tmp_path / "no-such-file.py")]) == 2
    assert "no such file" in capsys.readouterr().err

    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert main([str(broken)]) == 1
    assert "syntax error" in capsys.readouterr().err
