"""Determinism regression: same seed ⇒ identical collisions and CF totals.

Guards the reproducibility contract the simulator lint (REP001) exists
to protect: every stochastic choice in the Fig. 3 study flows from the
experiment seed through named :mod:`repro.sim.rng` streams, so two runs
with the same seed must agree bit-for-bit on collision counts and costs.
"""

from repro.core.resources import NodeGroup
from repro.experiments import fig3_collisions
from repro.experiments.study import (
    ApplicationStudyConfig,
    application_level_study,
)

SEED = 11
N_JOBS = 12


def _study():
    return application_level_study(
        ApplicationStudyConfig(seed=SEED, n_jobs=N_JOBS))


def test_fig3_collisions_table_identical_across_runs():
    first = fig3_collisions.run(n_jobs=N_JOBS, seed=SEED)
    second = fig3_collisions.run(n_jobs=N_JOBS, seed=SEED)
    assert first.rows == second.rows


def test_study_collision_counts_and_cf_totals_identical():
    first = _study()
    second = _study()
    assert first.keys() == second.keys()
    for stype in first:
        a, b = first[stype], second[stype]
        for group in NodeGroup:
            assert a.collisions.by_group[group] == \
                b.collisions.by_group[group]
        assert a.collisions.total == b.collisions.total
        # CF totals of the cheapest admissible schedules, job by job.
        assert a.costs == b.costs
        assert sum(a.costs) == sum(b.costs)
        assert a.generation_expense == b.generation_expense


def test_different_seed_changes_the_run():
    baseline = fig3_collisions.run(n_jobs=N_JOBS, seed=SEED)
    shifted = fig3_collisions.run(n_jobs=N_JOBS, seed=SEED + 1)
    assert baseline.rows != shifted.rows
