"""Output formats: text summary, JSON payload, and SARIF 2.1.0
validated against a hand-written subset of the official schema."""

import json

import jsonschema

from repro.analysis.lint import (lint_source, render_json, render_sarif,
                                 render_text, rules_in_order)

CORE = "src/repro/core/x.py"
BAD = "bad = x == 4.0\nworse = y == 2.5\n"

#: The slice of the SARIF 2.1.0 schema our emitter must satisfy —
#: structural requirements transcribed from the OASIS spec (§3) so the
#: test runs offline.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "$schema": {"type": "string", "pattern": "sarif-2.1.0"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "helpUri": {
                                                    "type": "string",
                                                    "format": "uri"},
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {"enum": [
                                                            "none", "note",
                                                            "warning",
                                                            "error"]}}},
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer",
                                              "minimum": 0},
                                "level": {"enum": ["none", "note",
                                                   "warning", "error"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {"type":
                                                                    "string"}},
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1},
                                                            "startColumn": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1},
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def findings():
    return lint_source(BAD, path=CORE)


def test_text_output_lists_findings_and_summary():
    report = render_text(findings(), [])
    assert f"{CORE}:1:" in report and "REP002" in report
    assert "2 error(s)" in report
    assert render_text([], []) == "repro lint: clean"
    with_errors = render_text([], ["x.py: bad syntax"])
    assert "error: x.py: bad syntax" in with_errors


def test_json_output_roundtrips():
    payload = json.loads(render_json(findings(), ["x.py: bad syntax"]))
    assert payload["tool"] == "repro-lint"
    assert len(payload["findings"]) == 2
    first = payload["findings"][0]
    assert first["code"] == "REP002" and first["path"] == CORE
    assert first["severity"] == "error"
    assert payload["errors"] == ["x.py: bad syntax"]


def test_sarif_validates_against_schema_subset():
    document = json.loads(render_sarif(findings(), []))
    jsonschema.validate(document, SARIF_SUBSET_SCHEMA)


def test_sarif_rules_and_results_are_consistent():
    document = json.loads(render_sarif(findings(), []))
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    rule_ids = [descriptor["id"] for descriptor in driver["rules"]]
    assert rule_ids == [r.code for r in rules_in_order()]
    for result in run["results"]:
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        assert result["partialFingerprints"]["reproLint/v1"]
    assert run["invocations"][0]["executionSuccessful"] is True


def test_sarif_reports_parse_failures_as_notifications():
    document = json.loads(render_sarif([], ["broken.py: syntax error"]))
    invocation = document["runs"][0]["invocations"][0]
    assert invocation["executionSuccessful"] is False
    notes = invocation["toolExecutionNotifications"]
    assert notes[0]["message"]["text"] == "broken.py: syntax error"
