"""Tests for the schedule verifier and simulator lint."""
