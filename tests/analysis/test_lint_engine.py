"""Engine behaviour: symbol table resolution, suppression windows,
REP012 staleness, rule selection, baselines, and the gate that keeps
the shipped source tree clean."""

import ast
from pathlib import Path

import pytest

from repro.analysis.lint import (RULES, apply_baseline, lint_paths,
                                 lint_source, load_baseline,
                                 select_codes, write_baseline)
from repro.analysis.lint.model import ModuleModel
from repro.analysis.lint.symbols import SymbolTable

CORE = "src/repro/core/x.py"


def codes(violations):
    return {violation.code for violation in violations}


# ---------------------------------------------------------------------
# Symbol table
# ---------------------------------------------------------------------

def resolve_last_call(source):
    model = ModuleModel(source, CORE)
    calls = list(model.calls())
    assert calls, "fixture needs a call"
    return model.resolve_call(calls[-1])


def test_symbols_import_forms():
    assert resolve_last_call(
        "import numpy.random as npr\nnpr.uniform()\n"
    ) == "numpy.random.uniform"
    assert resolve_last_call(
        "from random import shuffle as sh\nsh([])\n"
    ) == "random.shuffle"
    assert resolve_last_call(
        "import numpy.random\nnumpy.asarray([1])\n"
    ) == "numpy.asarray"


def test_symbols_assignment_alias_chain():
    source = ("import numpy as np\n"
              "a = np.random\n"
              "b = a\n"
              "b.uniform()\n")
    assert resolve_last_call(source) == "numpy.random.uniform"


def test_symbols_conflicting_rebind_degrades_to_local():
    source = ("import numpy as np\n"
              "gen = np.random\n"
              "gen = something_else\n"
              "gen.uniform()\n")
    assert resolve_last_call(source) is None


def test_symbols_class_scope_invisible_to_methods():
    # ``random`` bound in the class body is not visible inside the
    # method (Python scoping), so the call resolves to the module.
    source = ("import random\n"
              "class C:\n"
              "    random = object()\n"
              "    def pick(self, xs):\n"
              "        return random.choice(xs)\n")
    assert resolve_last_call(source) == "random.choice"


def test_symbols_unbound_name_falls_back_to_itself():
    tree = ast.parse("value = PERF.snapshot()\n")
    table = SymbolTable(tree)
    assert table.resolve_name("PERF", table.module_scope) == "PERF"


# ---------------------------------------------------------------------
# Suppression mechanics + REP012
# ---------------------------------------------------------------------

def test_marker_suppresses_same_line_and_line_below_only():
    same = "bad = x == 4.0  # lint: exact-float (why)\n"
    assert lint_source(same, path=CORE) == []
    above = "# lint: exact-float (why)\nbad = x == 4.0\n"
    assert lint_source(above, path=CORE) == []
    too_far = "# lint: exact-float (why)\nother = 1\nbad = x == 4.0\n"
    found = lint_source(too_far, path=CORE)
    assert "REP002" in codes(found) and "REP012" in codes(found)


def test_marker_in_docstring_is_inert():
    source = ('def f():\n'
              '    """Mentions # lint: exact-float in prose."""\n'
              '    return 1\n')
    assert lint_source(source, path=CORE) == []


def test_rep012_unknown_marker():
    found = lint_source("x = 1  # lint: no-such-marker\n", path=CORE)
    assert codes(found) == {"REP012"}
    assert "unknown" in found[0].message


def test_rep012_stale_marker():
    found = lint_source("x = 1  # lint: exact-float (stale)\n", path=CORE)
    assert codes(found) == {"REP012"}
    assert "stale" in found[0].message


def test_rep012_not_raised_when_rule_not_selected():
    source = "x = 1  # lint: exact-float (stale)\n"
    only_rep1 = lint_source(source, path=CORE,
                            codes={"REP001", "REP012"})
    assert only_rep1 == []


def test_wrong_marker_does_not_suppress_other_rule():
    source = "bad = x == 4.0  # lint: rng-ok (wrong marker)\n"
    found = lint_source(source, path=CORE)
    assert "REP002" in codes(found) and "REP012" in codes(found)


# ---------------------------------------------------------------------
# Rule selection
# ---------------------------------------------------------------------

def test_select_and_ignore():
    assert select_codes(["REP001"], None) == {"REP001"}
    everything = select_codes(None, None)
    assert everything == set(RULES)
    assert "REP003" not in select_codes(None, ["REP003"])
    with pytest.raises(ValueError, match="REP999"):
        select_codes(["REP999"], None)
    with pytest.raises(ValueError, match="REP999"):
        select_codes(None, ["REP999"])


def test_registry_is_complete():
    assert sorted(RULES) == [f"REP{i:03d}" for i in range(1, 14)]
    for code, registered in RULES.items():
        assert registered.summary and registered.scope
        assert registered.docs_url.endswith(
            f"#{code.lower()}-{registered.name}")
        if code == "REP012":
            assert registered.marker is None  # hygiene is not waivable
        else:
            assert registered.marker


# ---------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------

def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    src = tmp_path / "src" / "repro" / "core" / "x.py"
    src.parent.mkdir(parents=True)
    src.write_text("bad = x == 4.0\n")
    violations, errors = lint_paths([src])
    assert errors == [] and len(violations) == 1

    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, violations)
    known = load_baseline(baseline_file)
    assert apply_baseline(violations, known) == []

    # Line drift does not resurface a baselined finding...
    src.write_text("\n\nbad = x == 4.0\n")
    drifted, _ = lint_paths([src])
    assert apply_baseline(drifted, known) == []
    # ...but a second instance of the same finding does.
    src.write_text("bad = x == 4.0\nworse = y == 4.0\n")
    doubled, _ = lint_paths([src])
    assert len(apply_baseline(doubled, known)) == 1


def test_baseline_rejects_malformed_files(tmp_path):
    from repro.analysis.lint.baseline import BaselineError
    bad = tmp_path / "baseline.json"
    bad.write_text("[]")
    with pytest.raises(BaselineError):
        load_baseline(bad)
    with pytest.raises(BaselineError):
        load_baseline(tmp_path / "missing.json")


# ---------------------------------------------------------------------
# The gate: shipped source and tests stay clean
# ---------------------------------------------------------------------

def test_source_tree_is_clean():
    src = Path(__file__).resolve().parents[2] / "src"
    assert src.is_dir()
    violations, errors = lint_paths([src])
    assert errors == []
    assert violations == [], "\n".join(str(v) for v in violations)


def test_test_tree_is_clean_for_rep001():
    tests = Path(__file__).resolve().parents[1]
    violations, errors = lint_paths([tests], codes={"REP001"})
    assert errors == []
    assert violations == [], "\n".join(str(v) for v in violations)
