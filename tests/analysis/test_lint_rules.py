"""Golden fixtures per rule: a violating and a sanctioned snippet pair
for every rule REP001–REP011, plus the regression cases the engine
rebuild was meant to catch (aliased imports, scope shadowing, the
REP003 scope extension to core/flow)."""

from repro.analysis.lint import lint_source

CORE = "src/repro/core/x.py"
FLOW = "src/repro/flow/x.py"
DP = "src/repro/core/dp.py"


def codes(violations):
    return {violation.code for violation in violations}


def run(source, path=CORE, only=None):
    found = lint_source(source, path=path)
    if only is not None:
        found = [v for v in found if v.code == only]
    return found


# ---------------------------------------------------------------------
# REP001 unseeded-random
# ---------------------------------------------------------------------

def test_rep001_global_draws_caught():
    source = ("import random\n"
              "import numpy as np\n"
              "def pick(xs):\n"
              "    np.random.shuffle(xs)\n"
              "    return random.choice(xs)\n")
    found = run(source, only="REP001")
    assert len(found) == 2
    assert any("random.choice" in v.message for v in found)
    assert any("numpy.random.shuffle" in v.message for v in found)


def test_rep001_aliased_from_import_caught():
    # The pre-engine lint only matched dotted ``random.*`` prefixes, so
    # ``from random import shuffle`` escaped entirely.
    source = ("from random import shuffle\n"
              "def mix(xs):\n"
              "    shuffle(xs)\n")
    assert len(run(source, only="REP001")) == 1


def test_rep001_aliased_module_import_caught():
    source = ("import numpy.random as npr\n"
              "x = npr.uniform()\n")
    assert len(run(source, only="REP001")) == 1
    source = ("from numpy import random as nprand\n"
              "x = nprand.uniform()\n")
    assert len(run(source, only="REP001")) == 1


def test_rep001_assignment_alias_caught():
    source = ("from random import shuffle as sh\n"
              "mix = sh\n"
              "def scramble(xs):\n"
              "    mix(xs)\n")
    assert len(run(source, only="REP001")) == 1


def test_rep001_plain_submodule_import_does_not_poison_root():
    # ``import numpy.random`` must not rebind ``numpy`` itself: the old
    # lint mapped ``numpy -> numpy.random`` and then flagged unrelated
    # ``np.asarray``-style calls resolved through it.
    source = ("import numpy.random\n"
              "import numpy\n"
              "y = numpy.asarray([1])\n"
              "x = numpy.random.uniform()\n")
    found = run(source, only="REP001")
    assert len(found) == 1
    assert "numpy.random.uniform" in found[0].message


def test_rep001_local_shadowing_suppresses():
    source = ("def pick(random, xs):\n"
              "    return random.choice(xs)\n")
    assert run(source, only="REP001") == []


def test_rep001_seeded_constructors_allowed():
    source = ("import random\n"
              "import numpy as np\n"
              "a = np.random.default_rng(7)\n"
              "b = random.Random(11)\n"
              "c = np.random.SeedSequence([1, 2])\n")
    assert run(source, only="REP001") == []


def test_rep001_unseeded_constructors_still_caught():
    source = ("import numpy as np\n"
              "a = np.random.default_rng()\n")
    assert len(run(source, only="REP001")) == 1


def test_rep001_rng_sanctuary_and_marker():
    source = ("import numpy as np\n"
              "rng = np.random.default_rng()\n")
    assert lint_source(source, path="src/repro/sim/rng.py") == []
    sanctioned = ("import numpy as np\n"
                  "rng = np.random.default_rng()  # lint: rng-ok (test)\n")
    assert run(sanctioned, only="REP001") == []


# ---------------------------------------------------------------------
# REP002 float-equality
# ---------------------------------------------------------------------

def test_rep002_pair():
    assert len(run("bad = x == 4.0\n", only="REP002")) == 1
    assert run("ok = x == 4\n", only="REP002") == []
    sanctioned = "bad = x == 4.0  # lint: exact-float (sentinel)\n"
    assert run(sanctioned, only="REP002") == []


def test_rep002_chained_comparison():
    found = run("flag = 0.5 == load != 0.25\n", only="REP002")
    assert len(found) == 2


# ---------------------------------------------------------------------
# REP003 wall-clock
# ---------------------------------------------------------------------

def test_rep003_scope_covers_core_and_flow():
    # The DES clock owns time everywhere the kernel runs now, not just
    # inside ``sim`` — the scope extension is the regression under test.
    source = ("import time\n"
              "def stamp():\n"
              "    return time.monotonic()\n")
    for path in ("src/repro/sim/engine.py", CORE, FLOW,
                 "src/repro/perf/bench.py"):
        assert len(run(source, path=path, only="REP003")) == 1, path
    assert run(source, path="src/repro/io.py", only="REP003") == []


def test_rep003_pair():
    source = ("from datetime import datetime\n"
              "now = datetime.now()\n")
    assert len(run(source, only="REP003")) == 1
    sanctioned = ("import time\n"
                  "t = time.perf_counter()  # lint: perf-timer (bench)\n")
    assert run(sanctioned, only="REP003") == []


# ---------------------------------------------------------------------
# REP004 mutable-default
# ---------------------------------------------------------------------

def test_rep004_pair():
    assert len(run("def f(xs=[]):\n    return xs\n", only="REP004")) == 1
    assert len(run("def f(xs=dict()):\n    return xs\n",
                   only="REP004")) == 1
    assert run("def f(xs=None):\n    return xs\n", only="REP004") == []
    sanctioned = ("# lint: shared-default (intentional accumulator)\n"
                  "def f(xs=[]):\n"
                  "    return xs\n")
    assert run(sanctioned, only="REP004") == []


# ---------------------------------------------------------------------
# REP005 scalar-fit-in-loop (core/dp.py only)
# ---------------------------------------------------------------------

SCALAR_FIT_LOOP = ("def best_from(rows):\n"
                   "    for row in rows:\n"
                   "        start = row.calendar.earliest_fit(5)\n"
                   "    return start\n")


def test_rep005_pair():
    found = run(SCALAR_FIT_LOOP, path=DP, only="REP005")
    assert len(found) == 1
    assert "scalar-fallback" in found[0].message
    sanctioned = ("def best_from(rows):\n"
                  "    for row in rows:\n"
                  "        # lint: scalar-fallback (COW snapshot)\n"
                  "        start = row.calendar.earliest_fit(5)\n"
                  "    return start\n")
    assert run(sanctioned, path=DP, only="REP005") == []


def test_rep005_scope_and_loop_depth():
    assert run(SCALAR_FIT_LOOP, path=CORE, only="REP005") == []
    flat = "def probe(c):\n    return c.earliest_fit(5)\n"
    assert run(flat, path=DP, only="REP005") == []
    comp = ("def probe(rows):\n"
            "    return [r.calendar.earliest_fit(5) for r in rows]\n")
    assert len(run(comp, path=DP, only="REP005")) == 1
    nested = ("def outer(rows):\n"
              "    for row in rows:\n"
              "        def helper(c):\n"
              "            return c.earliest_fit(5)\n")
    assert run(nested, path=DP, only="REP005") == []


# ---------------------------------------------------------------------
# REP006 stray-cache (core/flow except context.py)
# ---------------------------------------------------------------------

STRAY_MODULE_CACHE = "_PLAN_CACHE = {}\n_PLAN_CACHE_LIMIT = 64\n"


def test_rep006_module_and_self_and_param_and_setattr():
    found = run(STRAY_MODULE_CACHE, only="REP006")
    assert len(found) == 1 and "_PLAN_CACHE" in found[0].message
    assert "SchedulingContext" in found[0].message

    self_cache = ("class S:\n"
                  "    def __init__(self):\n"
                  "        self._fit_cache = dict()\n")
    assert len(run(self_cache, only="REP006")) == 1

    params = "def allocate(chain, fit_cache=None, transfer_matrices=None):\n    return chain\n"
    assert len(run(params, only="REP006")) == 2

    smuggled = ("class Job:\n"
                "    def __post_init__(self):\n"
                "        object.__setattr__(self, '_duration_cache', {})\n")
    assert len(run(smuggled, only="REP006")) == 1


def test_rep006_sanction_and_exemptions():
    sanctioned = "_RANK_MEMO = {}  # lint: context-cache (value-keyed)\n"
    assert run(sanctioned, only="REP006") == []
    assert lint_source(STRAY_MODULE_CACHE,
                       path="src/repro/core/context.py") == []
    for path in ("src/repro/analysis/verify.py", "tests/core/test_dp.py"):
        assert run(STRAY_MODULE_CACHE, path=path, only="REP006") == []
    local = ("def rank(job):\n"
             "    memo = {}\n"
             "    memo[job] = 1\n"
             "    return memo\n")
    assert run(local, only="REP006") == []
    view = "def f(self):\n    self._fit_cache = make_view()\n"
    assert run(view, only="REP006") == []


# ---------------------------------------------------------------------
# REP007 shared-mutable-state (core/flow)
# ---------------------------------------------------------------------

def test_rep007_module_container_mutation_caught():
    source = ("_SEEN = {}\n"
              "def record(job):\n"
              "    _SEEN[job.name] = job\n")
    found = run(source, only="REP007")
    assert len(found) == 1
    assert "_SEEN" in found[0].message and "line 1" in found[0].message

    method = ("_QUEUE = []\n"
              "def push(job):\n"
              "    _QUEUE.append(job)\n")
    assert len(run(method, only="REP007")) == 1


def test_rep007_cursor_and_global_rebind_caught():
    cursor = ("import itertools\n"
              "_CLOCK = itertools.count(1)\n"
              "def tick():\n"
              "    return next(_CLOCK)\n")
    assert len(run(cursor, only="REP007")) == 1

    rebind = ("_STATE = {}\n"
              "def reset():\n"
              "    global _STATE\n"
              "    _STATE = {}\n")
    assert len(run(rebind, only="REP007")) == 1


def test_rep007_class_level_container_mutation_caught():
    source = ("class Planner:\n"
              "    seen = set()\n"
              "    def mark(self, job):\n"
              "        self.seen.add(job)\n")
    assert len(run(source, only="REP007")) == 1


def test_rep007_instance_state_is_fine():
    source = ("class Planner:\n"
              "    seen = set()\n"
              "    def __init__(self):\n"
              "        self.seen = set()\n"
              "    def mark(self, job):\n"
              "        self.seen.add(job)\n")
    assert run(source, only="REP007") == []


def test_rep007_reads_locals_and_other_packages_are_fine():
    read_only = ("_TABLE = {'a': 1}\n"
                 "def look(key):\n"
                 "    return _TABLE.get(key)\n")
    assert run(read_only, only="REP007") == []

    shadowed = ("_SEEN = {}\n"
                "def record(job):\n"
                "    _SEEN = {}\n"
                "    _SEEN[job.name] = job\n")
    assert run(shadowed, only="REP007") == []

    mutated = ("_SEEN = {}\n"
               "def record(job):\n"
               "    _SEEN[job.name] = job\n")
    assert run(mutated, path="src/repro/workload/x.py",
               only="REP007") == []


def test_rep007_sanction_at_declaration_or_mutation():
    source = ("_SEEN = {}\n"
              "def record(job):\n"
              "    # lint: shared-state (process-local audit trail)\n"
              "    _SEEN[job.name] = job\n")
    assert run(source, only="REP007") == []


# ---------------------------------------------------------------------
# REP008 unguarded-cache-read (core/flow)
# ---------------------------------------------------------------------

def test_rep008_unguarded_read_caught():
    source = ("def lookup(context, key):\n"
              "    return context.fit_cache.get(key)\n")
    found = run(source, only="REP008")
    assert len(found) == 1 and "fit_cache" in found[0].message

    subscript = ("def lookup(context, key):\n"
                 "    return context.plans[key]\n")
    assert len(run(subscript, only="REP008")) == 1


def test_rep008_version_or_epoch_guard_passes():
    guarded = ("def lookup(context, node, key):\n"
               "    version = node.calendar_version\n"
               "    return context.fit_cache.get((key, version))\n")
    assert run(guarded, only="REP008") == []
    epoch = ("def lookup(context, grid, job, key):\n"
             "    epochs = grid.epoch_slice(key)\n"
             "    shape = job.shape_hash\n"
             "    cached = context.plans.get((shape, key, epochs))\n"
             "    return cached\n")
    assert run(epoch, only="REP008") == []


def test_rep008_shape_keyed_plan_reads_need_both_tokens():
    """`plans` reads must reference a shape/struct token AND an
    epoch/version token; either alone is an error."""
    epoch_only = ("def lookup(context, grid, key):\n"
                  "    epochs = grid.epoch_slice(key)\n"
                  "    return context.plans.lookup(key, epochs)\n")
    found = run(epoch_only, only="REP008")
    assert len(found) == 1 and "shape" in found[0].message
    shape_only = ("def lookup(context, job, key):\n"
                  "    shape = job.shape_hash\n"
                  "    return context.plans.lookup(shape, key)\n")
    found = run(shape_only, only="REP008")
    assert len(found) == 1 and "epoch" in found[0].message
    both = ("def lookup(context, grid, job, key):\n"
            "    epochs = grid.epoch_slice(key)\n"
            "    return context.plans.lookup(job.shape_hash, key, epochs)\n")
    assert run(both, only="REP008") == []
    # Plain mapping caches are unaffected by the shape requirement.
    fit = ("def lookup(context, node, key):\n"
           "    version = node.calendar_version\n"
           "    return context.fit_cache.lookup((key, version))\n")
    assert run(fit, only="REP008") == []


def test_rep008_scope_writes_and_marker():
    write = ("def store(context, key, value):\n"
             "    context.fit_cache[key] = value\n")
    assert run(write, only="REP008") == []
    other_cache = ("def lookup(context, key):\n"
                   "    return context.results.get(key)\n")
    assert run(other_cache, only="REP008") == []
    sanctioned = ("def lookup(context, key):\n"
                  "    # lint: epoch-keyed (key embeds the version)\n"
                  "    return context.fit_cache.get(key)\n")
    assert run(sanctioned, only="REP008") == []


# ---------------------------------------------------------------------
# REP009 nondeterministic-iteration (core/flow/sim)
# ---------------------------------------------------------------------

def test_rep009_set_iteration_caught():
    loop = ("def order(jobs):\n"
            "    pending = set(jobs)\n"
            "    for job in pending:\n"
            "        yield job\n")
    found = run(loop, only="REP009")
    assert len(found) == 1 and "sorted" in found[0].message

    literal = ("for tag in {'a', 'b'}:\n"
               "    print(tag)\n")
    assert len(run(literal, only="REP009")) == 1

    comp = ("def names(jobs):\n"
            "    return [j.name for j in set(jobs)]\n")
    assert len(run(comp, only="REP009")) == 1

    materialize = ("def names(jobs):\n"
                   "    return list(set(jobs))\n")
    assert len(run(materialize, only="REP009")) == 1


def test_rep009_annotation_and_setop_inference():
    annotated = ("from typing import Set\n"
                 "def order(pending: Set[str]):\n"
                 "    for name in pending:\n"
                 "        yield name\n")
    assert len(run(annotated, only="REP009")) == 1
    binop = ("def order(a, b):\n"
             "    for name in set(a) | set(b):\n"
             "        yield name\n")
    assert len(run(binop, only="REP009")) == 1


def test_rep009_order_free_consumption_is_fine():
    source = ("def stats(jobs):\n"
              "    pending = set(jobs)\n"
              "    total = len(pending)\n"
              "    ordered = sorted(pending)\n"
              "    still = {j for j in pending}\n"
              "    return total, ordered, still\n")
    assert run(source, only="REP009") == []
    lists = ("def order(jobs):\n"
             "    for job in list(jobs):\n"
             "        yield job\n")
    assert run(lists, only="REP009") == []


def test_rep009_scope_and_marker():
    loop = ("for tag in {'a', 'b'}:\n"
            "    print(tag)\n")
    assert run(loop, path="src/repro/analysis/verify.py",
               only="REP009") == []
    sanctioned = ("total = 0\n"
                  "for tag in {'a', 'b'}:  # lint: order-free (sum)\n"
                  "    total += len(tag)\n")
    assert run(sanctioned, only="REP009") == []


# ---------------------------------------------------------------------
# REP010 blocking-call-in-async
# ---------------------------------------------------------------------

def test_rep010_pair():
    source = ("import time\n"
              "async def poll(queue):\n"
              "    time.sleep(1)\n")
    found = run(source, only="REP010")
    assert len(found) == 1 and "asyncio.sleep" in found[0].message

    ok = ("import asyncio\n"
          "async def poll(queue):\n"
          "    await asyncio.sleep(1)\n")
    assert run(ok, only="REP010") == []

    sync = ("import time\n"
            "def poll(queue):\n"
            "    time.sleep(1)\n")
    assert run(sync, only="REP010") == []

    sanctioned = ("import time\n"
                  "async def poll(queue):\n"
                  "    time.sleep(0)  # lint: blocking-ok (yield hint)\n")
    assert run(sanctioned, only="REP010") == []


def test_rep010_subprocess_and_io_caught():
    source = ("import subprocess\n"
              "async def deploy():\n"
              "    subprocess.run(['true'])\n"
              "    handle = open('x')\n"
              "    return handle\n")
    assert len(run(source, only="REP010")) == 2


# ---------------------------------------------------------------------
# REP011 counter-discipline
# ---------------------------------------------------------------------

def test_rep011_unpaired_and_dynamic_names_caught():
    unpaired = ("def f():\n"
                "    PERF.incr('dp.fit_cache_hits')\n")
    found = run(unpaired, only="REP011")
    assert len(found) == 1 and "dp.fit_cache_misses" in found[0].message

    evictions = ("def f():\n"
                 "    PERF.incr('dp.fit_cache_evictions')\n")
    assert len(run(evictions, only="REP011")) == 1

    dynamic = ("def f(name):\n"
               "    PERF.incr(f'{name}_evictions')\n")
    found = run(dynamic, only="REP011")
    assert len(found) == 1 and "dynamic" in found[0].message


def test_rep011_complete_pairs_and_plain_names_are_fine():
    paired = ("def f(hit):\n"
              "    if hit:\n"
              "        PERF.incr('dp.fit_cache_hits')\n"
              "    else:\n"
              "        PERF.incr('dp.fit_cache_misses')\n")
    assert run(paired, only="REP011") == []
    plain = "def f():\n    PERF.incr('dp.expansions')\n"
    assert run(plain, only="REP011") == []
    sanctioned = ("def f(name):\n"
                  "    # lint: counter-ok (per-cache template)\n"
                  "    PERF.incr(f'{name}_evictions')\n")
    assert run(sanctioned, only="REP011") == []


# ---------------------------------------------------------------------
# REP007/REP008 shard-isolation extension (flow)
# ---------------------------------------------------------------------

def test_rep007_shard_crossing_mutation_caught():
    source = ("class Engine:\n"
              "    def route(self, i, entry):\n"
              "        self.planners[i].context.plans.store(entry)\n")
    found = run(source, path=FLOW, only="REP007")
    assert len(found) == 1
    assert "planners" in found[0].message and "seam" in found[0].message

    write = ("class Engine:\n"
             "    def route(self, i, cal):\n"
             "        self.replicas[i].calendars[3] = cal\n")
    assert len(run(write, path=FLOW, only="REP007")) == 1

    reserve = ("def steal(shards, i, start, end):\n"
               "    shards[i].calendar.reserve(start, end)\n")
    assert len(run(reserve, path=FLOW, only="REP007")) == 1


def test_rep007_shard_mutation_in_seam_is_fine():
    seam = ("class Engine:\n"
            "    def _commit_window(self, i, entry):\n"
            "        self.planners[i].context.plans.store(entry)\n"
            "    def _merge_results(self, i, delta):\n"
            "        self.planners[i].context.plans.adopt(delta)\n"
            "    def _sync_replica(self, i, cal):\n"
            "        self.replicas[i].calendars[3] = cal\n")
    assert run(seam, path=FLOW, only="REP007") == []


def test_rep007_shard_reads_and_other_collections_are_fine():
    read = ("class Engine:\n"
            "    def shard_domains(self, i):\n"
            "        return self.planners[i].domains\n")
    assert run(read, path=FLOW, only="REP007") == []
    # Subscripts into ordinary collections are not shard state.
    other = ("class Engine:\n"
             "    def note(self, i, entry):\n"
             "        self.offers[i].variants.append(entry)\n")
    assert run(other, path=FLOW, only="REP007") == []


def test_rep007_shard_marker_sanctions_the_line():
    marked = ("class Engine:\n"
              "    def route(self, i, entry):\n"
              "        # lint: shared-state (window-local scratch)\n"
              "        self.planners[i].context.plans.store(entry)\n")
    assert run(marked, path=FLOW, only="REP007") == []


def test_rep008_cross_shard_cache_read_caught():
    source = ("class Engine:\n"
              "    def peek(self, i, key):\n"
              "        return self.planners[i].context.plans.get(key)\n")
    found = run(source, path=FLOW, only="REP008")
    assert len(found) == 1
    assert "cross-shard" in found[0].message
    assert "planners" in found[0].message


def test_rep008_cross_shard_read_in_seam_is_fine():
    """Inside the seam the cross-shard finding is waived; the base
    guard requirement (shape + epoch tokens for `plans`) still holds."""
    seam = ("class Engine:\n"
            "    def _merge_stats(self, i, grid, job, key):\n"
            "        epochs = grid.epoch_slice(key)\n"
            "        shape = job.shape_hash\n"
            "        return self.planners[i].context.plans.get(\n"
            "            (shape, key, epochs))\n")
    assert run(seam, path=FLOW, only="REP008") == []


# ---------------------------------------------------------------------
# REP013 ad-hoc-study-plumbing (experiments)
# ---------------------------------------------------------------------

EXP = "src/repro/experiments/x.py"


def test_rep013_pool_and_dict_returns_caught():
    source = ("from concurrent.futures import ProcessPoolExecutor\n"
              "def run_study(cells):\n"
              "    with ProcessPoolExecutor(4) as pool:\n"
              "        rows = list(pool.map(work, cells))\n"
              "    return {cell: row for cell, row in zip(cells, rows)}\n")
    found = run(source, path=EXP, only="REP013")
    assert len(found) == 2
    assert any("ProcessPoolExecutor" in v.message for v in found)
    assert any("run_study" in v.message for v in found)

    aliased = ("import concurrent.futures as cf\n"
               "def fan_out(cells):\n"
               "    with cf.ProcessPoolExecutor() as pool:\n"
               "        return list(pool.map(work, cells))\n")
    assert len(run(aliased, path=EXP, only="REP013")) == 1

    dict_call = ("def coordinated_study(rows):\n"
                 "    return dict(rows)\n")
    assert len(run(dict_call, path=EXP, only="REP013")) == 1


def test_rep013_scope_helpers_and_sanctions_are_fine():
    # Entry points returning folded/typed results comply.
    ok = ("def coordinated_flow_study(config):\n"
          "    results = grid(config).run()\n"
          "    return _fold_rows(results)\n")
    assert run(ok, path=EXP, only="REP013") == []
    # Cell workers return payload dicts by design (the store's record
    # format) — only run*/_study entry points are audited.
    cell = ("def cell(config):\n"
            "    return {'expense': 1}\n")
    assert run(cell, path=EXP, only="REP013") == []
    # Outside experiments/ the rule never fires.
    pool = ("from concurrent.futures import ProcessPoolExecutor\n"
            "def run_bench():\n"
            "    return {'pool': ProcessPoolExecutor()}\n")
    assert run(pool, path=CORE, only="REP013") == []
    # The standard escape hatch sanctions a line.
    sanctioned = ("def run_probe():\n"
                  "    # lint: platform-ok (diagnostic payload)\n"
                  "    return {'raw': 1}\n")
    assert run(sanctioned, path=EXP, only="REP013") == []
