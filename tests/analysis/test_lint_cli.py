"""CLI surface: exit codes, --strict, --baseline, output formats, and
the ``repro lint`` subcommand wired through the main parser."""

import json

import pytest

from repro.analysis.lint import main as lint_main
from repro.cli import main as repro_main

ERROR_SOURCE = "bad = x == 4.0\n"
#: REP005 is warning severity; the path makes it fire.
WARNING_SOURCE = ("def best_from(rows):\n"
                  "    for row in rows:\n"
                  "        start = row.calendar.earliest_fit(5)\n"
                  "    return start\n")


@pytest.fixture
def tree(tmp_path):
    core = tmp_path / "src" / "repro" / "core"
    core.mkdir(parents=True)
    (core / "bad.py").write_text(ERROR_SOURCE)
    (core / "dp.py").write_text(WARNING_SOURCE)
    (core / "ok.py").write_text("def f(x=None):\n    return x\n")
    return core


def test_exit_codes(tree, capsys):
    assert lint_main([str(tree / "ok.py")]) == 0
    assert "clean" in capsys.readouterr().out

    assert lint_main([str(tree / "bad.py")]) == 1
    out = capsys.readouterr().out
    assert "REP002" in out and "1 error(s)" in out

    # Warnings gate only under --strict.
    assert lint_main([str(tree / "dp.py")]) == 0
    assert lint_main([str(tree / "dp.py"), "--strict"]) == 1
    capsys.readouterr()


def test_usage_errors_exit_2(tree):
    with pytest.raises(SystemExit) as excinfo:
        lint_main([])
    assert excinfo.value.code == 2
    with pytest.raises(SystemExit) as excinfo:
        lint_main([str(tree), "--select", "REP999"])
    assert excinfo.value.code == 2


def test_unparsable_file_exits_1(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert lint_main([str(broken)]) == 1
    assert "error:" in capsys.readouterr().out


def test_select_limits_rules(tree, capsys):
    assert lint_main([str(tree), "--select", "REP001", "--strict"]) == 0
    assert lint_main([str(tree), "--ignore", "REP002"]) == 0
    capsys.readouterr()


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("REP001", "REP007", "REP012"):
        assert code in out
    assert "# lint: rng-ok" in out


def test_sarif_output_file(tree, tmp_path, capsys):
    sarif_path = tmp_path / "lint.sarif"
    rc = lint_main([str(tree), "--format", "sarif",
                    "--output", str(sarif_path)])
    assert rc == 1
    # The human verdict still lands on stdout for the CI log.
    assert "error(s)" in capsys.readouterr().out
    document = json.loads(sarif_path.read_text())
    assert document["version"] == "2.1.0"
    assert any(result["ruleId"] == "REP002"
               for result in document["runs"][0]["results"])


def test_baseline_workflow(tree, tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    assert lint_main([str(tree), "--write-baseline", str(baseline)]) == 0
    assert baseline.exists()
    # With the debt frozen, the same tree gates clean even on --strict.
    assert lint_main([str(tree), "--baseline", str(baseline),
                      "--strict"]) == 0
    # A new finding is not masked by the baseline.
    (tree / "new.py").write_text("worse = y == 2.5\n")
    assert lint_main([str(tree), "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "new.py" in out and "bad.py" not in out


def test_repro_lint_subcommand(tree, capsys):
    assert repro_main(["lint", str(tree / "ok.py")]) == 0
    assert "clean" in capsys.readouterr().out
    assert repro_main(["lint", str(tree / "bad.py"), "--strict"]) == 1
    capsys.readouterr()


def test_repro_analyze_lint_passthrough_still_works(tree, capsys):
    rc = repro_main(["analyze", "--skip-strategies",
                     "--lint", str(tree / "ok.py")])
    assert rc == 0
    assert "clean" in capsys.readouterr().out
