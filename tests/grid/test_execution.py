"""Unit tests for deterministic execution replay."""

import pytest

from repro.core.job import DataTransfer, Job, Task
from repro.core.resources import ProcessorNode, ResourcePool
from repro.core.schedule import Distribution, Placement
from repro.grid.execution import simulate_execution


def job_and_pool():
    job = Job(
        "j",
        [Task("A", volume=10, best_time=2, worst_time=4),
         Task("B", volume=10, best_time=3, worst_time=6)],
        [DataTransfer("D1", "A", "B", base_time=1)],
        deadline=20,
    )
    pool = ResourcePool([
        ProcessorNode(node_id=1, performance=1.0),
        ProcessorNode(node_id=2, performance=1.0),
    ])
    return job, pool


def test_replay_on_time_when_estimates_hold():
    job, pool = job_and_pool()
    dist = Distribution("j", [
        Placement("A", 1, 0, 2),
        Placement("B", 2, 3, 6),
    ])
    trace = simulate_execution(job, dist, pool, actual_level=0.0)
    assert trace.runs["A"].start_deviation == 0
    assert trace.runs["B"].start_deviation == 0
    assert trace.makespan == 6
    assert trace.met_deadline(job.deadline)


def test_underestimated_task_delays_successor():
    job, pool = job_and_pool()
    dist = Distribution("j", [
        Placement("A", 1, 0, 2),     # planned with the best case (2)
        Placement("B", 2, 3, 6),
    ])
    trace = simulate_execution(job, dist, pool, actual_level=1.0)  # worst
    # A actually runs 4 slots, so B's data is ready at 4 + 1 = 5.
    assert trace.runs["A"].actual_end == 4
    assert trace.runs["B"].actual_start == 5
    assert trace.runs["B"].start_deviation == 2
    assert trace.makespan == 11  # B runs its worst case of 6


def test_task_never_starts_before_reservation():
    job, pool = job_and_pool()
    dist = Distribution("j", [
        Placement("A", 1, 5, 7),
        Placement("B", 2, 10, 13),
    ])
    trace = simulate_execution(job, dist, pool, actual_level=0.0)
    assert trace.runs["A"].actual_start == 5
    assert trace.runs["B"].actual_start == 10


def test_colocated_tasks_skip_transfer_lag():
    job, pool = job_and_pool()
    dist = Distribution("j", [
        Placement("A", 1, 0, 2),
        Placement("B", 1, 2, 5),
    ])
    trace = simulate_execution(job, dist, pool, actual_level=0.0)
    assert trace.runs["B"].actual_start == 2


def test_explicit_actual_durations():
    job, pool = job_and_pool()
    dist = Distribution("j", [
        Placement("A", 1, 0, 2),
        Placement("B", 2, 3, 6),
    ])
    trace = simulate_execution(job, dist, pool,
                               actual_durations={"A": 7, "B": 1})
    assert trace.runs["A"].actual_duration == 7
    assert trace.runs["B"].actual_duration == 1
    with pytest.raises(ValueError):
        simulate_execution(job, dist, pool, actual_durations={"A": 0})


def test_trace_metrics():
    job, pool = job_and_pool()
    dist = Distribution("j", [
        Placement("A", 1, 0, 2),
        Placement("B", 2, 3, 6),
    ])
    trace = simulate_execution(job, dist, pool, actual_level=1.0)
    assert trace.total_execution_time == 4 + 6
    assert trace.run_time == trace.makespan  # first start is 0
    assert trace.mean_start_deviation() == pytest.approx((0 + 2) / 2)
    assert 0 < trace.deviation_to_runtime_ratio() < 1
