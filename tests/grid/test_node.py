"""Unit tests for DES node agents."""

import pytest

from repro.core.resources import ProcessorNode
from repro.grid.node import NodeAgent
from repro.sim import Environment


def test_execute_waits_for_reservation_start():
    sim = Environment()
    agent = NodeAgent(sim, ProcessorNode(node_id=1, performance=1.0))
    handle = agent.execute("T1", not_before=5, duration=3)
    sim.run()
    run = handle.value
    assert run.start == 5
    assert run.end == 8
    assert agent.completed == [run]


def test_execute_serializes_on_one_node():
    sim = Environment()
    agent = NodeAgent(sim, ProcessorNode(node_id=1, performance=1.0))
    agent.execute("T1", not_before=0, duration=4)
    agent.execute("T2", not_before=0, duration=2)
    sim.run()
    spans = {run.task_id: (run.start, run.end) for run in agent.completed}
    assert spans["T1"] == (0, 4)
    assert spans["T2"] == (4, 6)


def test_execute_validation():
    sim = Environment()
    agent = NodeAgent(sim, ProcessorNode(node_id=1, performance=1.0))
    with pytest.raises(ValueError):
        agent.execute("T1", not_before=0, duration=0)


def test_utilization():
    sim = Environment()
    agent = NodeAgent(sim, ProcessorNode(node_id=1, performance=1.0))
    assert agent.utilization() == 0.0
    agent.execute("T1", not_before=0, duration=4)
    sim.run(until=8)
    assert agent.utilization() == 0.5
    assert agent.utilization(horizon=4) == 1.0


def test_busy_flag():
    sim = Environment()
    agent = NodeAgent(sim, ProcessorNode(node_id=1, performance=1.0))
    agent.execute("T1", not_before=0, duration=4)
    observed = []

    def probe(sim, agent, observed):
        yield sim.timeout(1)
        observed.append(agent.busy)
        yield sim.timeout(10)
        observed.append(agent.busy)

    sim.process(probe(sim, agent, observed))
    sim.run()
    assert observed == [True, False]
