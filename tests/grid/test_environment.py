"""Unit tests for the Grid environment state."""

import numpy as np
import pytest

from repro.core.calendar import ReservationConflict
from repro.core.resources import NodeGroup, ProcessorNode, ResourcePool
from repro.core.schedule import Distribution, Placement
from repro.grid.environment import BackgroundEvent, GridEnvironment


def make_env():
    pool = ResourcePool([
        ProcessorNode(node_id=1, performance=1.0),
        ProcessorNode(node_id=2, performance=0.5),
        ProcessorNode(node_id=3, performance=0.33),
    ])
    return GridEnvironment(pool)


def test_background_event_validation():
    with pytest.raises(ValueError):
        BackgroundEvent(arrival=0, node_id=1, start=5, end=5)
    with pytest.raises(ValueError):
        BackgroundEvent(arrival=-1, node_id=1, start=0, end=1)


def test_snapshot_is_independent():
    env = make_env()
    snapshot = env.snapshot()
    snapshot[1].reserve(0, 5, "what-if")
    assert env.calendars[1].is_free(0, 5)


def test_commit_and_release_distribution():
    env = make_env()
    dist = Distribution("job1", [
        Placement("A", 1, 0, 3),
        Placement("B", 2, 4, 8),
    ])
    assert env.can_commit(dist)
    env.commit_distribution(dist)
    assert not env.calendars[1].is_free(0, 3)
    assert not env.can_commit(dist)
    assert env.release_job("job1") == 2
    assert env.calendars[1].is_free(0, 3)


def test_commit_is_all_or_nothing():
    env = make_env()
    env.calendars[2].reserve(5, 6, "background")
    dist = Distribution("job1", [
        Placement("A", 1, 0, 3),
        Placement("B", 2, 4, 8),  # conflicts with background
    ])
    with pytest.raises(ReservationConflict):
        env.commit_distribution(dist)
    # The first placement must have been rolled back.
    assert env.calendars[1].is_free(0, 3)


def test_release_job_only_touches_that_job():
    env = make_env()
    env.commit_distribution(Distribution("a", [Placement("T", 1, 0, 2)]))
    env.commit_distribution(Distribution("b", [Placement("T", 1, 2, 4)]))
    assert env.release_job("a") == 1
    assert not env.calendars[1].is_free(2, 4)


def test_apply_background_load_hits_target_roughly():
    env = make_env()
    rng = np.random.default_rng(0)
    env.apply_background_load(rng, busy_fraction=0.5, horizon=1000)
    for node_id in (1, 2, 3):
        utilization = env.calendars[node_id].utilization(0, 1000)
        assert 0.35 <= utilization <= 0.65


def test_apply_background_load_validation():
    env = make_env()
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        env.apply_background_load(rng, busy_fraction=1.0, horizon=10)
    with pytest.raises(ValueError):
        env.apply_background_load(rng, busy_fraction=0.5, horizon=0)


def test_background_load_zero_fraction_reserves_nothing():
    env = make_env()
    created = env.apply_background_load(np.random.default_rng(0),
                                        busy_fraction=0.0, horizon=100)
    assert created == 0


def test_sample_background_events_sorted_and_bounded():
    env = make_env()
    events = env.sample_background_events(np.random.default_rng(1),
                                          rate=0.2, horizon=100)
    assert events
    arrivals = [e.arrival for e in events]
    assert arrivals == sorted(arrivals)
    assert all(0 <= e.arrival < 100 for e in events)
    assert all(e.node_id in (1, 2, 3) for e in events)


def test_sample_background_events_validation():
    env = make_env()
    with pytest.raises(ValueError):
        env.sample_background_events(np.random.default_rng(0), rate=0,
                                     horizon=10)


def test_utilization_by_group():
    env = make_env()
    env.calendars[1].reserve(0, 10, "job:x")   # FAST fully busy
    env.calendars[3].reserve(0, 5, "job:y")    # SLOW half busy
    levels = env.utilization_by_group(0, 10)
    assert levels[NodeGroup.FAST] == 1.0
    assert levels[NodeGroup.MEDIUM] == 0.0
    assert levels[NodeGroup.SLOW] == 0.5


def test_utilization_by_group_tagged_excludes_background():
    env = make_env()
    env.calendars[1].reserve(0, 10, "background")
    env.calendars[1].reserve(10, 20, "job:x")
    levels = env.utilization_by_group_tagged(0, 20)
    assert levels[NodeGroup.FAST] == 0.5
    with pytest.raises(ValueError):
        env.utilization_by_group_tagged(5, 5)


# ----------------------------------------------------------------------
# Epoch vector
# ----------------------------------------------------------------------

def test_epochs_track_only_touched_nodes():
    env = make_env()
    before = env.epochs()
    assert set(before) == set(env.pool.node_ids())
    dist = Distribution("j", [Placement("A", 1, 0, 5)])
    env.commit_distribution(dist)
    after = env.epochs()
    assert after[1] != before[1]
    for node_id in env.pool.node_ids():
        if node_id != 1:
            assert after[node_id] == before[node_id]


def test_epoch_slice_follows_node_order():
    env = make_env()
    node_ids = env.pool.node_ids()
    full = env.epochs()
    assert env.epoch_slice(node_ids) == tuple(full[n] for n in node_ids)
    reversed_ids = tuple(reversed(node_ids))
    assert env.epoch_slice(reversed_ids) == tuple(
        full[n] for n in reversed_ids)


def test_snapshot_shares_epochs_until_either_side_writes():
    env = make_env()
    snapshot = env.snapshot()
    for node_id, calendar in snapshot.items():
        assert calendar.version == env.epochs()[node_id]
    # Planning on the snapshot never moves the environment's epochs.
    before = env.epochs()
    snapshot[1].reserve(0, 3)
    assert env.epochs() == before
    assert snapshot[1].version != env.epochs()[1]


def test_release_job_bumps_epochs():
    env = make_env()
    dist = Distribution("j", [Placement("A", 1, 0, 5),
                              Placement("B", 2, 0, 5)])
    env.commit_distribution(dist)
    before = env.epochs()
    assert env.release_job("j") == 2
    after = env.epochs()
    assert after[1] != before[1] and after[2] != before[2]
