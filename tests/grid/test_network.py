"""Unit tests for the interconnect model."""

import pytest

from repro.grid.network import Link, Network


def test_link_validation():
    with pytest.raises(ValueError):
        Link(bandwidth=0)
    with pytest.raises(ValueError):
        Link(bandwidth=1, latency=-1)


def test_link_transfer_slots():
    link = Link(bandwidth=2.0, latency=1)
    assert link.transfer_slots(4) == 3      # 1 + ceil(4/2)
    assert link.transfer_slots(0.5) == 2    # 1 + max(1, ceil(0.25))
    assert link.transfer_slots(0) == 1      # latency only
    with pytest.raises(ValueError):
        link.transfer_slots(-1)


def test_network_intra_vs_inter_domain():
    network = Network()
    volume = 10
    intra = network.transfer_slots(volume, "a", "a")
    inter = network.transfer_slots(volume, "a", "b")
    assert intra < inter


def test_network_dedicated_link():
    network = Network()
    network.connect("a", "b", Link(bandwidth=100.0, latency=0))
    assert network.transfer_slots(10, "a", "b") == 1
    assert network.transfer_slots(10, "b", "a") == 1  # symmetric
    # Unregistered pair falls back to the inter-domain default.
    assert network.transfer_slots(10, "a", "c") > 1


def test_network_connect_same_domain_rejected():
    with pytest.raises(ValueError):
        Network().connect("a", "a", Link(bandwidth=1.0))


def test_link_between_lookup():
    network = Network()
    dedicated = Link(bandwidth=5.0)
    network.connect("x", "y", dedicated)
    assert network.link_between("x", "y") is dedicated
    assert network.link_between("p", "p") is network.intra_domain
    assert network.link_between("p", "q") is network.inter_domain
