"""Unit tests for the data-policy transfer models."""

import pytest

from repro.core.job import DataTransfer
from repro.core.resources import ProcessorNode
from repro.core.strategy import DataPolicyKind
from repro.grid.data import (
    RemoteAccessModel,
    ReplicationModel,
    StaticStorageModel,
    default_policy_models,
)


def nodes():
    return (ProcessorNode(node_id=1, performance=1.0),
            ProcessorNode(node_id=2, performance=0.5))


def transfer(base_time=4):
    return DataTransfer("d", "x", "y", base_time=base_time)


def test_all_policies_free_on_same_node():
    a, _ = nodes()
    for model in (ReplicationModel(), RemoteAccessModel(),
                  StaticStorageModel()):
        assert model.time(transfer(), a, a) == 0


def test_replication_halves_cross_node_time():
    a, b = nodes()
    model = ReplicationModel()
    assert model.time(transfer(4), a, b) == 2
    assert model.estimate(transfer(4)) == 2


def test_replication_rounds_up():
    a, b = nodes()
    assert ReplicationModel().time(transfer(3), a, b) == 2  # ceil(1.5)


def test_replication_overlap_validation():
    with pytest.raises(ValueError):
        ReplicationModel(overlap=1.5)
    with pytest.raises(ValueError):
        ReplicationModel(overlap=-0.1)


def test_remote_access_full_base_time():
    a, b = nodes()
    model = RemoteAccessModel()
    assert model.time(transfer(4), a, b) == 4
    assert model.estimate(transfer(4)) == 4


def test_static_storage_round_trip():
    a, b = nodes()
    model = StaticStorageModel()
    assert model.time(transfer(4), a, b) == 8
    assert model.estimate(transfer(4)) == 8


def test_static_round_trip_validation():
    with pytest.raises(ValueError):
        StaticStorageModel(round_trip=0.5)


def test_policy_ordering_cheap_to_expensive():
    """Replication < remote access < static, driving strategy behaviour."""
    a, b = nodes()
    t = transfer(4)
    assert (ReplicationModel().time(t, a, b)
            < RemoteAccessModel().time(t, a, b)
            < StaticStorageModel().time(t, a, b))


def test_default_policy_models_complete():
    models = default_policy_models()
    assert set(models) == set(DataPolicyKind)
    assert isinstance(models[DataPolicyKind.REPLICATION], ReplicationModel)
    assert isinstance(models[DataPolicyKind.REMOTE_ACCESS], RemoteAccessModel)
    assert isinstance(models[DataPolicyKind.STATIC], StaticStorageModel)
