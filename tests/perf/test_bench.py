"""Tests for the pinned kernel benchmark and its comparison helpers."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.perf import (
    BENCH_SCHEMA_VERSION,
    compare_reports,
    format_comparison,
    measure_speedup,
    run_kernel_bench,
)
from repro.perf.bench import PLAN_CACHE_FLOORS, check_plan_floors


def make_report(**seconds):
    return {
        "benchmark": "kernel",
        "schema": BENCH_SCHEMA_VERSION,
        "workloads": {name: {"seconds": value}
                      for name, value in seconds.items()},
    }


def test_run_kernel_bench_report_shape():
    # sharded_jobs scales the pinned 10^5 sharded scenario down to
    # test size; everything else runs at its pinned configuration.
    report = run_kernel_bench(jobs=2, repeats=1, sharded_jobs=400)
    assert report["schema"] == BENCH_SCHEMA_VERSION
    assert set(report["workloads"]) == {
        "study_fig3a", "critical_works_fig2", "calendar_ops",
        "strategy_generation", "online_sim", "online_large",
        "online_sharded"}
    for entry in report["workloads"].values():
        assert entry["seconds"] > 0
    sharded = report["workloads"]["online_sharded"]
    assert sharded["shards"] == 4
    assert sharded["baseline_shards1_seconds"] > 0
    assert sharded["speedup_vs_shards1"] > 0
    assert report["counters"]["dp.expansions"] > 0
    assert report["timers"]["strategy.generate"] > 0
    # Derived cache stats ride along for every hits/misses counter pair.
    assert report["caches"]["dp.fit_cache"]["hits"] > 0
    assert 0.0 <= report["caches"]["dp.fit_cache"]["hit_rate"] <= 1.0
    assert "flow.plan_cache" in report["caches"]
    # The plan-reuse scenario must clear its own strict floor in-tree.
    large = report["context"]["online_large"]["flow.plan_cache"]
    assert large["reuse_rate"] >= PLAN_CACHE_FLOORS["online_large"]
    assert check_plan_floors(report) == []
    json.dumps(report)  # must be JSON-serializable as-is


def test_run_kernel_bench_workload_filter():
    report = run_kernel_bench(repeats=1, workloads=["calendar_ops"])
    assert set(report["workloads"]) == {"calendar_ops"}
    assert "caches" in report
    with pytest.raises(ValueError, match="unknown workload"):
        run_kernel_bench(repeats=1, workloads=["calendar_ops", "nope"])


def test_compare_reports_flags_only_regressions():
    baseline = make_report(a=1.0, b=1.0, c=1.0)
    current = make_report(a=1.5, b=1.1, c=0.5)
    rows = {row["workload"]: row
            for row in compare_reports(baseline, current, threshold=0.30)}
    assert rows["a"]["regressed"] is True
    assert rows["b"]["regressed"] is False  # within the 30% tolerance
    assert rows["c"]["regressed"] is False
    assert rows["c"]["ratio"] == 0.5


def test_compare_reports_skips_unmatched_and_checks_schema():
    baseline = make_report(a=1.0)
    current = make_report(a=1.0, brand_new=9.9)
    assert len(compare_reports(baseline, current)) == 1
    baseline["schema"] = BENCH_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema mismatch"):
        compare_reports(baseline, current)


def test_format_comparison_mentions_regressions():
    baseline = make_report(a=1.0, b=1.0)
    rows = compare_reports(baseline, make_report(a=2.0, b=0.9))
    text = format_comparison(rows)
    assert "REGRESSED" in text and "warning" in text
    clean = compare_reports(baseline, make_report(a=1.0, b=0.9))
    assert "within" in format_comparison(clean)


def test_measure_speedup_geometric_mean():
    baseline = make_report(a=4.0, b=1.0)
    current = make_report(a=1.0, b=1.0)
    assert measure_speedup(baseline, current) == pytest.approx(2.0)
    assert measure_speedup(make_report(), make_report()) is None


def floor_report(rate, workload="online_large"):
    return {"context": {workload: {"flow.plan_cache": {"reuse_rate": rate}}}}


def test_check_plan_floors_flags_low_reuse():
    floor = PLAN_CACHE_FLOORS["online_large"]
    assert check_plan_floors(floor_report(floor)) == []
    failures = check_plan_floors(floor_report(floor - 0.01))
    assert len(failures) == 1
    assert "online_large" in failures[0] and "floor" in failures[0]


def test_check_plan_floors_skips_workloads_that_did_not_run():
    assert check_plan_floors({"context": {}}) == []
    assert check_plan_floors({}) == []
    # A non-floored workload's context never trips the gate.
    assert check_plan_floors(floor_report(0.0, workload="calendar_ops")) == []


def test_cli_strict_skips_floors_for_micro_workloads(capsys):
    """--strict on workloads without a plan cache exits clean: the
    floors gate only workloads that actually ran."""
    assert main(["perf", "--repeats", "1", "--strict",
                 "--workloads", "calendar_ops"]) == 0
    capsys.readouterr()


def test_committed_baseline_is_comparable():
    """The committed BENCH_kernel.json stays loadable and schema-current."""
    path = Path(__file__).parents[2] / "benchmarks" / "BENCH_kernel.json"
    baseline = json.loads(path.read_text(encoding="utf-8"))
    assert baseline["schema"] == BENCH_SCHEMA_VERSION
    rows = compare_reports(baseline, baseline)
    assert len(rows) == 7
    assert not any(row["regressed"] for row in rows)
    assert baseline["geometric_mean_speedup_vs_reference"] > 1.0
    # The online flow scenarios must stay recorded at a >= 1.5x
    # geometric-mean speedup over the pre-plan-reuse reference (commit
    # 012a1a3, same machine, paired alternating runs): the semantic
    # plan keys turn the template-skewed flash crowd from per-arrival
    # replanning into cache service.
    reference = baseline["reference"]["workloads"]
    product = 1.0
    for name in ("online_sim", "online_large"):
        product *= (reference[name]["seconds"]
                    / baseline["workloads"][name]["seconds"])
    assert product ** 0.5 >= 1.5
    assert baseline["caches"]["dp.fit_cache"]["hits"] > 0
    # The unified context stats ride along in the committed report:
    # every context cache, with policy/entries/eviction structure.
    assert set(baseline["context"]) == {
        "critical_works_fig2", "strategy_generation", "online_sim",
        "online_large", "online_sharded"}
    online = baseline["context"]["online_sim"]
    assert online["flow.plan_cache"]["policy"] == "two-tier-lru"
    assert online["flow.plan_cache"]["hits"] >= 32  # PR 4 warm baseline
    # The plan-reuse scenario clears its strict floor in the committed
    # report, with most reads served as exact hits.
    large = baseline["context"]["online_large"]["flow.plan_cache"]
    assert large["reuse_rate"] >= PLAN_CACHE_FLOORS["online_large"]
    reads = large["hits"] + large["repairs"] + large["misses"]
    assert large["hits"] > 0.5 * reads
    assert large["rebinds"] > 0  # template siblings rebind exact hits
    assert check_plan_floors(baseline) == []
    # The batch placement kernel ran and the plan cache is alive in the
    # recorded online scenario.
    assert baseline["counters"]["placement.batch_queries"] > 0
    assert baseline["counters"]["placement.rows_per_batch"] > 0
    assert baseline["caches"]["flow.plan_cache"]["hit_rate"] > 0
    # The sharded scale scenario: 10^5 arrivals, recorded at >= 2x over
    # its own shards=1 reference (the semantic speedup of planning each
    # job against its shard's domains only), with the per-shard plan
    # caches clearing the same strict reuse floor.
    sharded = baseline["workloads"]["online_sharded"]
    assert sharded["jobs"] >= 100_000
    assert sharded["shards"] == 4
    assert sharded["speedup_vs_shards1"] >= 2.0
    sharded_cache = baseline["context"]["online_sharded"]["flow.plan_cache"]
    assert sharded_cache["reuse_rate"] >= PLAN_CACHE_FLOORS["online_sharded"]


def test_cli_perf_smoke(tmp_path, capsys):
    """`repro perf` runs end to end, writes JSON, and compares."""
    micro = ["--workloads", "calendar_ops", "critical_works_fig2"]
    out = tmp_path / "bench.json"
    assert main(["perf", "--jobs", "2", "--repeats", "1",
                 "--json", str(out), *micro]) == 0
    report = json.loads(out.read_text(encoding="utf-8"))
    assert report["schema"] == BENCH_SCHEMA_VERSION
    assert set(report["workloads"]) == {"calendar_ops",
                                        "critical_works_fig2"}
    assert "caches" in report
    capsys.readouterr()

    assert main(["perf", "--jobs", "2", "--repeats", "1",
                 "--compare", str(out), "--threshold", "1000",
                 *micro]) == 0
    assert "workload" in capsys.readouterr().out

    # Strict mode turns a regression into a non-zero exit.
    shrunk = dict(report)
    shrunk["workloads"] = {
        name: {**entry, "seconds": entry["seconds"] / 1000}
        for name, entry in report["workloads"].items()}
    out.write_text(json.dumps(shrunk), encoding="utf-8")
    assert main(["perf", "--jobs", "2", "--repeats", "1",
                 "--compare", str(out), "--strict", *micro]) == 1
    assert "REGRESSED" in capsys.readouterr().out
