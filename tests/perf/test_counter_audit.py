"""Orphaned-counter audit: hit/miss pairs map 1:1 onto context caches.

The ``*_hits``/``*_misses`` suffix pair is reserved for caches owned by
:class:`repro.core.context.SchedulingContext` (``CONTEXT_CACHE_NAMES``).
These tests keep three views in lockstep — the counters the kernel
actually emits (source scan), the counters the registry documents
(docstring scan), and the counters a live run produces
(``derive_cache_stats``) — so renamed or removed caches cannot leave
dead pairs behind (the pre-PR 5 ``dp.incumbent_hits``/``_misses``
orphan is exactly what this guards against).
"""

import re
from pathlib import Path

import numpy as np

import repro.perf.registry as registry_module
from repro.core.calendar import ReservationCalendar
from repro.core.context import CONTEXT_CACHE_NAMES, SchedulingContext
from repro.core.strategy import StrategyGenerator, StrategyType
from repro.flow.metascheduler import Metascheduler
from repro.grid.environment import GridEnvironment
from repro.perf import PERF, derive_cache_stats
from repro.workload.generator import generate_job, generate_pool

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Literal hit/miss counter emissions: ``PERF.incr("<name>_hits")``.
_EMIT_PATTERN = re.compile(
    r'PERF\.incr\(\s*"(?P<name>[a-z_.]+)_(?:hits|misses)"')
#: Pair mentions in the registry docstring (`` `<name>_hits` ``).
_DOC_PATTERN = re.compile(r"``(?P<name>[a-z_.]+)_hits``")


def emitted_pair_names():
    names = set()
    for path in sorted(SRC.rglob("*.py")):
        for match in _EMIT_PATTERN.finditer(path.read_text()):
            names.add(match.group("name"))
    return names


def test_every_emitted_pair_belongs_to_a_context_cache():
    assert emitted_pair_names() == set(CONTEXT_CACHE_NAMES)


def test_registry_docstring_documents_exactly_the_context_caches():
    documented = {match.group("name")
                  for match in _DOC_PATTERN.finditer(
                      registry_module.__doc__)}
    assert documented == set(CONTEXT_CACHE_NAMES)


def test_stats_surface_covers_every_context_cache():
    stats = SchedulingContext().stats({})
    assert set(CONTEXT_CACHE_NAMES) <= set(stats)


def test_live_run_derives_no_dead_pairs():
    """Exercise every kernel layer under collection; each derived pair
    must be a context cache, and every context cache must show up —
    a dead pair (emitted but unowned) or a dead cache (owned but never
    emitted) both fail."""
    rng = np.random.default_rng(7)
    pool = generate_pool(rng)
    jobs = [generate_job(rng, index) for index in range(3)]
    calendars = {node.node_id: ReservationCalendar() for node in pool}
    grid = GridEnvironment(generate_pool(np.random.default_rng(8)))

    with PERF.collecting() as registry:
        generator = StrategyGenerator(pool)
        for job in jobs:
            for stype in (StrategyType.S1, StrategyType.S2):
                generator.generate(job, calendars, stype)
        metascheduler = Metascheduler(grid)
        flow_job = generate_job(np.random.default_rng(9), 0)
        metascheduler.plan_job(flow_job, StrategyType.S1, 0)
        metascheduler.plan_job(flow_job, StrategyType.S1, 0)  # plan hit
        snapshot = registry.snapshot()

    derived = derive_cache_stats(snapshot["counters"])
    assert set(derived) == set(CONTEXT_CACHE_NAMES)
    for name, stat in derived.items():
        assert stat["hits"] + stat["misses"] > 0, name


def test_incumbent_counters_are_not_a_cache_pair():
    """The warm-start incumbent counters were renamed off the reserved
    suffixes; the old orphaned pair must not resurface."""
    source = "\n".join(path.read_text()
                       for path in sorted(SRC.rglob("*.py")))
    assert "dp.incumbent_hits" not in source
    assert "dp.incumbent_misses" not in source
    assert 'PERF.incr("dp.incumbents_warm")' in source
    assert 'PERF.incr("dp.incumbents_cold")' in source
