"""Unit tests for the perf counter/timer registry."""

import pytest

from repro.core.calendar import ReservationCalendar
from repro.perf import PERF, PerfRegistry


@pytest.fixture()
def registry():
    return PerfRegistry()


def test_starts_disabled_and_empty(registry):
    assert not registry.enabled
    assert registry.counters == {}
    assert registry.timers == {}


def test_incr_accumulates(registry):
    registry.incr("a")
    registry.incr("a", 4)
    registry.incr("b")
    assert registry.counters == {"a": 5, "b": 1}


def test_timer_accumulates_only_when_enabled(registry):
    with registry.timer("phase"):
        pass
    assert "phase" not in registry.timers  # disabled: no-op
    registry.enable()
    with registry.timer("phase"):
        pass
    with registry.timer("phase"):
        pass
    assert registry.timers["phase"] >= 0.0


def test_collecting_restores_prior_state(registry):
    registry.incr("stale")
    with registry.collecting() as live:
        assert live is registry
        assert registry.enabled
        assert registry.counters == {}  # reset dropped the stale count
        registry.incr("fresh")
    assert not registry.enabled
    assert registry.counters == {"fresh": 1}
    with registry.collecting(reset=False):
        registry.incr("fresh")
    assert registry.counters == {"fresh": 2}


def test_snapshot_is_sorted_and_detached(registry):
    registry.incr("z")
    registry.incr("a")
    registry.enable()
    with registry.timer("t"):
        pass
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a", "z"]
    assert list(snapshot["timers"]) == ["t"]
    snapshot["counters"]["a"] = 999
    assert registry.counters["a"] == 1


def test_kernel_reports_into_global_registry():
    """The calendar hot path reports when (and only when) PERF is on."""
    calendar = ReservationCalendar()
    calendar.reserve(0, 5, tag="warm")
    with PERF.collecting() as registry:
        calendar.conflicts(0, 10)
        calendar.is_free(6, 8)
        calendar.earliest_fit(2, 0, 20)
        calendar.copy()
        counters = dict(registry.counters)
    assert counters["calendar.conflicts"] == 1
    assert counters["calendar.is_free"] == 1
    assert counters["calendar.earliest_fit"] == 1
    assert counters["calendar.cow_copies"] == 1
    before = dict(PERF.counters)
    calendar.conflicts(0, 10)  # disabled again: silent
    assert PERF.counters == before


def test_cache_stats_derives_hit_rates():
    from repro.perf import cache_stats

    counters = {
        "dp.fit_cache_hits": 30,
        "dp.fit_cache_misses": 10,
        "flow.plan_cache_misses": 4,   # hits side absent -> 0
        "dp.expansions": 999,          # not a cache pair: ignored
    }
    stats = cache_stats(counters)
    assert set(stats) == {"dp.fit_cache", "flow.plan_cache"}
    assert stats["dp.fit_cache"] == {
        "hits": 30, "misses": 10, "hit_rate": 0.75}
    assert stats["flow.plan_cache"]["hit_rate"] == 0.0
    assert cache_stats({}) == {}


def test_merge_folds_registry_and_dict(registry):
    registry.incr("a", 2)
    other = PerfRegistry()
    other.incr("a", 3)
    other.incr("b")
    other.timers["phase"] = 0.5
    registry.merge(other)
    assert registry.counters == {"a": 5, "b": 1}
    assert registry.timers == {"phase": 0.5}
    registry.merge({"counters": {"b": 4}, "timers": {"phase": 0.25}})
    assert registry.counters == {"a": 5, "b": 5}
    assert registry.timers == {"phase": 0.75}


def test_delta_reports_only_positive_differences(registry):
    registry.incr("a", 2)
    registry.incr("steady", 7)
    base = registry.snapshot()
    registry.incr("a", 3)
    registry.incr("fresh")
    delta = registry.delta(base)
    assert delta == {"counters": {"a": 3, "fresh": 1}, "timers": {}}


def test_delta_then_merge_round_trips(registry):
    """The worker protocol: merging a delta never double-counts."""
    worker = PerfRegistry()
    worker.incr("flow.plan_cache_hits", 10)
    base = worker.snapshot()
    worker.incr("flow.plan_cache_hits", 4)
    worker.incr("flow.plan_repairs", 2)
    registry.merge(worker.delta(base))
    assert registry.counters == {"flow.plan_cache_hits": 4,
                                 "flow.plan_repairs": 2}
    # A second task on the same worker reports from a fresh base.
    base = worker.snapshot()
    worker.incr("flow.plan_cache_hits", 1)
    registry.merge(worker.delta(base))
    assert registry.counters["flow.plan_cache_hits"] == 5
