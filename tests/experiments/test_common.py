"""Unit tests for experiment infrastructure."""

import numpy as np
import pytest

from repro.core.resources import NodeGroup, ProcessorNode, ResourcePool
from repro.experiments.common import ExperimentTable, select_nodes_for_job


def test_table_add_row_validates_columns():
    table = ExperimentTable("x", "title", columns=["a", "b"])
    table.add_row(a=1, b=2)
    with pytest.raises(ValueError):
        table.add_row(a=1)
    with pytest.raises(ValueError):
        table.add_row(a=1, b=2, c=3)


def test_table_formatting_contains_everything():
    table = ExperimentTable("fig9", "demo table", columns=["name", "value"])
    table.add_row(name="alpha", value=1.234)
    table.notes.append("a note")
    text = table.formatted()
    assert "[fig9] demo table" in text
    assert "alpha" in text
    assert "1.23" in text
    assert "note: a note" in text


def test_table_row_map():
    table = ExperimentTable("x", "t", columns=["k", "v"])
    table.add_row(k="a", v=1)
    table.add_row(k="b", v=2)
    assert table.row_map("k")["b"]["v"] == 2


def mixed_pool():
    performances = [0.9, 0.8, 0.7, 0.5, 0.4, 0.33, 0.33, 0.33]
    return ResourcePool([
        ProcessorNode(node_id=i + 1, performance=p)
        for i, p in enumerate(performances)
    ])


def test_select_nodes_keeps_all_groups():
    rng = np.random.default_rng(0)
    subset = select_nodes_for_job(mixed_pool(), rng, count=5)
    assert len(subset) == 5
    groups = {node.group for node in subset}
    assert groups == set(NodeGroup)


def test_select_nodes_count_clamped_to_pool():
    rng = np.random.default_rng(0)
    subset = select_nodes_for_job(mixed_pool(), rng, count=100)
    assert len(subset) == 8


def test_select_nodes_validation():
    with pytest.raises(ValueError):
        select_nodes_for_job(mixed_pool(), np.random.default_rng(0), 0)


def test_select_nodes_no_duplicates():
    rng = np.random.default_rng(3)
    subset = select_nodes_for_job(mixed_pool(), rng, count=6)
    ids = [node.node_id for node in subset]
    assert len(ids) == len(set(ids))


def test_select_nodes_deterministic_per_seed():
    a = select_nodes_for_job(mixed_pool(), np.random.default_rng(7), 5)
    b = select_nodes_for_job(mixed_pool(), np.random.default_rng(7), 5)
    assert [n.node_id for n in a] == [n.node_id for n in b]


def test_select_nodes_routes_integer_seeds_through_named_streams():
    # A bare seed is resolved via repro.sim.rng.RandomStreams, never the
    # unseeded global numpy state, so the subset is seed-reproducible.
    from repro.sim.rng import RandomStreams

    a = select_nodes_for_job(mixed_pool(), 7, 5)
    b = select_nodes_for_job(mixed_pool(), 7, 5)
    assert [n.node_id for n in a] == [n.node_id for n in b]

    via_stream = select_nodes_for_job(
        mixed_pool(), RandomStreams(7).stream("node-selection"), 5)
    assert [n.node_id for n in a] == [n.node_id for n in via_stream]

    other = select_nodes_for_job(mixed_pool(), 8, 5)
    assert [n.node_id for n in a] != [n.node_id for n in other]
