"""Parallel study fan-out is bit-identical to the sequential path.

The studies seed every job from ``streams.fork(name, index)`` — a pure
function of ``(seed, name, index)`` — so generation order cannot leak
into results, and the process-pool runner merges per-job aggregates in
job order.  These tests pin the resulting guarantee: any worker count
yields exactly the sequential aggregates, field for field.
"""

import dataclasses

import pytest

from repro.core.strategy import StrategyType
from repro.experiments.study import (
    ApplicationStudyConfig,
    CoordinatedStudyConfig,
    _effective_workers,
    application_level_study,
    coordinated_flow_study,
)
from repro.metrics.indices import StrategyAggregate

APP_CONFIG = ApplicationStudyConfig(seed=7, n_jobs=6)
FLOW_CONFIG = CoordinatedStudyConfig(seed=7, n_jobs=4)


def assert_aggregates_identical(left, right):
    assert set(left) == set(right)
    for stype in left:
        a, b = left[stype], right[stype]
        assert a.jobs == b.jobs
        assert a.admissible_jobs == b.admissible_jobs
        assert a.generation_expense == b.generation_expense
        assert a.costs == b.costs
        assert a.makespans == b.makespans
        assert a.coverages == b.coverages
        assert a.collisions.by_group == b.collisions.by_group


@pytest.mark.parametrize("workers", [2, 4])
def test_application_study_parallel_matches_sequential(workers):
    sequential = application_level_study(APP_CONFIG, workers=1)
    parallel = application_level_study(APP_CONFIG, workers=workers)
    assert_aggregates_identical(sequential, parallel)


def test_coordinated_study_parallel_matches_sequential():
    sequential = coordinated_flow_study(FLOW_CONFIG, workers=1)
    parallel = coordinated_flow_study(FLOW_CONFIG, workers=2)
    assert set(sequential) == set(parallel)
    for stype in sequential:
        assert dataclasses.asdict(sequential[stype]) == \
            dataclasses.asdict(parallel[stype])


def test_more_workers_than_jobs_is_clamped_not_rejected():
    config = ApplicationStudyConfig(seed=7, n_jobs=2)
    sequential = application_level_study(config, workers=1)
    oversubscribed = application_level_study(config, workers=8)
    assert_aggregates_identical(sequential, oversubscribed)


def test_effective_workers_validation():
    assert _effective_workers(1, 100) == 1
    assert _effective_workers(16, 3) == 3  # clamped to the task count
    assert _effective_workers(None, 100) >= 1  # one per CPU
    with pytest.raises(ValueError):
        _effective_workers(0, 100)
    with pytest.raises(ValueError):
        _effective_workers(-2, 100)


def test_aggregate_merge_rejects_family_mismatch():
    left = StrategyAggregate(stype=StrategyType.S1)
    right = StrategyAggregate(stype=StrategyType.S2)
    with pytest.raises(ValueError):
        left.merge(right)
