"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in ("fig2", "fig3a", "fig4c", "ext-local"):
        assert experiment_id in out


def test_run_fig2(capsys):
    assert main(["run", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "critical works method" in out


def test_run_with_jobs_flag(capsys):
    assert main(["run", "fig3a", "--jobs", "5", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "[fig3a]" in out
    assert "5" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_no_command_prints_help(capsys):
    assert main([]) == 1
    assert "repro" in capsys.readouterr().out


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("list", "run", "all", "analyze"):
        assert command in text


def test_analyze_reports_zero_violations_on_fig2(capsys):
    assert main(["analyze"]) == 0
    out = capsys.readouterr().out
    assert "all invariants hold" in out
    assert "OK (no invariant violations)" in out
    for subject in ("Distribution 1", "strategy(S1)", "strategy(MS1)"):
        assert subject in out


def test_analyze_skip_strategies_is_faster_subset(capsys):
    assert main(["analyze", "--skip-strategies"]) == 0
    out = capsys.readouterr().out
    assert "strategy(S1)" not in out
    assert "outcome" in out


def test_analyze_with_lint_runs_the_simulator_lint(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    assert main(["analyze", "--skip-strategies",
                 "--lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out
