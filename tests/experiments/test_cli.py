"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in ("fig2", "fig3a", "fig4c", "ext-local"):
        assert experiment_id in out


def test_run_fig2(capsys):
    assert main(["run", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "critical works method" in out


def test_run_with_jobs_flag(capsys):
    assert main(["run", "fig3a", "--jobs", "5", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "[fig3a]" in out
    assert "5" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_no_command_prints_help(capsys):
    assert main([]) == 1
    assert "repro" in capsys.readouterr().out


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("list", "run", "all", "analyze"):
        assert command in text


def test_analyze_reports_zero_violations_on_fig2(capsys):
    assert main(["analyze"]) == 0
    out = capsys.readouterr().out
    assert "all invariants hold" in out
    assert "OK (no invariant violations)" in out
    for subject in ("Distribution 1", "strategy(S1)", "strategy(MS1)"):
        assert subject in out


def test_analyze_skip_strategies_is_faster_subset(capsys):
    assert main(["analyze", "--skip-strategies"]) == 0
    out = capsys.readouterr().out
    assert "strategy(S1)" not in out
    assert "outcome" in out


def test_analyze_with_lint_runs_the_simulator_lint(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    assert main(["analyze", "--skip-strategies",
                 "--lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out


# ---------------------------------------------------------------------
# repro study (the resumable grid runner)
# ---------------------------------------------------------------------

def test_study_run_cold_then_warm_resumes(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["study", "run", "fig2", "--store", store]) == 0
    cold = capsys.readouterr().out
    assert "study=fig2 cells=1 computed=1 cached=0 corrupt=0" in cold

    assert main(["study", "run", "fig2", "--store", store]) == 0
    warm = capsys.readouterr().out
    assert "study=fig2 cells=1 computed=0 cached=1 corrupt=0" in warm


def test_study_no_resume_recomputes(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["study", "run", "fig2", "--store", store]) == 0
    capsys.readouterr()
    assert main(["study", "run", "fig2", "--store", store,
                 "--no-resume"]) == 0
    out = capsys.readouterr().out
    assert "computed=1 cached=0" in out


def test_study_ls_and_clean(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["study", "ls", "--store", store]) == 0
    assert "store is empty" in capsys.readouterr().out

    main(["study", "run", "fig2", "--store", store])
    capsys.readouterr()
    assert main(["study", "ls", "--store", store]) == 0
    listing = capsys.readouterr().out
    assert "fig2 cells=1 bytes=" in listing

    assert main(["study", "clean", "--store", store,
                 "--study", "fig2"]) == 0
    assert "removed 1 cell(s) (fig2)" in capsys.readouterr().out


def test_study_export_csv_and_json(tmp_path, capsys):
    store = str(tmp_path / "store")
    out_csv = str(tmp_path / "fig2.csv")
    assert main(["study", "export", "fig2", out_csv,
                 "--store", store]) == 0
    text = (tmp_path / "fig2.csv").read_text()
    assert text.startswith("# study=fig2 results_schema=")
    assert "wrote 1 row(s)" in capsys.readouterr().out

    out_json = str(tmp_path / "fig2.json")
    assert main(["study", "export", "fig2", out_json,
                 "--format", "json", "--store", store]) == 0
    payload = json.loads((tmp_path / "fig2.json").read_text())
    assert payload["study"] == "fig2"
    assert payload["meta"]["cached"] == 1  # served from the csv export


def test_study_export_parquet_gated(tmp_path, capsys):
    from repro.io import PARQUET_AVAILABLE

    store = str(tmp_path / "store")
    out = str(tmp_path / "fig2.parquet")
    status = main(["study", "export", "fig2", out,
                   "--format", "parquet", "--store", store])
    capsys.readouterr()
    if PARQUET_AVAILABLE:  # pragma: no cover - environment-dependent
        assert status == 0
    else:
        assert status == 2


def test_study_run_json_dump(tmp_path, capsys):
    store = str(tmp_path / "store")
    out = str(tmp_path / "results.json")
    assert main(["study", "run", "fig2", "--store", store,
                 "--json", out]) == 0
    payload = json.loads((tmp_path / "results.json").read_text())
    assert payload["meta"]["total"] == 1
    capsys.readouterr()


def test_study_unknown_id_rejected():
    with pytest.raises(SystemExit):
        main(["study", "run", "nope"])


def test_study_without_subcommand_errors(capsys):
    assert main(["study"]) == 2
    assert "usage: repro study" in capsys.readouterr().err
