"""Smoke + shape tests for every experiment (tiny scale, fixed seeds).

The shape assertions mirror the paper's qualitative claims; they run on
reduced job counts, so only the robust orderings are asserted.
"""

import pytest

from repro.core.strategy import StrategyType
from repro.experiments import EXPERIMENTS
from repro.experiments.fig2_example import paper_distributions, run as fig2_run
from repro.experiments.ext_local_policies import (
    reservation_impact,
    run as ext_run,
)
from repro.experiments.study import (
    ApplicationStudyConfig,
    CoordinatedStudyConfig,
    application_level_study,
    coordinated_flow_study,
)


def test_registry_covers_all_figures():
    assert set(EXPERIMENTS) == {
        "fig2", "fig3a", "fig3b", "fig4a", "fig4b", "fig4c",
        "ext-local", "ext-reservations", "abl-dp", "abl-strategy",
        "sens-policy",
    }


def test_sens_policy_shapes_are_stable():
    table = EXPERIMENTS["sens-policy"](n_jobs=15, seed=6)
    for row in table.rows:
        if row["strategy"] == "S1":
            assert row["slow %"] >= row["fast %"] - 15.0
        if row["strategy"] == "S3" and row["fast %"] + row["slow %"] > 0:
            assert row["fast %"] > row["slow %"]


def test_ext_reservations_qos_tradeoff():
    table = EXPERIMENTS["ext-reservations"](n_jobs=30, seed=4)
    rows = table.row_map("mode")
    assert rows["best-effort"]["accepted %"] == 100.0
    assert (rows["reservations"]["deadline hit % (accepted)"]
            > rows["best-effort"]["deadline hit % (accepted)"])
    # The framework's point: reservations deliver more met deadlines
    # overall despite rejecting some jobs outright.
    assert (rows["reservations"]["deadline hit % (all)"]
            >= rows["best-effort"]["deadline hit % (all)"])


def test_fig2_reproduces_paper_shape():
    table = fig2_run()
    rows = table.row_map("distribution")
    cf1 = rows["Distribution 1"]["CF"]
    cf2 = rows["Distribution 2"]["CF"]
    cf3 = rows["Distribution 3"]["CF"]
    # Paper: CF2 strictly cheapest, the outer distributions tie.
    assert cf2 < cf1
    assert cf1 == cf3
    # The method's own optimum is at least as cheap as all three.
    assert rows["critical works method"]["CF"] <= cf2
    assert rows["critical works method"]["admissible"]


def test_fig2_paper_distributions_are_admissible():
    for name, distribution in paper_distributions().items():
        assert distribution.makespan <= 20, name


def test_application_study_shape_small():
    config = ApplicationStudyConfig(seed=2009, n_jobs=40)
    aggregates = application_level_study(config)
    s1 = aggregates[StrategyType.S1]
    s3 = aggregates[StrategyType.S3]
    # S1 finds at least as many admissible schedules as S3.
    assert s1.admissible_pct >= s3.admissible_pct
    # S3 collisions lean fast, and more so than S1's (the Fig. 3b
    # ordering; exact shares need the full-scale run).
    assert s3.collision_split[0] > 50.0
    assert s1.collision_split[0] < s3.collision_split[0]


def test_coordinated_study_shape_small():
    config = CoordinatedStudyConfig(seed=2009, n_jobs=20)
    rows = coordinated_flow_study(config)
    s2 = rows[StrategyType.S2]
    s3 = rows[StrategyType.S3]
    ms1 = rows[StrategyType.MS1]
    # S3 is the cheapest family per unit volume.
    assert s3.cost_per_volume < s2.cost_per_volume
    assert s3.cost_per_volume < ms1.cost_per_volume
    # S2 reserves tighter than MS1 (shorter task execution time).
    assert s2.execution_stretch < ms1.execution_stretch
    # All families committed something.
    assert all(row.committed > 0 for row in rows.values())


def test_ext_local_policies_shape():
    table = ext_run(n_jobs=150, seed=1, capacity=6)
    rows = table.row_map("policy")
    # Backfilling does not increase the mean wait over plain FCFS.
    assert rows["EASY"]["mean wait"] <= rows["FCFS"]["mean wait"]
    # LWF wins the mean but loses the tail (starvation).
    assert rows["LWF"]["max wait"] > rows["FCFS"]["max wait"]
    # Forecast error is larger under FCFS than LWF (paper claim).
    assert (rows["FCFS"]["mean forecast error"]
            > rows["LWF"]["mean forecast error"])


def test_reservation_impact_increases_waits():
    with_res, without_res = reservation_impact(n_jobs=150, seed=1,
                                               capacity=6)
    assert with_res > without_res


def test_reservation_impact_validation():
    with pytest.raises(ValueError):
        reservation_impact(n_jobs=10, reserve_fraction=0.0)


@pytest.mark.parametrize("experiment_id", ["fig3a", "fig3b"])
def test_fig3_runners_produce_tables(experiment_id):
    table = EXPERIMENTS[experiment_id](n_jobs=15, seed=5)
    assert len(table.rows) == 3
    assert {row["strategy"] for row in table.rows} == {"S1", "S2", "S3"}


@pytest.mark.parametrize("experiment_id", ["fig4a", "fig4b", "fig4c"])
def test_fig4_runners_produce_tables(experiment_id):
    table = EXPERIMENTS[experiment_id](n_jobs=10, seed=5)
    assert len(table.rows) == 3


def test_abl_strategy_expense_ordering():
    table = EXPERIMENTS["abl-strategy"](n_jobs=25, seed=3)
    rows = table.row_map("strategy")
    assert rows["S1"]["mean expense"] > rows["MS1"]["mean expense"]
    assert rows["S1"]["mean coverage"] >= rows["MS1"]["mean coverage"]


def test_abl_dp_critical_works_cheapest_dag_scheduler():
    table = EXPERIMENTS["abl-dp"](n_jobs=25, seed=3)
    rows = table.row_map("scheduler")
    cw = rows["critical-works"]
    assert cw["admissible %"] > 0
    for name in ("greedy", "heft"):
        if rows[name]["admissible %"] > 0:
            assert cw["mean CF"] <= rows[name]["mean CF"] * 1.1
