"""Stable row serialization for the study payload types (satellite 2):
explicit field order, schema-version tag, loss-free to_row/from_row
round trips — including through the store's JSON normalization, which
is exactly what a cached cell goes through."""

import pytest

from repro.core.resources import NodeGroup
from repro.core.strategy import StrategyType
from repro.experiments.study import CoordinatedRow
from repro.metrics.indices import ROW_SCHEMA_VERSION, StrategyAggregate
from repro.platform.store import normalize


def aggregate() -> StrategyAggregate:
    built = StrategyAggregate(stype=StrategyType.S2)
    built.jobs = 5
    built.admissible_jobs = 4
    built.generation_expense = 123
    built.costs = [10.0, 20.5]
    built.makespans = [7, 9]
    built.coverages = [0.5, 0.75]
    built.collisions.by_group[NodeGroup.FAST] = 2
    built.collisions.by_group[NodeGroup.SLOW] = 1
    return built


def coordinated_row() -> CoordinatedRow:
    return CoordinatedRow(
        stype=StrategyType.MS1, committed=11, rejected=2,
        load_by_group={NodeGroup.FAST: 0.8, NodeGroup.MEDIUM: 0.4},
        cost_per_volume=1.25, execution_stretch=1.1,
        completion_stretch=1.6, ttl=14.0,
        start_deviation_ratio=0.2, switches=1.5)


# ---------------------------------------------------------------------
# Field order and schema tag
# ---------------------------------------------------------------------

def test_rows_lead_with_schema_and_follow_declared_field_order():
    for built, cls in ((aggregate(), StrategyAggregate),
                       (coordinated_row(), CoordinatedRow)):
        row = built.to_row()
        assert list(row) == ["row_schema", *cls.ROW_FIELDS]
        assert row["row_schema"] == ROW_SCHEMA_VERSION


def test_enums_flatten_to_names():
    row = aggregate().to_row()
    assert row["stype"] == "S2"
    assert row["collisions"] == {"FAST": 2, "MEDIUM": 0, "SLOW": 1}
    assert coordinated_row().to_row()["load_by_group"] == {
        "FAST": 0.8, "MEDIUM": 0.4}


# ---------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------

def test_aggregate_round_trip_direct_and_through_store_normalization():
    built = aggregate()
    for row in (built.to_row(), normalize(built.to_row())):
        back = StrategyAggregate.from_row(row)
        assert back.stype is built.stype
        assert back.jobs == built.jobs
        assert back.admissible_jobs == built.admissible_jobs
        assert back.generation_expense == built.generation_expense
        assert back.costs == built.costs
        assert back.makespans == built.makespans
        assert back.coverages == built.coverages
        assert back.collisions.by_group == built.collisions.by_group
        assert back.to_row() == built.to_row()


def test_coordinated_round_trip_direct_and_through_store_normalization():
    built = coordinated_row()
    for row in (built.to_row(), normalize(built.to_row())):
        back = CoordinatedRow.from_row(row)
        assert back == built
        assert back.to_row() == built.to_row()


def test_from_row_ignores_grid_coordinate_keys():
    row = dict(aggregate().to_row())
    row["stype_axis"] = "S2"  # grid rows prepend axis coordinates
    row["block"] = [0, 25]
    assert StrategyAggregate.from_row(row).to_row() == aggregate().to_row()


def test_from_row_rejects_wrong_schema():
    bad = dict(aggregate().to_row())
    bad["row_schema"] = ROW_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        StrategyAggregate.from_row(bad)
    worse = dict(coordinated_row().to_row())
    del worse["row_schema"]
    with pytest.raises(ValueError, match="schema"):
        CoordinatedRow.from_row(worse)
