"""Unit tests for the preemptive resource (Condor-style preemptive
resume, the paper's ref. [3])."""

import pytest

from repro.sim import (
    Environment,
    Interrupt,
    Preempted,
    PreemptiveResource,
)


def test_urgent_request_preempts_weaker_holder():
    env = Environment()
    resource = PreemptiveResource(env, capacity=1)
    log = []

    def weak(env, resource):
        with resource.request(priority=5) as claim:
            yield claim
            try:
                yield env.timeout(10)
                log.append(("weak-finished", env.now))
            except Interrupt as interrupt:
                cause = interrupt.cause
                assert isinstance(cause, Preempted)
                log.append(("weak-preempted", env.now, cause.usage_since))

    def strong(env, resource):
        yield env.timeout(3)
        with resource.request(priority=1) as claim:
            yield claim
            log.append(("strong-started", env.now))
            yield env.timeout(2)

    env.process(weak(env, resource))
    env.process(strong(env, resource))
    env.run()
    assert ("weak-preempted", 3, 0) in log
    assert ("strong-started", 3) in log


def test_equal_priority_does_not_preempt():
    env = Environment()
    resource = PreemptiveResource(env, capacity=1)
    log = []

    def holder(env, resource, name, priority, delay, hold):
        yield env.timeout(delay)
        with resource.request(priority=priority) as claim:
            yield claim
            log.append((name, "start", env.now))
            yield env.timeout(hold)

    env.process(holder(env, resource, "first", 3, 0, 5))
    env.process(holder(env, resource, "second", 3, 1, 2))
    env.run()
    assert (("first", "start", 0) in log
            and ("second", "start", 5) in log)


def test_stronger_holder_is_not_preempted():
    env = Environment()
    resource = PreemptiveResource(env, capacity=1)
    log = []

    def holder(env, resource, name, priority, delay, hold):
        yield env.timeout(delay)
        with resource.request(priority=priority) as claim:
            yield claim
            log.append((name, env.now))
            yield env.timeout(hold)

    env.process(holder(env, resource, "strong", 1, 0, 6))
    env.process(holder(env, resource, "weak", 9, 2, 1))
    env.run()
    assert ("strong", 0) in log
    assert ("weak", 6) in log


def test_non_preempting_request_waits():
    env = Environment()
    resource = PreemptiveResource(env, capacity=1)
    log = []

    def weak(env, resource):
        with resource.request(priority=5) as claim:
            yield claim
            yield env.timeout(4)
            log.append(("weak-done", env.now))

    def polite(env, resource):
        yield env.timeout(1)
        with resource.request(priority=1, preempt=False) as claim:
            yield claim
            log.append(("polite-start", env.now))

    env.process(weak(env, resource))
    env.process(polite(env, resource))
    env.run()
    assert ("weak-done", 4) in log
    assert ("polite-start", 4) in log


def test_preempted_process_can_resume_elsewhere():
    """The Condor pattern: resume the remaining work after eviction."""
    env = Environment()
    fast = PreemptiveResource(env, capacity=1)
    log = []

    def migratory(env, fast):
        remaining = 10
        with fast.request(priority=5) as claim:
            yield claim
            started = env.now
            try:
                yield env.timeout(remaining)
                remaining = 0
            except Interrupt:
                remaining -= env.now - started
        if remaining:
            # Resume on a (simulated) fallback resource.
            yield env.timeout(remaining)
        log.append(("done", env.now))

    def intruder(env, fast):
        yield env.timeout(4)
        with fast.request(priority=1) as claim:
            yield claim
            yield env.timeout(3)

    env.process(migratory(env, fast))
    env.process(intruder(env, fast))
    env.run()
    # 4 slots on the fast resource + 6 remaining after eviction.
    assert ("done", 10) in log


def test_capacity_two_preempts_only_when_full():
    env = Environment()
    resource = PreemptiveResource(env, capacity=2)
    log = []

    def job(env, resource, name, priority, delay, hold):
        yield env.timeout(delay)
        with resource.request(priority=priority) as claim:
            yield claim
            log.append((name, env.now))
            try:
                yield env.timeout(hold)
            except Interrupt:
                log.append((name + "-evicted", env.now))

    env.process(job(env, resource, "a", 5, 0, 10))
    env.process(job(env, resource, "b", 4, 0, 10))
    env.process(job(env, resource, "c", 1, 2, 1))
    env.run()
    # c evicts the weakest holder (a, priority 5) at t=2.
    assert ("c", 2) in log
    assert ("a-evicted", 2) in log
    assert ("b", 0) in log
