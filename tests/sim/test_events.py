"""Unit tests for event lifecycle, conditions, and failure handling."""

import pytest

from repro.sim import AllOf, AnyOf, ConditionValue, Environment, Event


def test_event_lifecycle_states():
    env = Environment()
    event = env.event()
    assert not event.triggered
    assert not event.processed
    event.succeed("v")
    assert event.triggered
    assert not event.processed
    env.run()
    assert event.processed
    assert event.value == "v"


def test_event_value_before_trigger_is_error():
    env = Environment()
    event = env.event()
    with pytest.raises(RuntimeError):
        _ = event.value
    with pytest.raises(RuntimeError):
        _ = event.ok


def test_double_trigger_is_error():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()
    with pytest.raises(RuntimeError):
        event.fail(ValueError())


def test_fail_requires_exception():
    env = Environment()
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_failed_event_throws_into_waiter():
    env = Environment()
    event = env.event()

    def proc(env, event):
        try:
            yield event
        except KeyError as exc:
            return f"caught {exc}"

    handle = env.process(proc(env, event))
    event.fail(KeyError("oops"))
    env.run()
    assert handle.value == "caught 'oops'"


def test_waiting_on_already_processed_event():
    env = Environment()
    event = env.event()
    event.succeed("early")
    env.run()

    def proc(env, event):
        value = yield event
        return value

    handle = env.process(proc(env, event))
    env.run()
    assert handle.value == "early"


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(3, value="b")
        results = yield env.all_of([t1, t2])
        return (env.now, results[t1], results[t2])

    handle = env.process(proc(env))
    env.run()
    assert handle.value == (3, "a", "b")


def test_any_of_returns_on_first_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        results = yield env.any_of([t1, t2])
        return (env.now, t1 in results, t2 in results)

    handle = env.process(proc(env))
    env.run(until=2)
    assert handle.value == (1, True, False)


def test_all_of_empty_list_triggers_immediately():
    env = Environment()

    def proc(env):
        results = yield env.all_of([])
        return (env.now, len(results))

    handle = env.process(proc(env))
    env.run()
    assert handle.value == (0, 0)


def test_condition_fails_if_subevent_fails():
    env = Environment()

    def failer(env):
        yield env.timeout(1)
        raise ValueError("sub failed")

    def proc(env):
        sub = env.process(failer(env))
        other = env.timeout(10)
        try:
            yield env.all_of([sub, other])
        except ValueError as exc:
            return f"caught {exc}"

    handle = env.process(proc(env))
    env.run()
    assert handle.value == "caught sub failed"


def test_condition_value_mapping_interface():
    env = Environment()
    e1, e2 = env.event(), env.event()
    e1.succeed(1)
    e2.succeed(2)
    value = ConditionValue([e1, e2])
    assert value[e1] == 1
    assert value[e2] == 2
    assert len(value) == 2
    assert list(value) == [e1, e2]
    assert value.todict() == {e1: 1, e2: 2}
    assert value == {e1: 1, e2: 2}
    e3 = env.event()
    with pytest.raises(KeyError):
        _ = value[e3]


def test_condition_rejects_foreign_environment():
    env1, env2 = Environment(), Environment()
    event_foreign = Event(env2)
    with pytest.raises(ValueError):
        AllOf(env1, [event_foreign])


def test_any_of_with_already_triggered_event():
    env = Environment()
    event = env.event()
    event.succeed("done")
    env.run()

    def proc(env, event):
        results = yield AnyOf(env, [event, env.timeout(100)])
        return event in results

    handle = env.process(proc(env, event))
    env.run(until=1)
    assert handle.value is True


def test_trigger_copies_outcome():
    env = Environment()
    source = env.event()
    mirror = env.event()
    source.succeed("mirrored")
    mirror.trigger(source)
    env.run()
    assert mirror.value == "mirrored"
    assert mirror.ok
