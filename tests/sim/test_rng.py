"""Unit tests for deterministic named random streams."""

import pytest

from repro.sim import RandomStreams, stable_hash


def test_stable_hash_is_deterministic():
    assert stable_hash("arrivals") == stable_hash("arrivals")
    assert stable_hash("arrivals") != stable_hash("departures")


def test_same_seed_same_draws():
    a = RandomStreams(seed=7).stream("x")
    b = RandomStreams(seed=7).stream("x")
    assert list(a.integers(0, 1000, size=10)) == list(b.integers(0, 1000, size=10))


def test_different_names_are_independent():
    streams = RandomStreams(seed=7)
    a = streams.stream("a")
    b = streams.stream("b")
    assert list(a.integers(0, 10**9, size=5)) != list(b.integers(0, 10**9, size=5))


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("x")
    b = RandomStreams(seed=2).stream("x")
    assert list(a.integers(0, 10**9, size=5)) != list(b.integers(0, 10**9, size=5))


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("s") is streams.stream("s")


def test_fork_is_order_independent():
    streams = RandomStreams(seed=3)
    first = streams.fork("jobs", 5).integers(0, 10**9)
    # Consuming other forks must not change fork 5.
    streams.fork("jobs", 0).integers(0, 10**9, size=100)
    second = streams.fork("jobs", 5).integers(0, 10**9)
    assert first == second


def test_spawn_derives_independent_family():
    base = RandomStreams(seed=9)
    child1 = base.spawn("rep-1")
    child2 = base.spawn("rep-2")
    assert child1.seed != child2.seed
    assert (child1.stream("x").integers(0, 10**9)
            != child2.stream("x").integers(0, 10**9))


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RandomStreams(seed=-1)
