"""Unit tests for Resource, PriorityResource, Store, FilterStore, Container."""

import pytest

from repro.sim import (
    Container,
    Environment,
    FilterStore,
    PriorityResource,
    Resource,
    Store,
)


def test_resource_grants_up_to_capacity():
    env = Environment()
    resource = Resource(env, capacity=2)
    log = []

    def user(env, resource, name, hold):
        with resource.request() as req:
            yield req
            log.append((name, "start", env.now))
            yield env.timeout(hold)
            log.append((name, "end", env.now))

    env.process(user(env, resource, "a", 3))
    env.process(user(env, resource, "b", 3))
    env.process(user(env, resource, "c", 3))
    env.run()
    starts = {name: t for name, kind, t in log if kind == "start"}
    assert starts == {"a": 0, "b": 0, "c": 3}


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_count_and_queue():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env, resource):
        with resource.request() as req:
            yield req
            yield env.timeout(10)

    def observer(env, resource, out):
        yield env.timeout(1)
        out.append((resource.count, len(resource.queue)))

    out = []
    env.process(holder(env, resource))
    env.process(holder(env, resource))
    env.process(observer(env, resource, out))
    env.run()
    assert out == [(1, 1)]


def test_release_outside_context_manager():
    env = Environment()
    resource = Resource(env, capacity=1)

    def proc(env, resource):
        req = resource.request()
        yield req
        yield env.timeout(1)
        resource.release(req)
        return env.now

    handle = env.process(proc(env, resource))
    env.run()
    assert handle.value == 1
    assert resource.count == 0


def test_request_cancel_from_queue():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env, resource):
        with resource.request() as req:
            yield req
            yield env.timeout(5)

    def impatient(env, resource):
        req = resource.request()
        result = yield env.any_of([req, env.timeout(1)])
        if req not in result:
            req.cancel()
            return "gave up"
        return "got it"  # pragma: no cover

    env.process(holder(env, resource))
    handle = env.process(impatient(env, resource))
    env.run()
    assert handle.value == "gave up"
    assert not resource.queue


def test_priority_resource_serves_urgent_first():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    order = []

    def holder(env, resource):
        with resource.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def user(env, resource, name, priority, delay):
        yield env.timeout(delay)
        with resource.request(priority=priority) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder(env, resource))
    env.process(user(env, resource, "low", 5, 1))
    env.process(user(env, resource, "high", 1, 2))
    env.run()
    assert order == ["high", "low"]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)

    def producer(env, store):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(env, store, out):
        for _ in range(3):
            item = yield store.get()
            out.append(item)

    out = []
    env.process(producer(env, store))
    env.process(consumer(env, store, out))
    env.run()
    assert out == [0, 1, 2]


def test_store_capacity_blocks_producer():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env, store):
        yield store.put("x")
        log.append(("put-x", env.now))
        yield store.put("y")
        log.append(("put-y", env.now))

    def consumer(env, store):
        yield env.timeout(5)
        yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert log == [("put-x", 0), ("put-y", 5)]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)

    def consumer(env, store):
        item = yield store.get()
        return (item, env.now)

    def producer(env, store):
        yield env.timeout(7)
        yield store.put("late")

    handle = env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert handle.value == ("late", 7)


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_filter_store_matches_predicate():
    env = Environment()
    store = FilterStore(env)

    def producer(env, store):
        yield store.put({"size": 1})
        yield store.put({"size": 5})

    def consumer(env, store):
        item = yield store.get(lambda it: it["size"] > 3)
        return item["size"]

    handle = env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert handle.value == 5
    assert store.items == [{"size": 1}]


def test_filter_store_waits_for_matching_item():
    env = Environment()
    store = FilterStore(env)

    def consumer(env, store):
        item = yield store.get(lambda it: it == "wanted")
        return (item, env.now)

    def producer(env, store):
        yield store.put("other")
        yield env.timeout(4)
        yield store.put("wanted")

    handle = env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert handle.value == ("wanted", 4)


def test_filter_store_default_predicate_takes_any():
    env = Environment()
    store = FilterStore(env)

    def proc(env, store):
        yield store.put("a")
        item = yield store.get()
        return item

    handle = env.process(proc(env, store))
    env.run()
    assert handle.value == "a"


def test_container_levels():
    env = Environment()
    tank = Container(env, capacity=10, init=5)

    def proc(env, tank):
        yield tank.get(3)
        assert tank.level == 2
        yield tank.put(8)
        return tank.level

    handle = env.process(proc(env, tank))
    env.run()
    assert handle.value == 10


def test_container_get_blocks_until_enough():
    env = Environment()
    tank = Container(env, capacity=100, init=0)

    def consumer(env, tank):
        yield tank.get(10)
        return env.now

    def producer(env, tank):
        for _ in range(10):
            yield env.timeout(1)
            yield tank.put(1)

    handle = env.process(consumer(env, tank))
    env.process(producer(env, tank))
    env.run()
    assert handle.value == 10


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=5, init=5)

    def producer(env, tank):
        yield tank.put(2)
        return env.now

    def consumer(env, tank):
        yield env.timeout(3)
        yield tank.get(2)

    handle = env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert handle.value == 3


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
