"""Unit tests for simulation statistics collectors."""

import pytest

from repro.sim.monitoring import Tally, TimeWeightedStat


def test_tally_empty_defaults():
    tally = Tally()
    assert tally.count == 0
    assert tally.mean == 0.0
    assert tally.std == 0.0
    assert tally.minimum is None and tally.maximum is None


def test_tally_mean_std_extremes():
    tally = Tally()
    for value in (2, 4, 4, 4, 5, 5, 7, 9):
        tally.record(value)
    assert tally.count == 8
    assert tally.mean == pytest.approx(5.0)
    assert tally.std == pytest.approx(2.138, abs=1e-3)
    assert tally.minimum == 2
    assert tally.maximum == 9


def test_tally_single_sample():
    tally = Tally()
    tally.record(3.5)
    assert tally.mean == 3.5
    assert tally.std == 0.0


def test_time_weighted_mean():
    stat = TimeWeightedStat(initial=0)
    stat.record(10, 4)
    stat.record(30, 1)
    assert stat.mean(until=40) == pytest.approx(2.25)
    assert stat.value == 1
    assert stat.maximum == 4
    assert stat.minimum == 0


def test_time_weighted_increment():
    stat = TimeWeightedStat()
    stat.increment(5)        # queue length 1 at t=5
    stat.increment(10)       # 2 at t=10
    stat.increment(15, -1)   # 1 at t=15
    assert stat.value == 1
    # 0*5 + 1*5 + 2*5 + 1*5 over 20 slots.
    assert stat.mean(until=20) == pytest.approx(1.0)


def test_time_goes_backwards_rejected():
    stat = TimeWeightedStat()
    stat.record(10, 1)
    with pytest.raises(ValueError):
        stat.record(5, 2)
    with pytest.raises(ValueError):
        stat.mean(until=5)


def test_mean_at_start_is_current_value():
    stat = TimeWeightedStat(initial=7, start=100)
    assert stat.mean(until=100) == 7


def test_custom_start_offset():
    stat = TimeWeightedStat(initial=2, start=50)
    stat.record(60, 4)
    # 2 for 10 slots, 4 for 10 slots over [50, 70].
    assert stat.mean(until=70) == pytest.approx(3.0)
