"""Edge-case tests for the DES engine not covered by the basic suite."""

import pytest

from repro.sim import Environment, Event, StopProcess


def test_schedule_after_partial_run_continues():
    env = Environment()
    log = []

    def proc(env):
        while True:
            log.append(env.now)
            yield env.timeout(3)

    env.process(proc(env))
    env.run(until=4)
    env.run(until=10)
    assert log == [0, 3, 6, 9]


def test_run_until_event_that_fails():
    env = Environment()

    def failer(env):
        yield env.timeout(2)
        raise ValueError("kaput")

    handle = env.process(failer(env))
    with pytest.raises(ValueError, match="kaput"):
        env.run(until=handle)


def test_two_processes_wait_on_same_event():
    env = Environment()
    gate = env.event()
    results = []

    def waiter(env, gate, name):
        value = yield gate
        results.append((name, value, env.now))

    env.process(waiter(env, gate, "a"))
    env.process(waiter(env, gate, "b"))

    def opener(env, gate):
        yield env.timeout(5)
        gate.succeed("open")

    env.process(opener(env, gate))
    env.run()
    assert results == [("a", "open", 5), ("b", "open", 5)]


def test_process_value_before_completion_raises():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    handle = env.process(proc(env))
    with pytest.raises(RuntimeError):
        _ = handle.value


def test_stop_process_exception_value():
    exc = StopProcess("payload")
    assert exc.value == "payload"


def test_event_failure_without_handler_crashes_at_step():
    env = Environment()
    event = env.event()

    def waiter(env, event):
        yield event  # no try/except: failure propagates

    env.process(waiter(env, event))
    event.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_failed_event_with_no_waiters_crashes_unless_defused():
    env = Environment()
    event = env.event()
    event.fail(RuntimeError("lonely failure"))
    with pytest.raises(RuntimeError, match="lonely failure"):
        env.run()

    env2 = Environment()
    event2 = env2.event()
    event2.fail(RuntimeError("defused"))
    event2.defused = True
    env2.run()  # no crash


def test_zero_delay_timeout_runs_in_order():
    env = Environment()
    log = []

    def proc(env, name):
        yield env.timeout(0)
        log.append(name)

    env.process(proc(env, "first"))
    env.process(proc(env, "second"))
    env.run()
    assert log == ["first", "second"]
    assert env.now == 0


def test_interrupt_then_rewait_original_event():
    """An interrupted process may re-wait the event it was thrown off."""
    env = Environment()

    def victim(env, slow):
        from repro.sim import Interrupt

        try:
            yield slow
        except Interrupt:
            pass
        value = yield slow  # still pending; wait again
        return (value, env.now)

    slow = env.timeout(10, value="done")
    handle = env.process(victim(env, slow))

    def poker(env, handle):
        yield env.timeout(3)
        handle.interrupt()

    env.process(poker(env, handle))
    env.run()
    assert handle.value == ("done", 10)


def test_float_times_are_supported():
    env = Environment()

    def proc(env):
        yield env.timeout(0.5)
        yield env.timeout(0.25)
        return env.now

    handle = env.process(proc(env))
    env.run()
    assert handle.value == pytest.approx(0.75)
