"""Unit tests for the DES environment and clock semantics."""

import pytest

from repro.sim import EmptySchedule, Environment, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0


def test_clock_custom_initial_time():
    env = Environment(initial_time=100)
    assert env.now == 100


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5)
        return env.now

    handle = env.process(proc(env))
    env.run()
    assert handle.value == 5
    assert env.now == 5


def test_timeout_value_passes_through():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1, value="payload")
        return got

    handle = env.process(proc(env))
    env.run()
    assert handle.value == "payload"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_before_horizon_events():
    env = Environment()
    log = []

    def proc(env):
        while True:
            log.append(env.now)
            yield env.timeout(2)

    env.process(proc(env))
    env.run(until=4)
    # The event at t=4 must NOT be processed.
    assert log == [0, 2]
    assert env.now == 4


def test_run_until_past_time_is_error():
    env = Environment(initial_time=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "done"

    handle = env.process(proc(env))
    result = env.run(until=handle)
    assert result == "done"
    assert env.now == 3


def test_run_until_already_processed_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 7

    handle = env.process(proc(env))
    env.run()
    assert env.run(until=handle) == 7


def test_run_drains_queue_when_until_none():
    env = Environment()

    def proc(env):
        for _ in range(3):
            yield env.timeout(1)

    env.process(proc(env))
    env.run()
    assert env.now == 3


def test_step_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4)
    assert env.peek() == 4


def test_interleaving_is_deterministic():
    env = Environment()
    log = []

    def clock(env, name, tick):
        while True:
            log.append((name, env.now))
            yield env.timeout(tick)

    env.process(clock(env, "fast", 1))
    env.process(clock(env, "slow", 2))
    env.run(until=4)
    assert log == [
        ("fast", 0), ("slow", 0),
        ("fast", 1),
        ("slow", 2), ("fast", 2),
        ("fast", 3),
    ]


def test_simultaneous_events_fifo_order():
    env = Environment()
    log = []

    def proc(env, name):
        yield env.timeout(1)
        log.append(name)

    for name in ("a", "b", "c"):
        env.process(proc(env, name))
    env.run()
    assert log == ["a", "b", "c"]


def test_unhandled_process_failure_crashes_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise RuntimeError("boom")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_exit_terminates_process_with_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        env.exit(42)
        yield env.timeout(100)  # pragma: no cover - never reached

    handle = env.process(proc(env))
    env.run()
    assert handle.value == 42
    assert env.now == 1


def test_nested_process_waiting():
    env = Environment()

    def child(env):
        yield env.timeout(5)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return f"parent got {result}"

    handle = env.process(parent(env))
    env.run()
    assert handle.value == "parent got child-result"


def test_process_failure_propagates_to_waiter():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise ValueError("inner")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return f"caught {exc}"

    handle = env.process(parent(env))
    env.run()
    assert handle.value == "caught inner"


def test_yielding_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_interrupt_raises_inside_process():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(10)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, env.now)

    def attacker(env, victim_handle):
        yield env.timeout(3)
        victim_handle.interrupt(cause="because")

    victim_handle = env.process(victim(env))
    env.process(attacker(env, victim_handle))
    env.run()
    assert victim_handle.value == ("interrupted", "because", 3)


def test_interrupt_dead_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    handle = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        handle.interrupt()


def test_process_is_alive_transitions():
    env = Environment()

    def proc(env):
        yield env.timeout(2)

    handle = env.process(proc(env))
    assert handle.is_alive
    env.run()
    assert not handle.is_alive
