"""Unit tests for statistics helpers."""

import pytest

from repro.metrics.stats import (
    confidence_interval,
    mean,
    normalize_relative,
    percentage,
    std,
)


def test_mean():
    assert mean([]) == 0.0
    assert mean([1, 2, 3]) == 2.0


def test_std():
    assert std([]) == 0.0
    assert std([5]) == 0.0
    assert std([2, 4]) == pytest.approx(2 ** 0.5)


def test_confidence_interval_contains_mean():
    low, high = confidence_interval([1, 2, 3, 4, 5])
    assert low <= 3 <= high
    assert confidence_interval([]) == (0.0, 0.0)


def test_confidence_interval_narrows_with_more_data():
    small = confidence_interval([1, 5] * 5)
    large = confidence_interval([1, 5] * 500)
    assert (large[1] - large[0]) < (small[1] - small[0])


def test_normalize_relative():
    values = {"a": 2.0, "b": 4.0}
    relative = normalize_relative(values)
    assert relative == {"a": 0.5, "b": 1.0}
    assert normalize_relative({}) == {}
    assert normalize_relative({"a": 0.0}) == {"a": 0.0}


def test_percentage():
    assert percentage(1, 4) == 25.0
    assert percentage(1, 0) == 0.0
