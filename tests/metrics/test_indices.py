"""Unit tests for strategy aggregation indices."""

from repro.core.calendar import ReservationCalendar
from repro.core.strategy import StrategyGenerator, StrategyType
from repro.metrics.indices import StrategyAggregate, aggregate_strategies
from repro.workload.paper_example import fig2_job, fig2_pool


def make_strategies():
    pool = fig2_pool()
    generator = StrategyGenerator(pool)
    calendars = {n.node_id: ReservationCalendar() for n in pool}
    return [
        generator.generate(fig2_job(), calendars, StrategyType.S1),
        generator.generate(fig2_job(deadline=5), calendars,
                           StrategyType.S1),  # inadmissible
        generator.generate(fig2_job(), calendars, StrategyType.MS1),
    ]


def test_aggregate_groups_by_family():
    aggregates = aggregate_strategies(make_strategies())
    assert set(aggregates) == {StrategyType.S1, StrategyType.MS1}
    assert aggregates[StrategyType.S1].jobs == 2
    assert aggregates[StrategyType.MS1].jobs == 1


def test_admissible_percentage():
    aggregates = aggregate_strategies(make_strategies())
    assert aggregates[StrategyType.S1].admissible_pct == 50.0
    assert aggregates[StrategyType.MS1].admissible_pct == 100.0


def test_expense_and_costs_accumulate():
    aggregates = aggregate_strategies(make_strategies())
    s1 = aggregates[StrategyType.S1]
    assert s1.generation_expense > 0
    assert s1.mean_expense == s1.generation_expense / 2
    assert len(s1.costs) == 1  # only the admissible job has a best cost
    assert s1.mean_cost > 0
    assert s1.mean_makespan > 0


def test_collision_split_properties():
    aggregates = aggregate_strategies(make_strategies())
    s1 = aggregates[StrategyType.S1]
    fast, slow = s1.collision_split
    if s1.collisions.total:
        assert fast + slow == 100.0
    else:
        assert (fast, slow) == (0.0, 0.0)


def test_empty_aggregate_defaults():
    empty = StrategyAggregate(stype=StrategyType.S2)
    assert empty.admissible_pct == 0.0
    assert empty.mean_cost == 0.0
    assert empty.mean_expense == 0.0
    assert empty.mean_coverage == 0.0
