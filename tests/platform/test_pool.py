"""Worker clamping and the shared fan-out helper (satellite 1)."""

import os

import pytest

from repro.platform import effective_workers, fanout_map

from .gridtoys import square


def test_effective_workers_clamps_to_task_count():
    assert effective_workers(8, 3) == 3
    assert effective_workers(2, 100) == 2
    assert effective_workers(4, 0) == 1  # at least one worker


def test_effective_workers_none_means_cpu_count():
    assert effective_workers(None, 10 ** 6) == (os.cpu_count() or 1)


def test_effective_workers_rejects_non_positive():
    with pytest.raises(ValueError, match="positive"):
        effective_workers(0, 5)
    with pytest.raises(ValueError, match="positive"):
        effective_workers(-2, 5)


def test_fanout_map_inline_matches_parallel():
    items = list(range(12))
    inline = list(fanout_map(square, items, workers=1))
    fanned = list(fanout_map(square, items, workers=3))
    assert inline == fanned == [item * item for item in items]


def test_fanout_map_single_item_stays_inline():
    assert list(fanout_map(square, [7], workers=4)) == [49]


def test_fanout_map_is_lazy_inline():
    # The inline path is a generator: nothing runs until consumed.
    calls = []

    def tracked(item):
        calls.append(item)
        return item

    iterator = fanout_map(tracked, [1, 2, 3], workers=1)
    assert calls == []
    assert next(iterator) == 1
    assert calls == [1]
