"""Results queries and versioned exports."""

import csv
import json

import pytest

from repro.io import PARQUET_AVAILABLE
from repro.platform import RESULTS_SCHEMA_VERSION, Results


def sample() -> Results:
    return Results(
        study="toy",
        columns=("kind", "x", "score", "tags"),
        rows=[
            {"kind": "a", "x": 0, "score": 1.5, "tags": ["p"]},
            {"kind": "a", "x": 1, "score": 2.5, "tags": ["q"]},
            {"kind": "b", "x": 0, "score": 9.0, "tags": []},
        ],
        meta={"total": 3, "computed": 3, "cached": 0, "corrupt": 0},
    )


# ---------------------------------------------------------------------
# Container protocol and queries
# ---------------------------------------------------------------------

def test_container_protocol():
    results = sample()
    assert len(results) == 3
    assert results[2]["score"] == 9.0
    assert [row["x"] for row in results] == [0, 1, 0]


def test_filter_by_equality_and_predicate():
    results = sample()
    assert len(results.filter(kind="a")) == 2
    assert len(results.filter(kind="a", x=1)) == 1
    assert len(results.filter(lambda row: row["score"] > 2.0)) == 2
    narrowed = results.filter(lambda row: row["score"] > 2.0, kind="a")
    assert narrowed.rows == [
        {"kind": "a", "x": 1, "score": 2.5, "tags": ["q"]}]
    # Filtering copies; the original is untouched.
    assert len(results) == 3


def test_group_by_preserves_cell_order_and_handles_lists():
    groups = sample().group_by("kind")
    assert list(groups) == [("a",), ("b",)]
    assert len(groups[("a",)]) == 2
    # List-valued columns (JSON-normalized coordinates) key as tuples.
    by_tags = sample().group_by("tags")
    assert list(by_tags) == [(("p",),), (("q",),), ((),)]


def test_column_extraction():
    assert sample().column("score") == [1.5, 2.5, 9.0]
    assert sample().column("missing") == [None, None, None]


def test_to_table_round_trip():
    table = sample().to_table(experiment_id="toy-table", title="Toy")
    assert table.experiment_id == "toy-table"
    assert list(table.columns) == ["kind", "x", "score", "tags"]
    assert len(table.rows) == 3
    narrowed = sample().to_table(columns=("kind", "score"))
    assert list(narrowed.columns) == ["kind", "score"]


# ---------------------------------------------------------------------
# Versioned exports
# ---------------------------------------------------------------------

def test_json_export_carries_schema_and_rows(tmp_path):
    out = tmp_path / "toy.json"
    sample().to_json(str(out))
    payload = json.loads(out.read_text())
    assert payload["results_schema"] == RESULTS_SCHEMA_VERSION
    assert payload["study"] == "toy"
    assert payload["columns"] == ["kind", "x", "score", "tags"]
    assert payload["rows"][2]["score"] == 9.0
    assert payload["meta"]["total"] == 3


def test_csv_export_has_schema_comment_and_flat_cells(tmp_path):
    out = tmp_path / "toy.csv"
    sample().to_csv(str(out))
    lines = out.read_text().splitlines()
    assert lines[0] == f"# study=toy results_schema={RESULTS_SCHEMA_VERSION}"
    reader = csv.DictReader(lines[1:])
    rows = list(reader)
    assert len(rows) == 3
    assert rows[0]["tags"] == '["p"]'  # containers embed as JSON


def test_parquet_export_is_gated_on_pyarrow(tmp_path):
    out = tmp_path / "toy.parquet"
    if PARQUET_AVAILABLE:  # pragma: no cover - environment-dependent
        sample().to_parquet(str(out))
        assert out.exists()
    else:
        with pytest.raises(RuntimeError, match="pyarrow"):
            sample().to_parquet(str(out))
        assert not out.exists()
