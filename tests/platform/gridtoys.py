"""Importable toy cell runners for the platform tests.

Grid runners are addressed as ``"module:function"`` strings and must be
importable from worker processes, so they live in a real module rather
than inside test functions.
"""

from __future__ import annotations

from typing import Any, Mapping


def square_cell(config: Mapping[str, Any]) -> dict[str, Any]:
    """Pure function of the resolved config: payload is reproducible."""
    return {"square": config["x"] ** 2 + config["offset"],
            "label": f"{config['kind']}:{config['x']}"}


def tuple_cell(config: Mapping[str, Any]) -> dict[str, Any]:
    """Returns a tuple-valued payload — exercises JSON normalization
    (cold rows must equal warm rows, where tuples read back as lists)."""
    return {"pair": (config["x"], config["x"] + 1)}


def scalar_cell(config: Mapping[str, Any]) -> int:
    """Non-mapping payload; the merge puts it under the ``value`` key."""
    return config["x"] * 10


def square(item: int) -> int:
    """Module-level worker for ``fanout_map`` (must pickle)."""
    return item * item
