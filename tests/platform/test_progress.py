"""ProgressEvent rendering and the StudyReporter ticker."""

import io

from repro.platform import ProgressEvent, StudyReporter


def event(done: int, total: int = 4, computed: int = 0, cached: int = 0,
          eta=None) -> ProgressEvent:
    return ProgressEvent(study="toy", done=done, total=total,
                         computed=computed, cached=cached, corrupt=0,
                         elapsed_seconds=1.0, eta_seconds=eta)


def test_fraction_and_describe():
    halfway = event(2, computed=1, cached=1, eta=3.0)
    assert halfway.fraction == 0.5
    text = halfway.describe()
    assert text.startswith("[toy] 2/4 cells")
    assert "1 cached" in text and "1 computed" in text
    assert "eta   3.0s" in text
    assert "eta --" in event(1, computed=0, cached=1).describe()
    assert ProgressEvent(study="s", done=0, total=0, computed=0,
                         cached=0, corrupt=0, elapsed_seconds=0.0,
                         eta_seconds=None).fraction == 1.0


def test_reporter_collects_without_echo():
    reporter = StudyReporter()
    assert reporter.last is None
    reporter(event(1))
    reporter(event(2))
    assert len(reporter.events) == 2
    assert reporter.last.done == 2


def test_reporter_echo_uses_carriage_returns_then_newline():
    stream = io.StringIO()
    reporter = StudyReporter(echo=True, stream=stream)
    for done in (1, 2, 3, 4):
        reporter(event(done, computed=done))
    text = stream.getvalue()
    assert text.count("\r") == 3
    assert text.endswith("\n")
    assert "[toy] 4/4 cells (0 cached, 4 computed, 0 corrupt)" in text
