"""Content-addressed store: keys, corruption detection, invalidation."""

import json

import pytest

from repro.perf import PERF
from repro.platform import ResultStore, content_key
from repro.platform.store import (STORE_SCHEMA_VERSION, canonical_json,
                                  normalize)


# ---------------------------------------------------------------------
# Canonical encoding and keys
# ---------------------------------------------------------------------

def test_canonical_json_is_order_and_container_insensitive():
    assert canonical_json({"b": 1, "a": (1, 2)}) == \
        canonical_json({"a": [1, 2], "b": 1})


def test_canonical_json_flattens_enums():
    from repro.core.strategy import StrategyType

    assert canonical_json({"stype": StrategyType.S1}) == \
        canonical_json({"stype": StrategyType.S1.value})


def test_canonical_json_rejects_unserializable():
    with pytest.raises(TypeError, match="not canonically serializable"):
        canonical_json({"fn": object()})


def test_normalize_matches_store_round_trip(tmp_path):
    payload = {"pair": (1, 2), "n": 3}
    store = ResultStore(tmp_path)
    store.put("k" * 64, payload)
    assert store.get("k" * 64) == normalize(payload)
    assert normalize(payload) == {"pair": [1, 2], "n": 3}


def test_content_key_is_stable_and_sensitive():
    base = {"study": "s", "config": {"x": 1, "seed": 7}}
    assert content_key(base) == content_key(
        {"config": {"seed": 7, "x": 1}, "study": "s"})
    changed = {"study": "s", "config": {"x": 2, "seed": 7}}
    assert content_key(base) != content_key(changed)


# ---------------------------------------------------------------------
# Read/write path and corruption detection (satellite 3)
# ---------------------------------------------------------------------

def _key(n: int) -> str:
    return content_key({"cell": n})


def test_put_get_round_trip_and_contains(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get(_key(0)) is None
    store.put(_key(0), {"v": 1}, study="toy", coords=(("x", 0),))
    assert _key(0) in store
    assert store.get(_key(0)) == {"v": 1}


def test_truncated_record_detected_as_corrupt(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_key(1), {"v": [1, 2, 3]})
    path = store.path_for(_key(1))
    path.write_text(path.read_text()[:-20])

    with PERF.collecting():
        assert store.get(_key(1)) is None
    assert PERF.counters.get("platform.store_corrupt") == 1


def test_bit_flipped_body_fails_digest_check(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_key(2), {"v": 41})
    path = store.path_for(_key(2))
    record = json.loads(path.read_text())
    record["body"]["v"] = 42  # digest no longer matches
    path.write_text(json.dumps(record))

    with PERF.collecting():
        assert store.get(_key(2)) is None
    assert PERF.counters.get("platform.store_corrupt") == 1


def test_wrong_key_and_wrong_store_schema_read_as_corrupt(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_key(3), {"v": 1})
    # A record copied under a different key must not be served.
    misfiled = store.path_for(_key(4))
    misfiled.parent.mkdir(parents=True, exist_ok=True)
    misfiled.write_text(store.path_for(_key(3)).read_text())
    assert store.get(_key(4)) is None

    record = json.loads(store.path_for(_key(3)).read_text())
    record["store_schema"] = STORE_SCHEMA_VERSION + 1
    store.path_for(_key(3)).write_text(json.dumps(record))
    assert store.get(_key(3)) is None


def test_counters_track_served_absent_corrupt(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_key(5), {"v": 1})
    store.path_for(_key(6)).parent.mkdir(parents=True, exist_ok=True)
    store.path_for(_key(6)).write_text("{not json")
    with PERF.collecting():
        assert store.get(_key(5)) == {"v": 1}
        assert store.get(_key(6)) is None
        assert store.get(_key(7)) is None
    assert PERF.counters == {"platform.store_served": 1,
                             "platform.store_corrupt": 1,
                             "platform.store_absent": 1}


# ---------------------------------------------------------------------
# Inventory and clean
# ---------------------------------------------------------------------

def test_inventory_and_clean_by_study(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_key(10), {"v": 1}, study="alpha")
    store.put(_key(11), {"v": 2}, study="alpha")
    store.put(_key(12), {"v": 3}, study="beta")

    inventory = store.inventory()
    assert inventory["alpha"]["cells"] == 2
    assert inventory["beta"]["cells"] == 1
    assert inventory["alpha"]["bytes"] > 0

    assert store.clean(study="alpha") == 2
    assert store.inventory() == {"beta": {
        "cells": 1,
        "bytes": store.path_for(_key(12)).stat().st_size}}
    assert store.clean() == 1
    assert store.inventory() == {}


def test_clean_on_missing_root_is_a_noop(tmp_path):
    assert ResultStore(tmp_path / "never-created").clean() == 0
