"""StudyGrid pipeline: enumeration, resume, invalidation, concurrency."""

import asyncio

import pytest

from repro.platform import (ProgressEvent, ResultStore, StudyGrid,
                            StudyReporter, run_grid)

RUNNER = "tests.platform.gridtoys:square_cell"


def toy_grid(offset: int = 0, xs=(0, 1, 2), kinds=("a", "b")) -> StudyGrid:
    return StudyGrid(
        study="toy",
        runner=RUNNER,
        axes={"kind": list(kinds), "x": list(xs)},
        base={"offset": offset},
    )


# ---------------------------------------------------------------------
# Enumeration and keys
# ---------------------------------------------------------------------

def test_cells_enumerate_in_axis_order():
    cells = list(toy_grid().cells())
    assert len(cells) == len(toy_grid()) == 6
    assert [cell.coords for cell in cells[:3]] == [
        (("kind", "a"), ("x", 0)),
        (("kind", "a"), ("x", 1)),
        (("kind", "a"), ("x", 2)),
    ]
    assert [cell.index for cell in cells] == list(range(6))
    # Resolved config = base + coords, axis values shadowing base keys.
    assert cells[0].config == {"offset": 0, "kind": "a", "x": 0}


def test_keys_depend_on_config_not_axis_listing():
    full = {cell.coords: cell.key for cell in toy_grid().cells()}
    subset = {cell.coords: cell.key
              for cell in toy_grid(xs=(1,), kinds=("b",)).cells()}
    for coords, key in subset.items():
        assert full[coords] == key


def test_key_changes_with_schema_version_and_runner():
    grid = toy_grid()
    cell = next(grid.cells())
    bumped = StudyGrid(study=grid.study, runner=grid.runner,
                       axes=grid.axes, base=grid.base, schema_version=2)
    assert next(bumped.cells()).key != cell.key


def test_bad_runner_paths_rejected():
    with pytest.raises(ValueError, match="module:function"):
        StudyGrid(study="x", runner="no-colon", axes={"x": [1]}).run()
    with pytest.raises(TypeError, match="not callable"):
        StudyGrid(study="x", runner="tests.platform.gridtoys:__doc__",
                  axes={"x": [1]}).run()


# ---------------------------------------------------------------------
# Cold → warm resume (satellite 3 acceptance behaviors)
# ---------------------------------------------------------------------

def test_cold_then_warm_is_bit_identical_full_cache_hit(tmp_path):
    store = ResultStore(tmp_path)
    cold = toy_grid().run(store=store)
    warm = toy_grid().run(store=store)
    assert cold.meta["computed"] == 6 and cold.meta["cached"] == 0
    assert warm.meta["computed"] == 0 and warm.meta["cached"] == 6
    assert warm.rows == cold.rows
    # Payload keys read back in canonical (sorted) order on both paths.
    assert warm.columns == cold.columns == ("kind", "x", "label", "square")


def test_grown_axis_computes_only_new_cells(tmp_path):
    store = ResultStore(tmp_path)
    toy_grid().run(store=store)
    grown = toy_grid(xs=(0, 1, 2, 3)).run(store=store)
    assert grown.meta["total"] == 8
    assert grown.meta["cached"] == 6 and grown.meta["computed"] == 2


def test_changed_base_parameter_invalidates_every_cell(tmp_path):
    store = ResultStore(tmp_path)
    toy_grid(offset=0).run(store=store)
    changed = toy_grid(offset=5).run(store=store)
    assert changed.meta["cached"] == 0 and changed.meta["computed"] == 6
    # ...and the original slice is still served untouched.
    again = toy_grid(offset=0).run(store=store)
    assert again.meta["cached"] == 6


def test_corrupted_cell_recomputed_identically(tmp_path):
    store = ResultStore(tmp_path)
    cold = toy_grid().run(store=store)
    victim = list(toy_grid().cells())[3]
    path = store.path_for(victim.key)
    path.write_text(path.read_text()[: len(path.read_text()) // 2])

    repaired = toy_grid().run(store=store)
    assert repaired.meta["corrupt"] == 1
    assert repaired.meta["computed"] == 1
    assert repaired.meta["cached"] == 5
    assert repaired.rows == cold.rows
    # The repaired record now verifies again.
    assert store.get(victim.key) is not None


def test_no_resume_recomputes_but_refreshes_store(tmp_path):
    store = ResultStore(tmp_path)
    toy_grid().run(store=store)
    forced = toy_grid().run(store=store, resume=False)
    assert forced.meta["computed"] == 6 and forced.meta["cached"] == 0
    warm = toy_grid().run(store=store)
    assert warm.meta["cached"] == 6


# ---------------------------------------------------------------------
# Concurrency and normalization
# ---------------------------------------------------------------------

def test_parallel_run_is_bit_identical_to_sequential(tmp_path):
    sequential = toy_grid().run()
    parallel = toy_grid().run(workers=3)
    assert parallel.rows == sequential.rows
    assert parallel.meta["computed"] == 6


def test_parallel_cold_run_populates_store(tmp_path):
    store = ResultStore(tmp_path)
    toy_grid().run(store=store, workers=2)
    warm = toy_grid().run(store=store)
    assert warm.meta["cached"] == 6


def test_tuple_payloads_normalize_identically_cold_and_warm(tmp_path):
    grid = StudyGrid(study="tuples",
                     runner="tests.platform.gridtoys:tuple_cell",
                     axes={"x": [1, 2]})
    store = ResultStore(tmp_path)
    cold = grid.run(store=store)
    warm = grid.run(store=store)
    assert cold.rows == warm.rows == [
        {"x": 1, "pair": [1, 2]}, {"x": 2, "pair": [2, 3]}]


def test_non_mapping_payload_lands_under_value_column():
    grid = StudyGrid(study="scalars",
                     runner="tests.platform.gridtoys:scalar_cell",
                     axes={"x": [3, 4]})
    results = grid.run()
    assert results.columns == ("x", "value")
    assert results.rows == [{"x": 3, "value": 30}, {"x": 4, "value": 40}]


# ---------------------------------------------------------------------
# Progress streaming and wrappers
# ---------------------------------------------------------------------

def test_progress_events_stream_and_finish_complete(tmp_path):
    store = ResultStore(tmp_path)
    events: list[ProgressEvent] = []
    toy_grid().run(store=store, progress=events.append)
    assert len(events) == 6
    assert [event.done for event in events] == list(range(1, 7))
    final = events[-1]
    assert final.total == 6 and final.computed == 6 and final.cached == 0
    assert final.fraction == 1.0

    reporter = StudyReporter()
    toy_grid().run(store=store, progress=reporter)
    assert reporter.last is not None
    assert reporter.last.cached == 6 and reporter.last.computed == 0
    assert reporter.last.eta_seconds is None  # nothing was computed


def test_run_async_directly_and_run_grid_wrapper():
    async def drive():
        return await toy_grid().run_async()

    direct = asyncio.run(drive())
    wrapped = run_grid(toy_grid())
    assert wrapped.rows == direct.rows
    assert wrapped.meta["grid_schema"] == 1
