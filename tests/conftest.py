"""Suite-wide pytest wiring: every schedule built anywhere is verified.

A session-scoped autouse fixture wraps
:meth:`repro.core.critical_works.CriticalWorksScheduler.build_schedule`
— the single choke point through which all supporting schedules are
produced (directly, via :class:`~repro.core.strategy.StrategyGenerator`,
the experiment studies, and the flow-level metascheduler) — and runs
the static verifier of :mod:`repro.analysis.verify` on every outcome.
Any invariant breach (double-booking, precedence, deadline/admissibility
inconsistency, ``CF`` mismatch, collision-record drift) fails the test
that triggered it, so regressions surface at their source even in tests
that never look at the schedule.
"""

from __future__ import annotations

import pytest

from repro.analysis.verify import verify_outcome
from repro.core.critical_works import CriticalWorksScheduler


@pytest.fixture(autouse=True, scope="session")
def _verify_every_schedule():
    """Wrap the scheduler so each built schedule is invariant-checked."""
    original = CriticalWorksScheduler.build_schedule
    if getattr(original, "_invariant_checked", False):  # pragma: no cover
        yield
        return

    def checked_build_schedule(self, job, calendars, level=0.0, release=0,
                               warm_hint=None, context=None):
        outcome = original(self, job, calendars, level=level,
                           release=release, warm_hint=warm_hint,
                           context=context)
        report = verify_outcome(
            job, outcome, self.pool, transfer_model=self.transfer_model,
            release=release, accounting_model=self.accounting_model)
        if not report.ok:
            pytest.fail(
                f"schedule invariant violation (auto-verifier):\n"
                f"{report.summary()}")
        return outcome

    checked_build_schedule._invariant_checked = True
    CriticalWorksScheduler.build_schedule = checked_build_schedule
    try:
        yield
    finally:
        CriticalWorksScheduler.build_schedule = original
