"""Unit tests for HEFT list scheduling and the greedy co-allocator."""

import pytest

from repro.baselines.greedy import greedy_schedule
from repro.baselines.list_scheduling import heft_schedule, upward_ranks
from repro.core.calendar import ReservationCalendar
from repro.core.costs import distribution_cost
from repro.core.schedule import check_distribution
from repro.core.transfers import NeutralTransferModel, transfer_time_fn
from repro.workload.paper_example import fig2_job, fig2_pool


def empty_calendars(pool):
    return {node.node_id: ReservationCalendar() for node in pool}


def test_upward_ranks_decrease_along_edges():
    job = fig2_job()
    pool = fig2_pool()
    ranks = upward_ranks(job, pool)
    for transfer in job.transfers:
        assert ranks[transfer.src] > ranks[transfer.dst]
    # The source has the largest rank; the sink the smallest.
    assert max(ranks, key=ranks.get) == "P1"
    assert min(ranks, key=ranks.get) == "P6"


def test_heft_produces_valid_admissible_schedule():
    job = fig2_job()
    pool = fig2_pool()
    dist = heft_schedule(job, pool, empty_calendars(pool))
    assert dist is not None
    violations = check_distribution(
        job, dist, pool, transfer_time_fn(NeutralTransferModel()))
    assert violations == []
    assert dist.makespan <= job.deadline


def test_heft_returns_none_when_deadline_impossible():
    job = fig2_job(deadline=3)
    pool = fig2_pool()
    assert heft_schedule(job, pool, empty_calendars(pool)) is None


def test_heft_respects_busy_calendars():
    job = fig2_job(deadline=40)
    pool = fig2_pool()
    calendars = empty_calendars(pool)
    for calendar in calendars.values():
        calendar.reserve(0, 6, "background")
    dist = heft_schedule(job, pool, calendars)
    assert dist is not None
    assert dist.start_time >= 6


def test_greedy_produces_valid_schedule():
    job = fig2_job()
    pool = fig2_pool()
    dist = greedy_schedule(job, pool, empty_calendars(pool))
    assert dist is not None
    violations = check_distribution(
        job, dist, pool, transfer_time_fn(NeutralTransferModel()))
    assert violations == []


def test_greedy_returns_none_when_infeasible():
    job = fig2_job(deadline=3)
    pool = fig2_pool()
    assert greedy_schedule(job, pool, empty_calendars(pool)) is None


def test_heft_makespan_at_most_greedy():
    """HEFT's global ranking should not lose to pure greedy here."""
    job = fig2_job(deadline=60)
    pool = fig2_pool()
    heft = heft_schedule(job, pool, empty_calendars(pool))
    greedy = greedy_schedule(job, pool, empty_calendars(pool))
    assert heft.makespan <= greedy.makespan + 2  # allow small slack


def test_critical_works_cheaper_than_heft_under_cf():
    """The DP optimizes CF cost; HEFT optimizes makespan — the paper's
    method should win on cost (the whole point of the ablation)."""
    from repro.core.critical_works import CriticalWorksScheduler

    job = fig2_job()
    pool = fig2_pool()
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars(pool))
    heft = heft_schedule(job, pool, empty_calendars(pool))
    cw_cost = distribution_cost(outcome.distribution, job, pool)
    heft_cost = distribution_cost(heft, job, pool)
    assert cw_cost <= heft_cost


def test_release_offsets_heft_and_greedy():
    job = fig2_job(deadline=30)
    pool = fig2_pool()
    for fn in (heft_schedule, greedy_schedule):
        dist = fn(job, pool, empty_calendars(pool), release=50)
        assert dist is not None
        assert dist.start_time >= 50
        assert dist.makespan <= 80
