"""Unit tests for the independent-task mapping heuristics."""

import pytest

from repro.baselines.heuristics import (
    Heuristic,
    MappingResult,
    map_independent_tasks,
)
from repro.core.job import Task
from repro.core.resources import ProcessorNode, ResourcePool


def pool():
    return ResourcePool([
        ProcessorNode(node_id=1, performance=1.0),
        ProcessorNode(node_id=2, performance=0.5),
    ])


def tasks(*base_times):
    return [Task(f"T{i}", volume=10, best_time=b)
            for i, b in enumerate(base_times)]


def test_empty_pool_rejected():
    with pytest.raises(ValueError):
        map_independent_tasks(tasks(2), ResourcePool(), Heuristic.OLB)


def test_met_always_picks_fastest_node():
    result = map_independent_tasks(tasks(2, 2, 2), pool(), Heuristic.MET)
    assert all(p.node_id == 1 for p in result.placements.values())
    # All piled on one node: serialized.
    assert result.makespan == 6


def test_olb_balances_by_ready_time():
    result = map_independent_tasks(tasks(2, 2), pool(), Heuristic.OLB)
    nodes_used = {p.node_id for p in result.placements.values()}
    assert nodes_used == {1, 2}


def test_mct_beats_met_on_makespan_under_load():
    batch = tasks(2, 2, 2, 2)
    met = map_independent_tasks(batch, pool(), Heuristic.MET)
    mct = map_independent_tasks(batch, pool(), Heuristic.MCT)
    assert mct.makespan <= met.makespan


def test_min_min_schedules_small_tasks_first():
    batch = tasks(6, 1)
    result = map_independent_tasks(batch, pool(), Heuristic.MIN_MIN)
    # The small task (T1) is mapped first onto the fast node at t=0.
    assert result.placements["T1"].start == 0
    assert result.placements["T1"].node_id == 1


def test_max_min_schedules_large_tasks_first():
    batch = tasks(6, 1)
    result = map_independent_tasks(batch, pool(), Heuristic.MAX_MIN)
    assert result.placements["T0"].start == 0
    assert result.placements["T0"].node_id == 1


def test_sufferage_prioritizes_high_penalty_tasks():
    batch = tasks(4, 4)
    result = map_independent_tasks(batch, pool(), Heuristic.SUFFERAGE)
    assert len(result.placements) == 2
    # Valid complete mapping with no overlap per node.
    by_node: dict[int, list] = {}
    for p in result.placements.values():
        by_node.setdefault(p.node_id, []).append(p)
    for group in by_node.values():
        group.sort(key=lambda p: p.start)
        for a, b in zip(group, group[1:]):
            assert a.end <= b.start


def test_ready_times_offset_start():
    result = map_independent_tasks(tasks(2), pool(), Heuristic.MCT,
                                   ready={1: 10, 2: 0})
    placement = result.placements["T0"]
    # Fast node busy until 10 (finish 12); slow free now (finish 4).
    assert placement.node_id == 2
    assert placement.start == 0


def test_level_scales_durations():
    batch = [Task("T0", volume=10, best_time=2, worst_time=6)]
    best = map_independent_tasks(batch, pool(), Heuristic.MCT, level=0.0)
    worst = map_independent_tasks(batch, pool(), Heuristic.MCT, level=1.0)
    assert worst.placements["T0"].duration > best.placements["T0"].duration


@pytest.mark.parametrize("heuristic", list(Heuristic))
def test_every_heuristic_produces_complete_valid_mapping(heuristic):
    batch = tasks(3, 1, 4, 2, 5)
    result = map_independent_tasks(batch, pool(), heuristic)
    assert set(result.placements) == {t.task_id for t in batch}
    by_node: dict[int, list] = {}
    for p in result.placements.values():
        by_node.setdefault(p.node_id, []).append(p)
    for group in by_node.values():
        group.sort(key=lambda p: p.start)
        for a, b in zip(group, group[1:]):
            assert a.end <= b.start
    assert result.makespan > 0
    assert result.flowtime >= result.makespan


def test_mapping_result_metrics():
    result = map_independent_tasks(tasks(2, 2), pool(), Heuristic.OLB)
    finish = result.node_finish_times()
    assert set(finish) == {1, 2}
    empty = MappingResult({}, Heuristic.OLB)
    assert empty.makespan == 0
    assert empty.flowtime == 0
