"""Property-based tests for the availability profile."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.local.profile import AvailabilityProfile

CAPACITY = 8

jobs = st.lists(
    st.tuples(st.integers(0, 100),    # requested from
              st.integers(1, 20),     # duration
              st.integers(1, CAPACITY)),  # width
    min_size=0, max_size=25,
)


@given(jobs)
def test_earliest_start_slot_is_actually_free(specs):
    profile = AvailabilityProfile(CAPACITY)
    for from_, duration, width in specs:
        start = profile.earliest_start(duration, width, from_)
        for t in range(start, start + duration):
            assert profile.free_at(t) >= width
        profile.add(start, duration, width)


@given(jobs)
def test_free_counts_never_negative_or_above_capacity(specs):
    profile = AvailabilityProfile(CAPACITY)
    for from_, duration, width in specs:
        start = profile.earliest_start(duration, width, from_)
        profile.add(start, duration, width)
    for time, free in profile.snapshot():
        assert 0 <= free <= CAPACITY


@given(jobs)
def test_earliest_start_minimality(specs):
    profile = AvailabilityProfile(CAPACITY)
    for from_, duration, width in specs[:-1]:
        start = profile.earliest_start(duration, width, from_)
        profile.add(start, duration, width)
    if not specs:
        return
    from_, duration, width = specs[-1]
    start = profile.earliest_start(duration, width, from_)
    # No earlier slot admits the whole window.
    for candidate in range(from_, start):
        fits = all(profile.free_at(t) >= width
                   for t in range(candidate, candidate + duration))
        assert not fits


@given(jobs)
def test_snapshot_is_sorted_and_coalesced(specs):
    profile = AvailabilityProfile(CAPACITY)
    for from_, duration, width in specs:
        start = profile.earliest_start(duration, width, from_)
        profile.add(start, duration, width)
    snapshot = profile.snapshot()
    times = [time for time, _ in snapshot]
    assert times == sorted(times)
    frees = [free for _, free in snapshot]
    for first, second in zip(frees, frees[1:]):
        assert first != second  # coalescing merged equal neighbours
