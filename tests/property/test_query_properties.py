"""Property-based tests for the resource-query language."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.local.query import (
    Attribute,
    Binary,
    Literal,
    QueryError,
    Unary,
    parse,
    tokenize,
    unparse,
)

# ----------------------------------------------------------------------
# Random AST generation
# ----------------------------------------------------------------------

numbers = st.one_of(
    st.integers(0, 10**6),
    st.floats(min_value=0.0, max_value=10**6, allow_nan=False,
              allow_infinity=False).map(lambda f: round(f, 4)),
)
strings = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                           max_codepoint=0x7F),
    max_size=8)
identifiers = st.from_regex(r"[a-z_][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s not in ("true", "false"))

arith_leaves = st.one_of(
    numbers.map(Literal),
    strings.map(Literal),
    identifiers.map(Attribute),
)

arith_ops = st.sampled_from(["+", "-", "*", "/"])
compare_ops = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])
bool_ops = st.sampled_from(["&&", "||"])

#: Arithmetic-level expressions: what the grammar's `sum` can produce.
arith_expressions = st.recursive(
    arith_leaves,
    lambda children: st.one_of(
        st.tuples(arith_ops, children, children).map(
            lambda t: Binary(t[0], t[1], t[2])),
        children.map(lambda c: Unary("-", c)),
    ),
    max_leaves=8,
)

#: Boolean-level expressions: comparisons combined with &&, ||, and !.
bool_leaves = st.one_of(
    st.booleans().map(Literal),
    st.tuples(compare_ops, arith_expressions, arith_expressions).map(
        lambda t: Binary(t[0], t[1], t[2])),
)
bool_expressions = st.recursive(
    bool_leaves,
    lambda children: st.one_of(
        st.tuples(bool_ops, children, children).map(
            lambda t: Binary(t[0], t[1], t[2])),
        children.map(lambda c: Unary("!", c)),
    ),
    max_leaves=8,
)


def expressions():
    """Grammar-conformant ASTs of either level."""
    return st.one_of(arith_expressions, bool_expressions)


@given(expressions())
@settings(max_examples=200)
def test_unparse_parse_roundtrip(expression):
    """The unparser and parser are exact inverses on ASTs."""
    text = unparse(expression)
    assert parse(text) == expression


@given(expressions())
@settings(max_examples=100)
def test_unparse_tokenizes_cleanly(expression):
    tokens = tokenize(unparse(expression))
    assert tokens[-1].kind == "end"
    assert all(token.kind in ("number", "string", "ident", "op", "end")
               for token in tokens)


@given(st.integers(0, 1000), st.integers(0, 1000), st.integers(1, 1000))
def test_arithmetic_evaluation_matches_python(a, b, c):
    expression = parse(f"({a} + {b}) * 2 - {a} / {c}")
    assert expression.evaluate({}) == (a + b) * 2 - a / c


@given(st.integers(-100, 100), st.integers(-100, 100))
def test_comparison_evaluation_matches_python(x, y):
    for operator in ("==", "!=", "<", "<=", ">", ">="):
        expression = parse(f"x {operator} y")
        expected = eval(f"x {operator} y")  # noqa: S307 - ints only
        assert expression.evaluate({"x": x, "y": y}) is expected


@given(identifiers)
def test_unknown_attribute_always_raises(name):
    import pytest

    expression = parse(f"{name} > 0")
    with pytest.raises(QueryError):
        expression.evaluate({})
