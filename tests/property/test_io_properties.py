"""Property-based tests for JSON round-trips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import (
    distribution_from_dict,
    distribution_to_dict,
    job_from_dict,
    job_to_dict,
    pool_from_dict,
    pool_to_dict,
)
from repro.workload.generator import generate_job, generate_pool

seeds = st.integers(0, 10**6)


@given(seeds)
@settings(max_examples=50)
def test_job_roundtrip_preserves_everything(seed):
    job = generate_job(np.random.default_rng(seed), seed)
    clone = job_from_dict(job_to_dict(job))
    assert list(clone.tasks) == list(job.tasks)
    for task_id in job.tasks:
        assert clone.task(task_id) == job.task(task_id)
    assert clone.transfers == job.transfers
    assert clone.deadline == job.deadline
    assert clone.owner == job.owner
    assert clone.critical_chains() == job.critical_chains()
    assert clone.max_width() == job.max_width()


@given(seeds)
@settings(max_examples=50)
def test_pool_roundtrip_preserves_nodes(seed):
    pool = generate_pool(np.random.default_rng(seed))
    clone = pool_from_dict(pool_to_dict(pool))
    assert list(clone) == list(pool)
    assert clone.domains() == pool.domains()


@given(seeds)
@settings(max_examples=50)
def test_distribution_roundtrip_via_scheduler(seed):
    from repro.core.calendar import ReservationCalendar
    from repro.core.critical_works import CriticalWorksScheduler
    from repro.core.resources import ProcessorNode, ResourcePool

    job = generate_job(np.random.default_rng(seed), seed)
    pool = ResourcePool([ProcessorNode(node_id=1, performance=1.0),
                         ProcessorNode(node_id=2, performance=0.5)])
    calendars = {n.node_id: ReservationCalendar() for n in pool}
    outcome = CriticalWorksScheduler(pool).build_schedule(job, calendars)
    if outcome.distribution is None:
        return
    clone = distribution_from_dict(
        distribution_to_dict(outcome.distribution))
    assert clone.placements == outcome.distribution.placements
    assert clone.makespan == outcome.distribution.makespan
