"""Property: mutating a calendar mid-run never serves stale cache state.

The SchedulingContext keys placement state on calendar *content
versions* and whole-domain plans on epoch slices, so invalidation is
structural — a mutated calendar simply stops matching its old keys.
These hypothesis tests warm a context, mutate a randomly chosen node's
calendar (a new background reservation), then schedule again through
the *same warm context* and through a *cold* one: any stale fit
witness, gap table, stacked array, or plan served by the warm path
would break the differential equality.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import ReservationCalendar, ReservationConflict
from repro.core.context import SchedulingContext
from repro.core.critical_works import CriticalWorksScheduler
from repro.core.strategy import StrategyType
from repro.flow.metascheduler import Metascheduler
from repro.grid.environment import GridEnvironment
from repro.workload.paper_example import fig2_job, fig2_pool


def outcomes_equal(warm, cold):
    assert warm.admissible == cold.admissible
    assert warm.cost == cold.cost
    assert warm.makespan == cold.makespan
    assert warm.collisions == cold.collisions
    if cold.distribution is None:
        assert warm.distribution is None
    else:
        assert list(warm.distribution) == list(cold.distribution)


def empty_calendars(pool):
    return {node.node_id: ReservationCalendar() for node in pool}


@settings(max_examples=25, deadline=None)
@given(
    node_index=st.integers(0, 8),
    start=st.integers(0, 12),
    duration=st.integers(1, 8),
    level=st.sampled_from([0.0, 0.5, 1.0]),
)
def test_mid_run_mutation_never_serves_stale_placement(
        node_index, start, duration, level):
    pool, job = fig2_pool(), fig2_job()
    calendars = empty_calendars(pool)
    warm_context = SchedulingContext()
    scheduler = CriticalWorksScheduler(pool, context=warm_context)

    # Warm every cache: fit witnesses, gap tables, stacks, rankings.
    scheduler.build_schedule(job, calendars, level=level)

    # Mutate one node's calendar mid-run.
    node = list(pool)[node_index % len(pool)]
    try:
        calendars[node.node_id].reserve(start, start + duration, "mutation")
    except ReservationConflict:  # empty calendar: cannot happen
        raise

    # Same warm context vs. a cold scheduler on the mutated state.
    warm = scheduler.build_schedule(job, calendars, level=level)
    cold = CriticalWorksScheduler(pool).build_schedule(
        job, calendars, level=level)
    outcomes_equal(warm, cold)


@settings(max_examples=25, deadline=None)
@given(
    node_index=st.integers(0, 8),
    windows=st.lists(
        st.tuples(st.integers(0, 20), st.integers(1, 5)),
        min_size=1, max_size=3),
)
def test_repeated_mutations_keep_fit_and_gap_caches_exact(
        node_index, windows):
    """Several successive mutations of one calendar, re-scheduling
    through the same context after each; every round must match cold."""
    pool, job = fig2_pool(), fig2_job()
    calendars = empty_calendars(pool)
    warm_context = SchedulingContext()
    scheduler = CriticalWorksScheduler(pool, context=warm_context)
    node = list(pool)[node_index % len(pool)]
    calendar = calendars[node.node_id]

    scheduler.build_schedule(job, calendars)
    for start, duration in windows:
        try:
            calendar.reserve(start, start + duration, "mutation")
        except ReservationConflict:
            continue  # overlapping window: no version bump, still valid
        warm = scheduler.build_schedule(job, calendars)
        cold = CriticalWorksScheduler(pool).build_schedule(job, calendars)
        outcomes_equal(warm, cold)


@settings(max_examples=15, deadline=None)
@given(
    node_index=st.integers(0, 8),
    start=st.integers(0, 10),
    duration=st.integers(1, 6),
    stype=st.sampled_from(list(StrategyType)),
)
def test_grid_mutation_invalidates_cached_plans(
        node_index, start, duration, stype):
    """Flow layer: booking directly on a grid calendar after planning
    must invalidate the epoch-keyed plan (differential vs. a cold
    metascheduler on an identical grid)."""
    def fresh_grid():
        grid = GridEnvironment(fig2_pool())
        return grid

    job = fig2_job()
    warm_grid = fresh_grid()
    metascheduler = Metascheduler(warm_grid)
    metascheduler.plan_job(job, stype, 0)  # warm the plan cache

    cold_grid = fresh_grid()
    node = list(warm_grid.pool)[node_index % len(warm_grid.pool)]
    for grid in (warm_grid, cold_grid):
        grid.calendars[node.node_id].reserve(
            start, start + duration, "mutation")

    warm_plan = metascheduler.plan_job(job, stype, 0)
    cold_plan = Metascheduler(cold_grid).plan_job(job, stype, 0)
    assert (warm_plan.strategy is None) == (cold_plan.strategy is None)
    if warm_plan.strategy is not None:
        warm_best = warm_plan.strategy.best_schedule()
        cold_best = cold_plan.strategy.best_schedule()
        assert (warm_best is None) == (cold_best is None)
        if warm_best is not None:
            assert warm_best.outcome.cost == cold_best.outcome.cost
            assert warm_best.outcome.makespan == cold_best.outcome.makespan
            assert list(warm_best.distribution) == \
                list(cold_best.distribution)
