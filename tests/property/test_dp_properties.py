"""Property-based tests for the DP allocator and the critical works method."""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import ReservationCalendar
from repro.core.costs import VolumeOverTimeCost
from repro.core.critical_works import CriticalWorksScheduler
from repro.core.dp import allocate_chain
from repro.core.job import DataTransfer, Job, Task
from repro.core.resources import ProcessorNode, ResourcePool
from repro.core.schedule import Placement, check_distribution
from repro.core.transfers import NeutralTransferModel, transfer_time_fn
from repro.workload.generator import generate_job

chain_specs = st.lists(
    st.tuples(st.integers(1, 4),       # base time
              st.integers(1, 40)),     # volume
    min_size=1, max_size=4,
)
perf_sets = st.lists(st.sampled_from([1.0, 0.5, 1 / 3]),
                     min_size=1, max_size=3, unique=True)


def build_chain_job(specs, deadline):
    tasks = [Task(f"T{i}", volume=v, best_time=b)
             for i, (b, v) in enumerate(specs)]
    transfers = [DataTransfer(f"D{i}", f"T{i}", f"T{i+1}")
                 for i in range(len(specs) - 1)]
    return Job("chain", tasks, transfers, deadline=deadline)


def brute_force(job, chain, pool, deadline):
    """Exhaustive min cost over node choices with earliest-start timing."""
    model = VolumeOverTimeCost()
    best = None
    for nodes in itertools.product(list(pool), repeat=len(chain)):
        ready, cost, feasible = 0, 0.0, True
        previous = None
        for position, (task_id, node) in enumerate(zip(chain, nodes)):
            lag = 0
            if previous is not None and previous.node_id != node.node_id:
                lag = job.transfer_between(chain[position - 1],
                                           task_id).base_time
            start = ready + lag
            duration = job.task(task_id).duration_on(node.performance)
            if start + duration > deadline:
                feasible = False
                break
            cost += model.task_cost(
                job.task(task_id),
                Placement(task_id, node.node_id, start, start + duration),
                node)
            ready = start + duration
            previous = node
        if feasible and (best is None or cost < best):
            best = cost
    return best


@given(chain_specs, perf_sets, st.integers(3, 30))
@settings(max_examples=60, deadline=None)
def test_dp_matches_brute_force(specs, performances, deadline):
    job = build_chain_job(specs, deadline)
    pool = ResourcePool([ProcessorNode(node_id=i + 1, performance=p)
                         for i, p in enumerate(performances)])
    calendars = {n.node_id: ReservationCalendar() for n in pool}
    chain = list(job.tasks)
    result = allocate_chain(job, chain, pool, calendars, deadline)
    expected = brute_force(job, chain, pool, deadline)
    if expected is None:
        assert result is None
    else:
        assert result is not None
        assert result.cost == expected


@given(st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_critical_works_schedules_are_always_valid(seed):
    """Whatever the job, an admissible outcome is a valid schedule."""
    job = generate_job(np.random.default_rng(seed), seed)
    pool = ResourcePool([
        ProcessorNode(node_id=1, performance=1.0),
        ProcessorNode(node_id=2, performance=0.66),
        ProcessorNode(node_id=3, performance=0.5),
        ProcessorNode(node_id=4, performance=0.33),
    ])
    calendars = {n.node_id: ReservationCalendar() for n in pool}
    scheduler = CriticalWorksScheduler(pool)
    outcome = scheduler.build_schedule(job, calendars)
    if not outcome.admissible:
        return
    violations = check_distribution(
        job, outcome.distribution, pool,
        transfer_time_fn(NeutralTransferModel()))
    assert violations == []
    assert outcome.distribution.internal_overlaps() == []


@given(st.integers(0, 500),
       st.sampled_from(["replication", "remote", "static"]),
       st.sampled_from([0.0, 1 / 3, 2 / 3, 1.0]))
@settings(max_examples=40, deadline=None)
def test_schedules_valid_under_every_policy_and_level(seed, policy, level):
    """Admissible outcomes validate against their own policy timing."""
    from repro.grid.data import (
        RemoteAccessModel,
        ReplicationModel,
        StaticStorageModel,
    )

    model = {"replication": ReplicationModel(),
             "remote": RemoteAccessModel(),
             "static": StaticStorageModel()}[policy]
    job = generate_job(np.random.default_rng(seed), seed)
    pool = ResourcePool([
        ProcessorNode(node_id=1, performance=1.0),
        ProcessorNode(node_id=2, performance=0.66),
        ProcessorNode(node_id=3, performance=0.33),
    ])
    calendars = {n.node_id: ReservationCalendar() for n in pool}
    outcome = CriticalWorksScheduler(pool, model).build_schedule(
        job, calendars, level=level)
    if not outcome.admissible:
        return
    violations = check_distribution(
        job, outcome.distribution, pool, transfer_time_fn(model),
        estimation_level=level)
    assert violations == []


@given(st.integers(0, 500), st.floats(0.0, 1.0))
@settings(max_examples=30, deadline=None)
def test_critical_works_respects_background(seed, level):
    """Placements never overlap pre-existing background reservations."""
    rng = np.random.default_rng(seed)
    job = generate_job(rng, seed)
    pool = ResourcePool([
        ProcessorNode(node_id=1, performance=1.0),
        ProcessorNode(node_id=2, performance=0.5),
    ])
    calendars = {n.node_id: ReservationCalendar() for n in pool}
    horizon = max(4, job.deadline * 2)
    cursor = 0
    while cursor < horizon:
        if rng.random() < 0.3:
            calendars[int(rng.integers(1, 3))].reserve(
                cursor, cursor + 2, "background")
        cursor += 3
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, calendars, level=level)
    if outcome.distribution is None:
        return
    for placement in outcome.distribution:
        assert calendars[placement.node_id].is_free(
            placement.start, placement.end)
