"""Property tests for the sharded engine's domain partitioning.

The bit-identity of sharded planning rests on the partition being a
*disjoint cover*: every domain (and so every node) lands in exactly one
shard, whatever the shard count.  These properties pin that down over
arbitrary domain lists and shard counts.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.flow.sharding import partition_domains

domain_lists = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
    min_size=1, max_size=24, unique=True,
)
shard_counts = st.integers(min_value=1, max_value=12)


@given(domain_lists, shard_counts)
def test_partition_is_a_disjoint_cover(domains, shards):
    groups = partition_domains(domains, shards)
    flattened = [domain for group in groups for domain in group]
    assert sorted(flattened) == sorted(domains)
    assert len(flattened) == len(set(flattened))


@given(domain_lists, shard_counts)
def test_partition_is_balanced(domains, shards):
    groups = partition_domains(domains, shards)
    sizes = [len(group) for group in groups]
    assert all(size >= 1 for size in sizes)
    assert max(sizes) - min(sizes) <= 1
    assert len(groups) == min(shards, len(domains))


@given(domain_lists, shard_counts)
def test_partition_is_deterministic_round_robin(domains, shards):
    groups = partition_domains(domains, shards)
    assert groups == partition_domains(domains, shards)
    count = len(groups)
    for index, domain in enumerate(domains):
        assert domain in groups[index % count]


@given(domain_lists)
def test_single_shard_is_the_whole_vo(domains):
    assert partition_domains(domains, 1) == [tuple(domains)]


def test_partition_rejects_bad_inputs():
    with pytest.raises(ValueError):
        partition_domains([], 2)
    with pytest.raises(ValueError):
        partition_domains(["a"], 0)
    with pytest.raises(ValueError):
        partition_domains(["a", "a"], 2)
