"""Property tests: gap-table placement vs the scalar bisect path.

:func:`repro.core.placement.table_earliest_fit` answers through the
structure-of-arrays gap table what
:meth:`~repro.core.calendar.ReservationCalendar.earliest_fit` answers
through bisect; the two must agree on every calendar and query —
including the awkward ones: zero-length gaps between adjacent
reservations, probes far past the last reservation, and deadlines that
cut a fitting slot short.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import ReservationCalendar
from repro.core.placement import table_earliest_fit

# Interval layouts biased toward adjacency and overlap-free stacking:
# sorting random endpoints yields runs of touching reservations (and
# with lo=0 gap widths of exactly zero).
intervals = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 30)),
    min_size=0, max_size=25)
durations = st.integers(1, 40)
probes = st.integers(0, 400)
deadlines = st.none() | st.integers(0, 500)


def build_calendar(layout):
    calendar = ReservationCalendar()
    cursor = 0
    for offset, width in layout:
        start = cursor + offset
        end = start + width
        if width > 0:
            calendar.reserve(start, end, tag=f"r{cursor}")
        # width == 0 advances the cursor without reserving, so the
        # next reservation may start exactly where the previous ended
        # (adjacent reservations, zero-length gap in between).
        cursor = end
    return calendar


@given(intervals, durations, probes, deadlines)
@settings(max_examples=300, deadline=None)
def test_table_earliest_fit_matches_scalar(layout, duration, probe,
                                           deadline):
    calendar = build_calendar(layout)
    expected = calendar.earliest_fit(duration, earliest=probe,
                                     deadline=deadline)
    actual = table_earliest_fit(calendar.gap_table(), duration,
                                earliest=probe, deadline=deadline)
    assert actual == expected


@given(intervals, durations)
@settings(max_examples=100, deadline=None)
def test_probe_past_horizon_matches_scalar(layout, duration):
    """Probes beyond the last reservation still agree (trailing gap)."""
    calendar = build_calendar(layout)
    horizon = max((booking.end for booking in calendar.reservations),
                  default=0)
    for probe in (horizon, horizon + 1, horizon + 1000):
        expected = calendar.earliest_fit(duration, earliest=probe)
        actual = table_earliest_fit(calendar.gap_table(), duration,
                                    earliest=probe)
        assert actual == expected


@given(st.integers(0, 50), durations)
@settings(max_examples=60, deadline=None)
def test_adjacent_reservations_leave_no_phantom_gap(start, duration):
    """Back-to-back reservations: the zero-length boundary never fits."""
    calendar = ReservationCalendar()
    calendar.reserve(start, start + 5, tag="a")
    calendar.reserve(start + 5, start + 10, tag="b")
    expected = calendar.earliest_fit(duration, earliest=0)
    actual = table_earliest_fit(calendar.gap_table(), duration)
    assert actual == expected
    if duration <= start:
        assert actual == 0
    else:
        assert actual == start + 10
