"""Property-based tests for the job's semantic plan keys.

``shape_hash`` must be an isomorphism invariant (stable under task and
transfer relabelling and sibling reordering, sensitive to anything
generation reads); ``structural_hash`` must pin the labelled structure
exactly while ignoring the job's name and owner.  These invariants are
what make the flow layer's plan cache sound: the skeleton tier groups
by shape, the concrete tier reuses bit-identically by structure.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import DataTransfer, Job, Task
from repro.workload.generator import generate_job

seeds = st.integers(0, 10**6)


def random_job(seed):
    return generate_job(np.random.default_rng(seed), seed)


def relabeled(job, seed, rename=True):
    """An isomorphic copy: renamed ids, permuted insertion order."""
    rng = np.random.default_rng(seed)
    task_ids = list(job.tasks)
    mapping = {tid: (f"X{position}" if rename else tid)
               for position, tid in enumerate(task_ids)}
    task_order = [task_ids[i] for i in rng.permutation(len(task_ids))]
    tasks = [Task(mapping[tid], volume=job.task(tid).volume,
                  best_time=job.task(tid).best_time,
                  worst_time=job.task(tid).worst_time)
             for tid in task_order]
    edge_order = [job.transfers[i]
                  for i in rng.permutation(len(job.transfers))]
    transfers = [DataTransfer(f"Y{position}" if rename else t.transfer_id,
                              mapping[t.src], mapping[t.dst],
                              volume=t.volume, base_time=t.base_time)
                 for position, t in enumerate(edge_order)]
    return Job("renamed", tasks, transfers, deadline=job.deadline,
               owner="someone-else")


@given(seeds, seeds)
@settings(max_examples=50)
def test_shape_hash_is_isomorphism_invariant(seed, shuffle):
    job = random_job(seed)
    assert relabeled(job, shuffle).shape_hash == job.shape_hash


@given(seeds, seeds)
@settings(max_examples=50)
def test_structural_hash_ignores_only_name_and_owner(seed, shuffle):
    job = random_job(seed)
    twin = Job("other-name", list(job.tasks.values()), job.transfers,
               deadline=job.deadline, owner="other-owner")
    assert twin.structural_hash == job.structural_hash
    # Renaming tasks is visible to generation (tie-breaks read labels),
    # so it must change the structural key even though the shape holds.
    renamed = relabeled(job, shuffle)
    assert renamed.structural_hash != job.structural_hash


@given(seeds)
@settings(max_examples=50)
def test_structural_equality_implies_shape_equality(seed):
    job = random_job(seed)
    twin = Job("sibling", list(job.tasks.values()), job.transfers,
               deadline=job.deadline, owner="someone-else")
    assert twin.structural_hash == job.structural_hash
    assert twin.shape_hash == job.shape_hash


@given(seeds)
@settings(max_examples=50)
def test_shape_hash_tracks_estimations_and_deadline(seed):
    job = random_job(seed)
    tasks = list(job.tasks.values())
    bumped = [Task(t.task_id, volume=t.volume + 1.0, best_time=t.best_time,
                   worst_time=t.worst_time) if position == 0 else t
              for position, t in enumerate(tasks)]
    assert Job(job.job_id, bumped, job.transfers, deadline=job.deadline,
               owner=job.owner).shape_hash != job.shape_hash
    assert Job(job.job_id, tasks, job.transfers, deadline=job.deadline + 1,
               owner=job.owner).shape_hash != job.shape_hash


def test_shape_hash_separates_chain_from_fork():
    """Same task multiset, same edge labels, different wiring: the WL
    refinement must tell a chain from a fork."""

    def uniform_tasks():
        return [Task(tid, volume=10.0, best_time=2, worst_time=3)
                for tid in ("A", "B", "C")]

    def edge(eid, src, dst):
        return DataTransfer(eid, src, dst, volume=1.0, base_time=1)

    chain = Job("chain", uniform_tasks(),
                [edge("D1", "A", "B"), edge("D2", "B", "C")], deadline=20)
    fork = Job("fork", uniform_tasks(),
               [edge("D1", "A", "B"), edge("D2", "A", "C")], deadline=20)
    assert chain.shape_hash != fork.shape_hash


def test_shape_hash_separates_edge_orientation():
    """Reversing an edge changes the isomorphism class even though the
    underlying undirected graph is unchanged."""
    tasks = [Task(tid, volume=10.0, best_time=2, worst_time=3)
             for tid in ("A", "B")]
    forward = Job("f", tasks,
                  [DataTransfer("D1", "A", "B", volume=2.0, base_time=1)],
                  deadline=20)
    tasks_swapped = [Task(tid, volume=10.0, best_time=2, worst_time=3)
                     for tid in ("A", "B")]
    backward = Job("b", tasks_swapped,
                   [DataTransfer("D1", "B", "A", volume=2.0, base_time=1)],
                   deadline=20)
    assert forward.shape_hash == backward.shape_hash  # isomorphic swap
    wider = [Task(tid, volume=10.0, best_time=2, worst_time=3)
             for tid in ("A", "B", "C")]
    vee = Job("v", wider,
              [DataTransfer("D1", "A", "B", volume=2.0, base_time=1),
               DataTransfer("D2", "C", "B", volume=2.0, base_time=1)],
              deadline=20)
    wedge = Job("w", [Task(tid, volume=10.0, best_time=2, worst_time=3)
                      for tid in ("A", "B", "C")],
                [DataTransfer("D1", "B", "A", volume=2.0, base_time=1),
                 DataTransfer("D2", "B", "C", volume=2.0, base_time=1)],
                deadline=20)
    assert vee.shape_hash != wedge.shape_hash
