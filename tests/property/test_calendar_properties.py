"""Property-based tests for reservation calendars."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import (
    ReservationCalendar,
    ReservationConflict,
)

intervals = st.lists(
    st.tuples(st.integers(0, 200), st.integers(1, 20)),
    min_size=0, max_size=30,
)


def fill_calendar(specs):
    """Reserve greedily, skipping conflicts; return calendar + booked."""
    calendar = ReservationCalendar()
    booked = []
    for index, (start, length) in enumerate(specs):
        try:
            booked.append(calendar.reserve(start, start + length,
                                           tag=f"r{index}"))
        except ReservationConflict:
            pass
    return calendar, booked


@given(intervals)
def test_reservations_never_overlap(specs):
    calendar, booked = fill_calendar(specs)
    ordered = calendar.reservations
    for first, second in zip(ordered, ordered[1:]):
        assert first.end <= second.start


@given(intervals)
def test_free_windows_complement_busy_time(specs):
    calendar, booked = fill_calendar(specs)
    horizon = 300
    windows = calendar.free_windows(0, horizon)
    free_total = sum(end - start for start, end in windows)
    busy_total = sum(min(r.end, horizon) - r.start for r in booked
                     if r.start < horizon)
    assert free_total + busy_total == horizon
    # Windows are sorted, non-empty, disjoint, and genuinely free.
    for start, end in windows:
        assert start < end
        assert calendar.is_free(start, end)
    for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
        assert e1 < s2  # maximality: adjacent windows would have merged


@given(intervals, st.integers(1, 15), st.integers(0, 100))
def test_earliest_fit_is_free_and_minimal(specs, duration, earliest):
    calendar, _ = fill_calendar(specs)
    deadline = 500
    start = calendar.earliest_fit(duration, earliest, deadline)
    if start is None:
        # No window of that size: verify none exists.
        for w_start, w_end in calendar.free_windows(earliest, deadline):
            assert w_end - w_start < duration
        return
    assert start >= earliest
    assert start + duration <= deadline
    assert calendar.is_free(start, start + duration)
    # Minimality: no free slot of the same size starts earlier.
    for candidate in range(earliest, start):
        assert not calendar.is_free(candidate, candidate + duration)


@given(intervals)
def test_release_restores_freedom(specs):
    calendar, booked = fill_calendar(specs)
    for reservation in booked:
        calendar.release(reservation)
    assert len(calendar) == 0
    assert calendar.free_windows(0, 300) == [(0, 300)]


@given(intervals)
def test_utilization_bounds(specs):
    calendar, _ = fill_calendar(specs)
    utilization = calendar.utilization(0, 300)
    assert 0.0 <= utilization <= 1.0


@given(intervals)
def test_copy_equals_original(specs):
    calendar, _ = fill_calendar(specs)
    clone = calendar.copy()
    assert clone.reservations == calendar.reservations
    assert clone.free_windows(0, 300) == calendar.free_windows(0, 300)
