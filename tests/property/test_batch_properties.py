"""Property-based tests for the local batch-system simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.local.batch import LocalBatchSystem
from repro.local.policies import (
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FCFSPolicy,
    LWFPolicy,
)
from repro.workload.traces import BatchTraceConfig, generate_batch_trace

CAPACITY = 4

policies = st.sampled_from([FCFSPolicy, LWFPolicy, EasyBackfillPolicy,
                            ConservativeBackfillPolicy])
trace_seeds = st.integers(0, 10**6)


def make_trace(seed, n_jobs=30):
    config = BatchTraceConfig(width=(1, CAPACITY))
    return list(generate_batch_trace(seed, n_jobs, config))


@given(trace_seeds, policies)
@settings(max_examples=40, deadline=None)
def test_every_job_completes_exactly_once(seed, policy_cls):
    trace = make_trace(seed)
    system = LocalBatchSystem(CAPACITY, policy_cls())
    system.submit_many(trace)
    records = system.run()
    assert sorted(r.job_id for r in records) == sorted(
        j.job_id for j in trace)


@given(trace_seeds, policies)
@settings(max_examples=40, deadline=None)
def test_capacity_never_exceeded(seed, policy_cls):
    trace = make_trace(seed)
    system = LocalBatchSystem(CAPACITY, policy_cls())
    system.submit_many(trace)
    records = system.run()
    events = sorted({r.start for r in records} | {r.end for r in records})
    for t in events:
        in_flight = sum(r.width for r in records if r.start <= t < r.end)
        assert in_flight <= CAPACITY


@given(trace_seeds, policies)
@settings(max_examples=40, deadline=None)
def test_no_job_starts_before_arrival(seed, policy_cls):
    trace = make_trace(seed)
    system = LocalBatchSystem(CAPACITY, policy_cls())
    system.submit_many(trace)
    for record in system.run():
        assert record.start >= record.arrival
        assert record.end == record.start + record.runtime


@given(trace_seeds)
@settings(max_examples=30, deadline=None)
def test_fcfs_same_width_ordering(seed):
    """Under FCFS, equal-width jobs start in arrival order."""
    trace = make_trace(seed)
    system = LocalBatchSystem(CAPACITY, FCFSPolicy())
    system.submit_many(trace)
    records = sorted(system.run(), key=lambda r: (r.arrival, r.job_id))
    by_width = {}
    for record in records:
        by_width.setdefault(record.width, []).append(record)
    for group in by_width.values():
        starts = [r.start for r in group]
        assert starts == sorted(starts)


@given(trace_seeds)
@settings(max_examples=30, deadline=None)
def test_reserved_jobs_start_exactly_at_grant(seed):
    trace = make_trace(seed, n_jobs=20)
    system = LocalBatchSystem(CAPACITY, FCFSPolicy())
    system.submit_many(trace)
    grants = {}
    for index, job in enumerate(trace):
        if index % 4 == 0:
            grants[job.job_id] = system.reserve(
                job, start=job.arrival + 5).start
    records = {r.job_id: r for r in system.run()}
    for job_id, granted in grants.items():
        assert records[job_id].start == granted
        assert records[job_id].reserved


def test_backfilling_helps_on_average():
    """EASY reduces the mean wait versus FCFS on average.

    Not a per-trace invariant: with conservative user estimates a
    backfilled job can occasionally delay a chain of later starts.  The
    paper's claim ("Backfilling decreases this time") is statistical.
    """
    totals = {"fcfs": 0.0, "easy": 0.0}
    for seed in range(20):
        trace = make_trace(seed)
        for name, policy_cls in (("fcfs", FCFSPolicy),
                                 ("easy", EasyBackfillPolicy)):
            system = LocalBatchSystem(CAPACITY, policy_cls())
            system.submit_many(trace)
            totals[name] += LocalBatchSystem.mean_wait(system.run())
    assert totals["easy"] < totals["fcfs"]
