"""Differential tests: optimized calendar queries vs reference semantics.

The query path in :mod:`repro.core.calendar` was rewritten for speed
(bisect entry points, lazy window walks, copy-on-write snapshots).  The
pre-optimization implementations were a straight linear scan and an
eager ``free_windows`` materialization — simple enough to serve as an
executable specification.  These tests replay random reservation sets
through both and require exact agreement.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.calendar import ReservationCalendar, ReservationConflict

intervals = st.lists(
    st.tuples(st.integers(0, 200), st.integers(1, 20)),
    min_size=0, max_size=40,
)


def fill_calendar(specs):
    calendar = ReservationCalendar()
    for index, (start, length) in enumerate(specs):
        try:
            calendar.reserve(start, start + length, tag=f"r{index}")
        except ReservationConflict:
            pass
    return calendar


# ----------------------------------------------------------------------
# Reference implementations (pre-optimization semantics)
# ----------------------------------------------------------------------

def conflicts_reference(calendar, start, end):
    """Linear scan over every reservation."""
    return [r for r in calendar.reservations if r.overlaps(start, end)]


def earliest_fit_reference(calendar, duration, earliest, deadline):
    """First free window wide enough, via eager ``free_windows``."""
    if deadline is not None:
        horizon = deadline
    else:
        reservations = calendar.reservations
        last_end = reservations[-1].end if reservations else 0
        horizon = max(earliest, last_end) + duration
    for window_start, window_end in calendar.free_windows(earliest, horizon):
        if window_end - window_start >= duration:
            return window_start
    return None


# ----------------------------------------------------------------------
# Differential properties
# ----------------------------------------------------------------------

@given(intervals, st.integers(0, 250), st.integers(1, 30))
def test_conflicts_matches_linear_scan(specs, start, length):
    calendar = fill_calendar(specs)
    end = start + length
    assert calendar.conflicts(start, end) == conflicts_reference(
        calendar, start, end)


@given(intervals, st.integers(0, 250), st.integers(1, 30))
def test_is_free_matches_linear_scan(specs, start, length):
    calendar = fill_calendar(specs)
    end = start + length
    assert calendar.is_free(start, end) == (
        not conflicts_reference(calendar, start, end))


@given(intervals, st.integers(1, 25), st.integers(0, 250),
       st.one_of(st.none(), st.integers(0, 400)))
def test_earliest_fit_matches_window_scan(specs, duration, earliest,
                                          deadline):
    calendar = fill_calendar(specs)
    if deadline is not None and deadline <= earliest:
        deadline = earliest + duration  # keep the query satisfiable-shaped
    assert calendar.earliest_fit(duration, earliest, deadline) == \
        earliest_fit_reference(calendar, duration, earliest, deadline)


@given(intervals, st.integers(0, 250), st.integers(1, 30))
def test_cow_copy_answers_like_the_original(specs, start, length):
    calendar = fill_calendar(specs)
    clone = calendar.copy()
    end = start + length
    assert clone.conflicts(start, end) == calendar.conflicts(start, end)
    assert clone.is_free(start, end) == calendar.is_free(start, end)
    assert clone.earliest_fit(length, start) == calendar.earliest_fit(
        length, start)


@given(intervals)
def test_cow_copy_isolates_mutations(specs):
    calendar = fill_calendar(specs)
    before = calendar.reservations
    clone = calendar.copy()
    slot = clone.earliest_fit(3, 0)
    clone.reserve(slot, slot + 3, tag="what-if")
    # The original never sees the clone's booking, and vice versa.
    assert calendar.reservations == before
    assert len(clone) == len(before) + 1
    start = calendar.earliest_fit(5, 0)  # no deadline: always succeeds
    booked = calendar.reserve(start, start + 5, tag="original")
    assert booked not in clone.reservations
