"""Property-based tests for the job DAG model and the workload generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.granularity import coarsen, serialize
from repro.workload.generator import WorkloadConfig, generate_job

seeds = st.integers(0, 10**6)


def random_job(seed):
    return generate_job(np.random.default_rng(seed), seed)


@given(seeds)
def test_generated_jobs_are_valid_dags(seed):
    job = random_job(seed)
    order = job.topological_order()
    assert len(order) == len(job)
    position = {tid: i for i, tid in enumerate(order)}
    for transfer in job.transfers:
        assert position[transfer.src] < position[transfer.dst]


@given(seeds)
def test_all_paths_run_source_to_sink(seed):
    job = random_job(seed)
    sources, sinks = set(job.sources()), set(job.sinks())
    for path in job.all_paths():
        assert path[0] in sources
        assert path[-1] in sinks
        for earlier, later in zip(path, path[1:]):
            assert job.transfer_between(earlier, later) is not None


@given(seeds)
def test_deadline_dominates_critical_path(seed):
    job = random_job(seed)
    assert job.deadline >= job.minimal_makespan(1.0)


@given(seeds)
def test_max_width_bounds(seed):
    job = random_job(seed)
    assert 1 <= job.max_width() <= len(job)


@given(seeds)
def test_chain_lengths_decrease_in_critical_order(seed):
    job = random_job(seed)
    lengths = [length for length, _ in job.critical_chains()]
    assert lengths == sorted(lengths, reverse=True)


@given(seeds, st.integers(1, 6))
@settings(max_examples=50)
def test_coarsen_preserves_volume_and_validity(seed, target):
    job = random_job(seed)
    coarse = coarsen(job, target_tasks=target, aggressive=True)
    assert coarse.total_volume() == pytest.approx(job.total_volume())
    assert len(coarse) >= min(target, 1)
    assert len(coarse) <= len(job)
    # Constructor re-validates acyclicity; also check topological order.
    assert len(coarse.topological_order()) == len(coarse)
    assert coarse.deadline == job.deadline


@given(seeds)
@settings(max_examples=50)
def test_aggressive_coarsen_reaches_two_tasks(seed):
    """Any connected layered DAG must coarsen down to two tasks."""
    job = random_job(seed)
    coarse = coarsen(job, target_tasks=2, aggressive=True)
    assert len(coarse) <= max(2, len(job.sources()) + len(job.sinks()))


@given(seeds)
def test_serialize_single_task_totals(seed):
    job = random_job(seed)
    serial = serialize(job)
    assert len(serial) == 1
    merged = next(iter(serial.tasks.values()))
    assert merged.volume == job.total_volume()
    assert merged.best_time == sum(t.best_time for t in job.tasks.values())
    assert merged.worst_time == sum(t.worst_time
                                    for t in job.tasks.values())


@given(seeds)
def test_generator_determinism(seed):
    a = random_job(seed)
    b = random_job(seed)
    assert list(a.tasks) == list(b.tasks)
    assert a.deadline == b.deadline
    assert [(t.src, t.dst, t.base_time) for t in a.transfers] == [
        (t.src, t.dst, t.base_time) for t in b.transfers]
