"""Unit tests for synthetic batch traces."""

import pytest

from repro.workload.traces import (
    BatchJob,
    BatchTraceConfig,
    generate_batch_trace,
)


def test_batch_job_validation():
    with pytest.raises(ValueError):
        BatchJob("j", arrival=-1, width=1, runtime=1, estimate=1)
    with pytest.raises(ValueError):
        BatchJob("j", arrival=0, width=0, runtime=1, estimate=1)
    with pytest.raises(ValueError):
        BatchJob("j", arrival=0, width=1, runtime=0, estimate=1)
    with pytest.raises(ValueError):
        BatchJob("j", arrival=0, width=1, runtime=5, estimate=3)


def test_config_validation():
    with pytest.raises(ValueError):
        BatchTraceConfig(mean_interarrival=0)
    with pytest.raises(ValueError):
        BatchTraceConfig(runtime=(10, 5))
    with pytest.raises(ValueError):
        BatchTraceConfig(overestimate=(0.5, 2.0))
    with pytest.raises(ValueError):
        BatchTraceConfig(width=(0, 3))


def test_trace_is_sorted_and_deterministic():
    a = list(generate_batch_trace(seed=1, n_jobs=20))
    b = list(generate_batch_trace(seed=1, n_jobs=20))
    assert a == b
    arrivals = [job.arrival for job in a]
    assert arrivals == sorted(arrivals)


def test_estimates_cover_runtimes():
    for job in generate_batch_trace(seed=2, n_jobs=50):
        assert job.estimate >= job.runtime


def test_trace_respects_config_bounds():
    config = BatchTraceConfig(width=(2, 3), runtime=(5, 7),
                              overestimate=(1.0, 1.0))
    for job in generate_batch_trace(seed=3, n_jobs=30, config=config):
        assert 2 <= job.width <= 3
        assert 5 <= job.runtime <= 7
        assert job.estimate == job.runtime


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        list(generate_batch_trace(seed=0, n_jobs=-1))


def test_different_seeds_differ():
    a = list(generate_batch_trace(seed=1, n_jobs=10))
    b = list(generate_batch_trace(seed=2, n_jobs=10))
    assert a != b
