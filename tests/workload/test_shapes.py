"""Unit tests for the canonical job shapes."""

import pytest

from repro.core.calendar import ReservationCalendar
from repro.core.critical_works import CriticalWorksScheduler
from repro.core.resources import ProcessorNode, ResourcePool
from repro.workload.shapes import (
    chain_job,
    diamond_job,
    fork_join_job,
    intree_job,
)


def test_chain_job_structure():
    job = chain_job(length=5)
    assert len(job) == 5
    assert len(job.transfers) == 4
    assert job.all_paths() == [["P1", "P2", "P3", "P4", "P5"]]
    assert job.max_width() == 1
    with pytest.raises(ValueError):
        chain_job(length=0)


def test_chain_has_exactly_one_critical_work():
    job = chain_job(length=4)
    assert len(job.critical_chains()) == 1


def test_single_task_chain():
    job = chain_job(length=1)
    assert len(job) == 1
    assert job.transfers == []


def test_fork_join_structure():
    job = fork_join_job(width=3)
    assert len(job) == 5
    assert len(job.transfers) == 6
    assert job.sources() == ["P1"]
    assert job.sinks() == ["P5"]
    assert job.max_width() == 3
    assert len(job.all_paths()) == 3
    with pytest.raises(ValueError):
        fork_join_job(width=0)


def test_diamond_is_width_two_fork_join():
    job = diamond_job()
    assert len(job) == 4
    assert job.max_width() == 2


def test_intree_structure():
    job = intree_job(depth=2)
    # Complete binary tree with 2 levels below the root: 7 tasks.
    assert len(job) == 7
    assert len(job.transfers) == 6
    assert len(job.sinks()) == 1
    assert len(job.sources()) == 4  # the leaves
    with pytest.raises(ValueError):
        intree_job(depth=0)


def test_intree_paths_run_leaf_to_root():
    job = intree_job(depth=2)
    root = job.sinks()[0]
    for path in job.all_paths():
        assert path[-1] == root
        assert len(path) == 3  # leaf -> internal -> root


def test_default_deadlines_are_loose_enough():
    pool = ResourcePool([ProcessorNode(node_id=1, performance=1.0),
                         ProcessorNode(node_id=2, performance=0.5)])
    calendars = {n.node_id: ReservationCalendar() for n in pool}
    scheduler = CriticalWorksScheduler(pool)
    for job in (chain_job(), fork_join_job(), diamond_job(),
                intree_job()):
        outcome = scheduler.build_schedule(job, calendars)
        assert outcome.admissible, job.job_id


def test_spread_controls_worst_times():
    job = chain_job(length=3, spread=2.0)
    for task in job.tasks.values():
        assert task.worst_time == 2 * task.best_time
    flat = chain_job(length=3, spread=1.0)
    for task in flat.tasks.values():
        assert task.worst_time == task.best_time


def test_explicit_deadline_respected():
    job = fork_join_job(width=2, deadline=99)
    assert job.deadline == 99
