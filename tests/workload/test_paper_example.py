"""Unit tests for the Fig. 2 worked example fixtures."""

from repro.workload.paper_example import (
    FIG2_DEADLINE,
    FIG2_TASK_BASE_TIMES,
    FIG2_TASK_VOLUMES,
    fig2_estimate_table,
    fig2_job,
    fig2_pool,
)


def test_job_matches_paper_structure():
    job = fig2_job()
    assert len(job) == 6
    assert len(job.transfers) == 8
    assert job.sources() == ["P1"]
    assert job.sinks() == ["P6"]
    assert job.deadline == FIG2_DEADLINE
    assert set(job.successors("P1")) == {"P2", "P3"}
    assert set(job.predecessors("P6")) == {"P4", "P5"}
    assert set(job.successors("P2")) == {"P4", "P5"}
    assert set(job.successors("P3")) == {"P4", "P5"}


def test_volumes_match_table():
    job = fig2_job()
    for task_id, volume in FIG2_TASK_VOLUMES.items():
        assert job.task(task_id).volume == volume


def test_estimate_table_matches_paper():
    """The exact T_ij table printed in Fig. 2a."""
    expected = {
        "P1": [2, 4, 6, 8],
        "P2": [3, 6, 9, 12],
        "P3": [1, 2, 3, 4],
        "P4": [2, 4, 6, 8],
        "P5": [1, 2, 3, 4],
        "P6": [2, 4, 6, 8],
    }
    assert fig2_estimate_table() == expected


def test_pool_has_four_types():
    pool = fig2_pool()
    assert [node.type_index for node in pool] == [1, 2, 3, 4]
    assert [node.performance for node in pool] == [1.0, 0.5, 1 / 3, 0.25]


def test_four_critical_works_with_paper_lengths():
    job = fig2_job()
    chains = job.critical_chains(performance=1.0)
    assert [length for length, _ in chains] == [12, 11, 10, 9]


def test_base_times_match_first_row():
    job = fig2_job()
    for task_id, base in FIG2_TASK_BASE_TIMES.items():
        assert job.task(task_id).best_time == base
