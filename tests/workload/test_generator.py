"""Unit tests for the random workload generator."""

import numpy as np
import pytest

from repro.core.resources import NodeGroup
from repro.workload.generator import (
    WorkloadConfig,
    generate_job,
    generate_pool,
    generate_workload,
    template_workload_factory,
)


def test_config_validation():
    with pytest.raises(ValueError):
        WorkloadConfig(layers=(3, 1))
    with pytest.raises(ValueError):
        WorkloadConfig(layers=(0, 2))
    with pytest.raises(ValueError):
        WorkloadConfig(parallelism=(0, 3))
    with pytest.raises(ValueError):
        WorkloadConfig(base_time=(0, 3))
    with pytest.raises(ValueError):
        WorkloadConfig(fast_share=0.8, medium_share=0.5)


def test_generate_job_structure():
    job = generate_job(np.random.default_rng(0), 0)
    assert len(job.sources()) == 1
    assert len(job.sinks()) == 1
    assert job.deadline >= job.minimal_makespan(1.0)
    # Every non-source task has a predecessor, every non-sink a successor.
    for task_id in job.tasks:
        if task_id not in job.sources():
            assert job.predecessors(task_id)
        if task_id not in job.sinks():
            assert job.successors(task_id)


def test_generate_job_estimate_spread():
    config = WorkloadConfig(estimate_spread=(2.0, 3.0))
    job = generate_job(np.random.default_rng(1), 0, config)
    for task in job.tasks.values():
        assert task.worst_time >= 2 * task.best_time
        # ceil can push slightly past 3x the best time.
        assert task.worst_time <= 3 * task.best_time + 1


def test_generate_job_is_deterministic():
    a = generate_job(np.random.default_rng(7), 0)
    b = generate_job(np.random.default_rng(7), 0)
    assert list(a.tasks) == list(b.tasks)
    assert a.deadline == b.deadline
    assert [t.transfer_id for t in a.transfers] == [
        t.transfer_id for t in b.transfers]


def test_generate_workload_fork_independence():
    jobs_all = list(generate_workload(seed=3, n_jobs=5))
    job2_alone = list(generate_workload(seed=3, n_jobs=3))[2]
    assert list(jobs_all[2].tasks) == list(job2_alone.tasks)
    assert jobs_all[2].deadline == job2_alone.deadline


def test_generate_workload_count_and_ids():
    jobs = list(generate_workload(seed=0, n_jobs=4))
    assert [job.job_id for job in jobs] == [
        "job0", "job1", "job2", "job3"]
    with pytest.raises(ValueError):
        list(generate_workload(seed=0, n_jobs=-1))


def test_generate_pool_size_and_groups():
    pool = generate_pool(np.random.default_rng(0))
    assert 20 <= len(pool) <= 30
    assert pool.by_group(NodeGroup.FAST)
    assert pool.by_group(NodeGroup.MEDIUM)
    assert pool.by_group(NodeGroup.SLOW)
    # Slow nodes sit exactly at the paper's 0.33.
    assert all(node.performance == 0.33
               for node in pool.by_group(NodeGroup.SLOW))


def test_generate_pool_domains_assigned():
    pool = generate_pool(np.random.default_rng(0), domains=3)
    assert set(pool.domains()) == {"domain1", "domain2", "domain3"}
    with pytest.raises(ValueError):
        generate_pool(np.random.default_rng(0), domains=0)


def test_generate_pool_type_ranks_follow_performance():
    pool = generate_pool(np.random.default_rng(5))
    ranked = sorted(pool, key=lambda n: n.type_index)
    performances = [n.performance for n in ranked]
    assert performances == sorted(performances, reverse=True)


def test_template_factory_validates_weights():
    with pytest.raises(ValueError):
        template_workload_factory(())
    with pytest.raises(ValueError):
        template_workload_factory((0.5, 0.0))


def test_template_factory_clones_share_semantic_keys():
    """Arrivals drawn from one template are structural siblings under
    fresh job ids — exactly the identity the plan cache reuses across."""
    factory = template_workload_factory((1.0,))
    a = factory(np.random.default_rng(0), 0)
    b = factory(np.random.default_rng(1), 1)
    assert (a.job_id, b.job_id) == ("job0", "job1")
    assert a.structural_hash == b.structural_hash
    assert a.shape_hash == b.shape_hash


def test_template_factory_is_deterministic_and_skewed():
    weights = (0.7, 0.3)
    factory = template_workload_factory(weights)
    again = template_workload_factory(weights)
    draws = {}
    for index in range(200):
        job = factory(np.random.default_rng(index), index)
        twin = again(np.random.default_rng(index), index)
        assert job.structural_hash == twin.structural_hash
        draws[job.structural_hash] = draws.get(job.structural_hash, 0) + 1
    assert len(draws) == 2  # both templates appear ...
    assert max(draws.values()) > 0.5 * sum(draws.values())  # ... skewed


def test_jobs_have_positive_volumes_and_times():
    for job in generate_workload(seed=11, n_jobs=10):
        for task in job.tasks.values():
            assert task.volume > 0
            assert task.best_time >= 1
        for transfer in job.transfers:
            assert transfer.base_time >= 1
            assert transfer.volume > 0


def test_template_workload_pickles_for_process_fanout():
    """Worker processes receive the factory by pickle (the sharded
    engine's _WorkerSpec); the round-tripped copy must draw the exact
    same jobs."""
    import pickle

    factory = template_workload_factory((0.7, 0.3))
    copy = pickle.loads(pickle.dumps(factory))
    for index in range(20):
        job = factory(np.random.default_rng(index), index)
        twin = copy(np.random.default_rng(index), index)
        assert twin.job_id == job.job_id
        assert twin.structural_hash == job.structural_hash
        assert twin.shape_hash == job.shape_hash
