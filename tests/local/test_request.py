"""Unit tests for resource requests."""

import pytest

from repro.core.resources import ProcessorNode
from repro.core.schedule import Placement
from repro.local.request import ResourceRequest


def test_validation():
    with pytest.raises(ValueError):
        ResourceRequest("r", width=0)
    with pytest.raises(ValueError):
        ResourceRequest("r", wall_time=0)
    with pytest.raises(ValueError):
        ResourceRequest("r", earliest_start=-1)
    with pytest.raises(ValueError):
        ResourceRequest("r", earliest_start=5, reserved_start=3)
    with pytest.raises(ValueError):
        ResourceRequest("r", wall_time=10, deadline=5)
    with pytest.raises(ValueError):
        ResourceRequest("r", min_performance=1.5)


def test_deadline_accounts_for_reserved_start():
    with pytest.raises(ValueError):
        ResourceRequest("r", wall_time=5, reserved_start=10, deadline=12)
    request = ResourceRequest("r", wall_time=5, reserved_start=10,
                              deadline=15)
    assert request.deadline == 15


def test_from_placement_is_advance_reservation():
    placement = Placement("P1", 3, 10, 16)
    request = ResourceRequest.from_placement("job1", placement, owner="u")
    assert request.request_id == "job1:P1"
    assert request.width == 1
    assert request.wall_time == 6
    assert request.reserved_start == 10
    assert request.attributes["node_id"] == 3
    assert request.owner == "u"


def test_admits_performance_constraint():
    request = ResourceRequest("r", min_performance=0.5)
    assert request.admits(ProcessorNode(node_id=1, performance=0.7))
    assert not request.admits(ProcessorNode(node_id=2, performance=0.33))
    assert ResourceRequest("r").admits(
        ProcessorNode(node_id=3, performance=0.1))


def test_requirements_query_constrains_admission():
    request = ResourceRequest("r", requirements="group != 'slow'")
    assert request.admits(ProcessorNode(node_id=1, performance=0.9))
    assert not request.admits(ProcessorNode(node_id=2, performance=0.33))


def test_requirements_combine_with_min_performance():
    request = ResourceRequest("r", min_performance=0.6,
                              requirements="domain == 'alpha'")
    good = ProcessorNode(node_id=1, performance=0.7, domain="alpha")
    wrong_domain = ProcessorNode(node_id=2, performance=0.7, domain="beta")
    too_slow = ProcessorNode(node_id=3, performance=0.5, domain="alpha")
    assert request.admits(good)
    assert not request.admits(wrong_domain)
    assert not request.admits(too_slow)


def test_malformed_requirements_fail_at_build_time():
    from repro.local.query import QueryError

    with pytest.raises(QueryError):
        ResourceRequest("r", requirements="(performance >")


def test_to_batch_job():
    request = ResourceRequest("r", width=2, wall_time=8, earliest_start=4)
    batch = request.to_batch_job()
    assert batch.arrival == 4
    assert batch.width == 2
    assert batch.estimate == 8
    assert batch.runtime == 8
    shorter = request.to_batch_job(arrival=6, runtime=5)
    assert shorter.arrival == 6
    assert shorter.runtime == 5
    assert shorter.estimate == 8
