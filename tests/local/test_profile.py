"""Unit tests for the availability profile."""

import pytest

from repro.local.profile import AvailabilityProfile


def test_initial_profile_fully_free():
    profile = AvailabilityProfile(4)
    assert profile.free_at(0) == 4
    assert profile.free_at(1000) == 4
    assert profile.snapshot() == [(0, 4)]


def test_capacity_validation():
    with pytest.raises(ValueError):
        AvailabilityProfile(0)


def test_add_carves_a_slot():
    profile = AvailabilityProfile(4)
    profile.add(5, 10, 3)
    assert profile.free_at(4) == 4
    assert profile.free_at(5) == 1
    assert profile.free_at(14) == 1
    assert profile.free_at(15) == 4


def test_add_validation():
    profile = AvailabilityProfile(2)
    with pytest.raises(ValueError):
        profile.add(0, 0, 1)
    with pytest.raises(ValueError):
        profile.add(0, 1, 0)
    with pytest.raises(ValueError):
        profile.add(-1, 1, 1)


def test_add_underflow_rejected():
    profile = AvailabilityProfile(2)
    profile.add(0, 10, 2)
    with pytest.raises(ValueError):
        profile.add(5, 2, 1)


def test_overlapping_adds_stack():
    profile = AvailabilityProfile(4)
    profile.add(0, 10, 1)
    profile.add(5, 10, 2)
    assert profile.free_at(0) == 3
    assert profile.free_at(5) == 1
    assert profile.free_at(10) == 2
    assert profile.free_at(15) == 4


def test_earliest_start_now_when_free():
    profile = AvailabilityProfile(4)
    assert profile.earliest_start(5, 2, from_=3) == 3


def test_earliest_start_skips_congestion():
    profile = AvailabilityProfile(4)
    profile.add(0, 10, 3)  # only 1 node free until t=10
    assert profile.earliest_start(5, 1, from_=0) == 0
    assert profile.earliest_start(5, 2, from_=0) == 10


def test_earliest_start_needs_contiguous_window():
    profile = AvailabilityProfile(4)
    profile.add(5, 5, 4)  # full blackout at [5, 10)
    # A 6-slot window for any width cannot start at 0.
    assert profile.earliest_start(6, 1, from_=0) == 10
    # But a 5-slot window fits exactly before the blackout.
    assert profile.earliest_start(5, 1, from_=0) == 0


def test_earliest_start_between_two_busy_periods():
    profile = AvailabilityProfile(2)
    profile.add(0, 4, 2)
    profile.add(10, 4, 2)
    assert profile.earliest_start(6, 1, from_=0) == 4
    assert profile.earliest_start(7, 1, from_=0) == 14


def test_earliest_start_validation():
    profile = AvailabilityProfile(2)
    with pytest.raises(ValueError):
        profile.earliest_start(0, 1)
    with pytest.raises(ValueError):
        profile.earliest_start(1, 3)
    with pytest.raises(ValueError):
        profile.earliest_start(1, 0)


def test_coalescing_keeps_snapshot_minimal():
    profile = AvailabilityProfile(4)
    profile.add(0, 5, 2)
    profile.add(5, 5, 2)  # adjacent with equal occupancy -> one segment
    assert profile.snapshot() == [(0, 2), (10, 4)]


def test_copy_is_independent():
    profile = AvailabilityProfile(4)
    profile.add(0, 5, 1)
    clone = profile.copy()
    clone.add(0, 5, 1)
    assert profile.free_at(0) == 3
    assert clone.free_at(0) == 2
