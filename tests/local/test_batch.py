"""Unit tests for the local batch-system simulator."""

import pytest

from repro.local.batch import LocalBatchSystem
from repro.local.policies import (
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FCFSPolicy,
    GangPolicy,
    LWFPolicy,
)
from repro.workload.traces import BatchJob


def job(job_id, arrival, width=1, runtime=2, estimate=None):
    return BatchJob(job_id=job_id, arrival=arrival, width=width,
                    runtime=runtime,
                    estimate=estimate if estimate is not None else runtime)


def by_id(records):
    return {record.job_id: record for record in records}


def test_single_job_runs_immediately():
    system = LocalBatchSystem(capacity=2)
    system.submit(job("a", arrival=0, runtime=5))
    records = by_id(system.run())
    assert records["a"].start == 0
    assert records["a"].end == 5
    assert records["a"].wait == 0


def test_capacity_validation():
    with pytest.raises(ValueError):
        LocalBatchSystem(capacity=0)
    system = LocalBatchSystem(capacity=2)
    with pytest.raises(ValueError):
        system.submit(job("too-wide", arrival=0, width=3))


def test_fcfs_serializes_when_full():
    system = LocalBatchSystem(capacity=1)
    system.submit_many([
        job("a", arrival=0, runtime=4),
        job("b", arrival=1, runtime=2),
        job("c", arrival=2, runtime=1),
    ])
    records = by_id(system.run())
    assert records["a"].start == 0
    assert records["b"].start == 4
    assert records["c"].start == 6


def test_fcfs_head_of_queue_blocking():
    """A wide head blocks later narrow jobs even when nodes are free."""
    system = LocalBatchSystem(capacity=2, policy=FCFSPolicy())
    system.submit_many([
        job("running", arrival=0, width=1, runtime=10),
        job("wide-head", arrival=1, width=2, runtime=2),
        job("narrow", arrival=2, width=1, runtime=2),
    ])
    records = by_id(system.run())
    assert records["wide-head"].start == 10
    # FCFS without backfilling: narrow waits behind the head.
    assert records["narrow"].start >= 10


def test_easy_backfills_narrow_job():
    system = LocalBatchSystem(capacity=2, policy=EasyBackfillPolicy())
    system.submit_many([
        job("running", arrival=0, width=1, runtime=10, estimate=10),
        job("wide-head", arrival=1, width=2, runtime=2, estimate=2),
        job("narrow", arrival=2, width=1, runtime=3, estimate=3),
    ])
    records = by_id(system.run())
    # narrow fits beside `running` and ends (t=5) before the head's
    # shadow start (t=10): it backfills immediately.
    assert records["narrow"].start == 2
    assert records["wide-head"].start == 10


def test_easy_does_not_delay_the_head():
    system = LocalBatchSystem(capacity=2, policy=EasyBackfillPolicy())
    system.submit_many([
        job("running", arrival=0, width=1, runtime=4, estimate=4),
        job("wide-head", arrival=1, width=2, runtime=2, estimate=2),
        job("long-narrow", arrival=2, width=1, runtime=10, estimate=10),
    ])
    records = by_id(system.run())
    # long-narrow would push the head past its shadow (t=4): no backfill.
    assert records["wide-head"].start == 4
    assert records["long-narrow"].start == 6


def test_conservative_backfilling_also_fills_holes():
    system = LocalBatchSystem(capacity=2,
                              policy=ConservativeBackfillPolicy())
    system.submit_many([
        job("running", arrival=0, width=1, runtime=10, estimate=10),
        job("wide-head", arrival=1, width=2, runtime=2, estimate=2),
        job("narrow", arrival=2, width=1, runtime=3, estimate=3),
    ])
    records = by_id(system.run())
    assert records["narrow"].start == 2


def test_lwf_prefers_small_jobs():
    system = LocalBatchSystem(capacity=1, policy=LWFPolicy())
    system.submit_many([
        job("running", arrival=0, runtime=5),
        job("big", arrival=1, runtime=20),
        job("small", arrival=2, runtime=1),
    ])
    records = by_id(system.run())
    assert records["small"].start == 5
    assert records["big"].start == 6


def test_early_completion_frees_nodes_before_estimate():
    """Jobs run their actual runtime, not the (over)estimate."""
    system = LocalBatchSystem(capacity=1)
    system.submit_many([
        job("over", arrival=0, runtime=2, estimate=10),
        job("next", arrival=1, runtime=1),
    ])
    records = by_id(system.run())
    assert records["over"].end == 2
    assert records["next"].start == 2  # not 10


def test_forecast_recorded_and_error_measured():
    system = LocalBatchSystem(capacity=1)
    system.submit_many([
        job("first", arrival=0, runtime=2, estimate=8),
        job("second", arrival=1, runtime=2, estimate=2),
    ])
    records = by_id(system.run())
    # Forecast for `second` assumed `first` runs its full 8-slot estimate.
    assert records["second"].forecast == 8
    assert records["second"].start == 2
    assert records["second"].forecast_error == 6
    assert records["first"].forecast_error == 0


def test_advance_reservation_starts_exactly_on_time():
    system = LocalBatchSystem(capacity=1)
    reserved = job("vip", arrival=0, runtime=3, estimate=3)
    system.submit(reserved)
    system.reserve(reserved, start=5)
    system.submit(job("other", arrival=0, runtime=2, estimate=2))
    records = by_id(system.run())
    assert records["vip"].start == 5
    assert records["vip"].reserved
    assert records["other"].start == 0


def test_advance_reservation_blocks_conflicting_jobs():
    system = LocalBatchSystem(capacity=1)
    reserved = job("vip", arrival=0, runtime=5, estimate=5)
    system.submit(reserved)
    system.reserve(reserved, start=2)
    system.submit(job("long", arrival=0, runtime=4, estimate=4))
    records = by_id(system.run())
    # `long` cannot fit before the reservation; it waits until after.
    assert records["long"].start == 7


def test_reservation_validation():
    system = LocalBatchSystem(capacity=1)
    late = job("late", arrival=10, runtime=1)
    with pytest.raises(ValueError):
        system.reserve(late, start=5)


def test_gang_members_wait_for_each_other():
    policy = GangPolicy(expected_sizes={"g": 2})
    system = LocalBatchSystem(capacity=2, policy=policy)
    system.submit_many([
        BatchJob("gang:g:a", arrival=0, width=1, runtime=3, estimate=3),
        BatchJob("gang:g:b", arrival=5, width=1, runtime=3, estimate=3),
    ])
    records = by_id(system.run())
    # Member a waits for member b to arrive; both start together at 5.
    assert records["gang:g:a"].start == 5
    assert records["gang:g:b"].start == 5


def test_mean_wait_and_forecast_error_helpers():
    system = LocalBatchSystem(capacity=1)
    system.submit_many([
        job("a", arrival=0, runtime=4, estimate=4),
        job("b", arrival=0, runtime=2, estimate=2),
    ])
    records = system.run()
    assert LocalBatchSystem.mean_wait(records) == pytest.approx(2.0)
    assert LocalBatchSystem.mean_forecast_error(records) == pytest.approx(0.0)
    assert LocalBatchSystem.mean_wait([]) == 0.0
    assert LocalBatchSystem.mean_forecast_error([]) == 0.0


def test_utilization_conserved():
    """No two jobs may overlap beyond capacity at any instant."""
    system = LocalBatchSystem(capacity=2, policy=EasyBackfillPolicy())
    jobs = [job(f"j{i}", arrival=i % 5, width=1 + i % 2, runtime=3 + i % 4,
                estimate=5 + i % 4) for i in range(12)]
    system.submit_many(jobs)
    records = system.run()
    events = sorted({r.start for r in records} | {r.end for r in records})
    for t in events:
        active = sum(r.width for r in records if r.start <= t < r.end)
        assert active <= 2
    assert len(records) == 12
