"""Unit tests for the resource-query language."""

import pytest

from repro.core.resources import ProcessorNode, ResourcePool
from repro.local.query import (
    QueryError,
    ResourceQuery,
    parse,
    tokenize,
)


def pool():
    return ResourcePool([
        ProcessorNode(node_id=1, performance=0.9, domain="alpha"),
        ProcessorNode(node_id=2, performance=0.5, domain="alpha"),
        ProcessorNode(node_id=3, performance=0.33, domain="beta"),
    ])


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------

def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text)[:-1]]


def test_tokenize_numbers_idents_strings():
    assert kinds("performance >= 0.5") == [
        ("ident", "performance"), ("op", ">="), ("number", "0.5")]
    assert kinds("domain == 'alpha'") == [
        ("ident", "domain"), ("op", "=="), ("string", "alpha")]
    assert kinds('x != "b"') == [
        ("ident", "x"), ("op", "!="), ("string", "b")]


def test_tokenize_multichar_operators_win():
    assert kinds("a<=b") == [("ident", "a"), ("op", "<="), ("ident", "b")]
    assert kinds("a<b") == [("ident", "a"), ("op", "<"), ("ident", "b")]
    assert kinds("a&&b||!c") == [
        ("ident", "a"), ("op", "&&"), ("ident", "b"), ("op", "||"),
        ("op", "!"), ("ident", "c")]


def test_tokenize_errors():
    with pytest.raises(QueryError, match="unterminated string"):
        tokenize("domain == 'oops")
    with pytest.raises(QueryError, match="unexpected character"):
        tokenize("a @ b")


def test_tokenize_positions():
    tokens = tokenize("ab >= 1")
    assert [t.position for t in tokens[:-1]] == [0, 3, 6]


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

def evaluate(text, **context):
    return parse(text).evaluate(context)


def test_arithmetic_precedence():
    assert evaluate("1 + 2 * 3") == 7
    assert evaluate("(1 + 2) * 3") == 9
    assert evaluate("2 * 3 - 4 / 2") == 4
    assert evaluate("-2 + 5") == 3
    assert evaluate("--2") == 2


def test_comparisons():
    assert evaluate("1 < 2") is True
    assert evaluate("2 <= 2") is True
    assert evaluate("3 > 4") is False
    assert evaluate("'a' == 'a'") is True
    assert evaluate("'a' != 'b'") is True
    assert evaluate("'abc' < 'abd'") is True


def test_boolean_connectives_and_precedence():
    # && binds tighter than ||.
    assert evaluate("1 > 2 || 1 < 2 && 3 > 2") is True
    assert evaluate("(1 > 2 || 1 < 2) && 3 > 2") is True
    assert evaluate("!(1 > 2)") is True
    assert evaluate("true && !false") is True


def test_attributes_resolve_from_context():
    assert evaluate("x + y", x=2, y=3) == 5
    with pytest.raises(QueryError, match="unknown attribute"):
        evaluate("ghost > 1", x=2)


def test_type_errors_are_loud():
    with pytest.raises(QueryError, match="cannot compare"):
        evaluate("1 < 'a'")
    with pytest.raises(QueryError, match="needs a number"):
        evaluate("'a' + 1")
    with pytest.raises(QueryError, match="division by zero"):
        evaluate("1 / 0")
    with pytest.raises(QueryError, match="expected a boolean"):
        evaluate("1 && 2")


def test_parse_errors():
    with pytest.raises(QueryError, match="empty query"):
        parse("   ")
    with pytest.raises(QueryError, match="trailing input"):
        parse("1 + 2 3")
    with pytest.raises(QueryError, match="expected"):
        parse("(1 + 2")
    with pytest.raises(QueryError, match="unexpected"):
        parse("1 +")


# ----------------------------------------------------------------------
# ResourceQuery
# ----------------------------------------------------------------------

def test_matches_on_node_attributes():
    query = ResourceQuery("performance >= 0.5 && domain == 'alpha'")
    nodes = pool()
    assert query.matches(nodes.node(1))
    assert query.matches(nodes.node(2))
    assert not query.matches(nodes.node(3))


def test_group_attribute():
    query = ResourceQuery("group == 'fast'")
    assert [n.node_id for n in query.select(pool())] == [1]


def test_rank_orders_selection():
    query = ResourceQuery("performance > 0", rank="performance")
    assert [n.node_id for n in query.select(pool())] == [1, 2, 3]
    reverse = ResourceQuery("performance > 0", rank="-performance")
    assert [n.node_id for n in reverse.select(pool())] == [3, 2, 1]


def test_rank_arithmetic():
    query = ResourceQuery("true", rank="performance * 2 - price_rate")
    scores = {n.node_id: query.rank_of(n) for n in pool()}
    assert scores[1] == pytest.approx(0.9)
    assert scores[2] == pytest.approx(0.5)


def test_select_count_limits():
    query = ResourceQuery("performance > 0", rank="performance")
    assert [n.node_id for n in query.select(pool(), count=2)] == [1, 2]
    with pytest.raises(QueryError):
        query.select(pool(), count=0)


def test_non_boolean_requirements_rejected():
    query = ResourceQuery("performance + 1")
    with pytest.raises(QueryError, match="must be boolean"):
        query.matches(pool().node(1))


def test_default_rank_is_zero():
    query = ResourceQuery("true")
    assert query.rank_of(pool().node(1)) == 0.0
    # With no rank, ties break on node id.
    assert [n.node_id for n in query.select(pool())] == [1, 2, 3]
