"""Unit tests for the aged-priority queue policy."""

import pytest

from repro.local.batch import LocalBatchSystem, QueuedJob
from repro.local.policies import AgedPriorityPolicy
from repro.workload.traces import BatchJob


def queued(job_id, arrival, seq=0, runtime=2):
    return QueuedJob(
        job=BatchJob(job_id=job_id, arrival=arrival, width=1,
                     runtime=runtime, estimate=runtime),
        seq=seq)


def test_aging_rate_validation():
    with pytest.raises(ValueError):
        AgedPriorityPolicy(aging_rate=-1)


def test_base_priorities_order_queue():
    policy = AgedPriorityPolicy(priorities={"urgent": -5.0},
                                aging_rate=0.0)
    queue = [queued("normal", 0, seq=0), queued("urgent", 3, seq=1)]
    assert [q.job.job_id
            for q in policy.order(queue, now=5)] == ["urgent", "normal"]


def test_waiting_improves_effective_priority():
    policy = AgedPriorityPolicy(priorities={"vip": -2.0}, aging_rate=1.0)
    old = queued("old", arrival=0, seq=0)
    vip = queued("vip", arrival=9, seq=1)
    # At t=10 old has waited 10 slots (effective -10), vip 1 (-3).
    assert policy.effective_priority(old, 10) == -10.0
    assert policy.effective_priority(vip, 10) == -3.0
    assert [q.job.job_id
            for q in policy.order([vip, old], now=10)] == ["old", "vip"]


def test_zero_aging_preserves_priorities_over_time():
    policy = AgedPriorityPolicy(priorities={"a": 1.0, "b": 2.0},
                                aging_rate=0.0)
    queue = [queued("b", 0, seq=0), queued("a", 50, seq=1)]
    for now in (50, 500):
        assert [q.job.job_id
                for q in policy.order(queue, now=now)] == ["a", "b"]


def test_aged_policy_prevents_starvation_in_batch_system():
    """A big job eventually runs even under a stream of small ones."""
    small_jobs = [
        BatchJob(f"small{i}", arrival=i * 2, width=1, runtime=3,
                 estimate=3)
        for i in range(30)
    ]
    big = BatchJob("big", arrival=0, width=2, runtime=5, estimate=5)

    def finish_of_big(policy):
        system = LocalBatchSystem(capacity=2, policy=policy)
        system.submit_many(small_jobs + [big])
        records = {r.job_id: r for r in system.run()}
        return records["big"].start

    # Pure priority (small jobs favoured) starves the wide big job...
    starving = AgedPriorityPolicy(priorities={"big": 10.0},
                                  aging_rate=0.0)
    # ...while aging lets its waiting time overcome the handicap.
    aged = AgedPriorityPolicy(priorities={"big": 10.0}, aging_rate=0.5)
    assert finish_of_big(aged) <= finish_of_big(starving)


def test_default_priority_is_zero():
    policy = AgedPriorityPolicy(aging_rate=0.0)
    queue = [queued("b", 5, seq=1), queued("a", 2, seq=0)]
    # Equal priorities: FCFS tie-break.
    assert [q.job.job_id
            for q in policy.order(queue, now=9)] == ["a", "b"]
