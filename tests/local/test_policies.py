"""Unit tests for queue-ordering policies."""

from repro.local.batch import QueuedJob
from repro.local.policies import (
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FCFSPolicy,
    GangPolicy,
    LWFPolicy,
)
from repro.workload.traces import BatchJob


def queued(job_id, arrival, width=1, runtime=2, estimate=None, seq=0):
    return QueuedJob(
        job=BatchJob(job_id=job_id, arrival=arrival, width=width,
                     runtime=runtime,
                     estimate=estimate if estimate is not None else runtime),
        seq=seq)


def test_fcfs_orders_by_arrival_then_seq():
    policy = FCFSPolicy()
    queue = [queued("b", 5, seq=1), queued("a", 2, seq=0),
             queued("c", 5, seq=2)]
    assert [q.job.job_id for q in policy.order(queue, now=10)] == [
        "a", "b", "c"]


def test_lwf_orders_by_work():
    policy = LWFPolicy()
    queue = [
        queued("big", 0, width=4, runtime=10, estimate=10, seq=0),
        queued("small", 5, width=1, runtime=2, estimate=2, seq=1),
        queued("medium", 1, width=2, runtime=3, estimate=3, seq=2),
    ]
    assert [q.job.job_id for q in policy.order(queue, now=10)] == [
        "small", "medium", "big"]


def test_lwf_ties_break_by_arrival():
    policy = LWFPolicy()
    queue = [queued("late", 5, runtime=2, seq=1),
             queued("early", 1, runtime=2, seq=0)]
    assert [q.job.job_id for q in policy.order(queue, now=10)] == [
        "early", "late"]


def test_backfill_flags():
    assert FCFSPolicy().backfill == "none"
    assert LWFPolicy().backfill == "none"
    assert EasyBackfillPolicy().backfill == "easy"
    assert ConservativeBackfillPolicy().backfill == "conservative"


def test_backfill_policies_are_fcfs_ordered():
    queue = [queued("b", 5, seq=1), queued("a", 2, seq=0)]
    for policy in (EasyBackfillPolicy(), ConservativeBackfillPolicy()):
        assert [q.job.job_id for q in policy.order(queue, now=9)] == [
            "a", "b"]


def test_gang_tag_parsing():
    assert GangPolicy.gang_tag("gang:g1:member0") == "g1"
    assert GangPolicy.gang_tag("plain-job") == "plain-job"
    assert GangPolicy.gang_tag("gang:odd") == "gang:odd"


def test_gang_groups_members_together():
    policy = GangPolicy(expected_sizes={"g1": 2})
    queue = [
        queued("gang:g1:a", 0, seq=0),
        queued("solo", 1, seq=1),
        queued("gang:g1:b", 3, seq=2),
    ]
    ordered = [q.job.job_id for q in policy.order(queue, now=5)]
    # Gang g1 (earliest member at t=0) comes first, both members adjacent.
    assert ordered == ["gang:g1:a", "gang:g1:b", "solo"]
