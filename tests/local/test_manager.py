"""Unit tests for the local resource manager."""

import pytest

from repro.core.calendar import ReservationCalendar
from repro.core.resources import ProcessorNode, ResourcePool
from repro.local.manager import (
    Grant,
    LocalResourceManager,
    RequestRefused,
)
from repro.local.request import ResourceRequest


def make_manager():
    pool = ResourcePool([
        ProcessorNode(node_id=1, performance=1.0),
        ProcessorNode(node_id=2, performance=0.5),
        ProcessorNode(node_id=3, performance=0.33),
    ])
    return LocalResourceManager(pool)


def test_construction_validation():
    with pytest.raises(ValueError):
        LocalResourceManager(ResourcePool())
    pool = ResourcePool([ProcessorNode(node_id=1, performance=1.0)])
    with pytest.raises(ValueError, match="no calendars"):
        LocalResourceManager(pool, calendars={})


def test_grant_prefers_cheapest_admissible_node():
    manager = make_manager()
    grant = manager.handle(ResourceRequest("r1", wall_time=4))
    # Cheapest = slowest (price ∝ performance).
    assert grant.node_id == 3
    assert (grant.start, grant.end) == (0, 4)


def test_min_performance_constrains_choice():
    manager = make_manager()
    grant = manager.handle(
        ResourceRequest("r1", wall_time=4, min_performance=0.4))
    assert grant.node_id == 2


def test_query_requirements_respected():
    manager = make_manager()
    grant = manager.handle(
        ResourceRequest("r1", wall_time=4, requirements="group == 'fast'"))
    assert grant.node_id == 1
    with pytest.raises(RequestRefused):
        manager.handle(ResourceRequest(
            "r2", wall_time=4, requirements="performance > 2"))


def test_advance_reservation_at_fixed_start():
    manager = make_manager()
    request = ResourceRequest("r1", wall_time=5, earliest_start=10,
                              reserved_start=10)
    grant = manager.handle(request)
    assert (grant.start, grant.end) == (10, 15)
    # The same window is now busy on that node.
    assert not manager.calendars[grant.node_id].is_free(10, 15)


def test_node_id_attribute_binds_the_request():
    manager = make_manager()
    grant = manager.handle(ResourceRequest(
        "r1", wall_time=3, attributes={"node_id": 2}))
    assert grant.node_id == 2
    # The bound node being busy refuses the request outright.
    manager.calendars[2].reserve(3, 100, "background")
    with pytest.raises(RequestRefused):
        manager.handle(ResourceRequest(
            "r2", wall_time=3, reserved_start=10, earliest_start=10,
            attributes={"node_id": 2}))


def test_busy_windows_push_start_or_move_node():
    manager = make_manager()
    manager.calendars[3].reserve(0, 100, "background")
    # Without a deadline the cheapest node still wins, just later.
    late = manager.handle(ResourceRequest("r1", wall_time=4))
    assert late.node_id == 3
    assert late.start == 100
    # With a deadline the request moves to the next cheapest node.
    tight = manager.handle(ResourceRequest("r2", wall_time=4, deadline=20))
    assert tight.node_id == 2


def test_deadline_refusal():
    manager = make_manager()
    for calendar in manager.calendars.values():
        calendar.reserve(0, 50, "background")
    with pytest.raises(RequestRefused):
        manager.handle(ResourceRequest("r1", wall_time=10, deadline=40))


def test_width_refused():
    manager = make_manager()
    with pytest.raises(RequestRefused, match="width"):
        manager.handle(ResourceRequest("wide", width=2, wall_time=2))


def test_duplicate_request_id_rejected():
    manager = make_manager()
    manager.handle(ResourceRequest("r1", wall_time=2))
    with pytest.raises(ValueError, match="already granted"):
        manager.handle(ResourceRequest("r1", wall_time=2))


def test_release_frees_window():
    manager = make_manager()
    grant = manager.handle(ResourceRequest("r1", wall_time=4))
    assert manager.grant_of("r1") == grant
    manager.release("r1")
    assert manager.grant_of("r1") is None
    assert manager.calendars[grant.node_id].is_free(grant.start, grant.end)
    with pytest.raises(KeyError):
        manager.release("r1")


def test_handle_all_is_atomic():
    manager = make_manager()
    good = ResourceRequest("a", wall_time=2)
    impossible = ResourceRequest("b", wall_time=2,
                                 requirements="performance > 2")
    with pytest.raises(RequestRefused):
        manager.handle_all([good, impossible])
    # The first grant was rolled back.
    assert manager.grant_of("a") is None
    assert all(len(calendar) == 0
               for calendar in manager.calendars.values())


def test_handle_all_success():
    manager = make_manager()
    grants = manager.handle_all([
        ResourceRequest("a", wall_time=2),
        ResourceRequest("b", wall_time=2),
    ])
    assert len(grants) == 2
    assert manager.utilization(0, 10) > 0


def test_grants_from_job_manager_requests():
    """End-to-end: a supporting schedule's requests land as grants."""
    from repro.core.calendar import ReservationCalendar as Calendar
    from repro.core.strategy import StrategyGenerator, StrategyType
    from repro.flow.manager import JobManager
    from repro.workload.paper_example import fig2_job, fig2_pool

    pool = fig2_pool()
    job_manager = JobManager("default", pool)
    calendars = {n.node_id: Calendar() for n in pool}
    strategy = job_manager.plan(fig2_job(), calendars, StrategyType.S1)
    requests = job_manager.resource_requests(strategy)

    local = LocalResourceManager(pool)
    grants = local.handle_all(requests)
    chosen = strategy.best_schedule()
    for grant in grants:
        task_id = grant.request_id.split(":", 1)[1]
        placement = chosen.distribution.placement(task_id)
        assert grant.start == placement.start
        assert grant.end == placement.end
