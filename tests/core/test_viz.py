"""Unit tests for the text Gantt renderers."""

import pytest

from repro.core.calendar import ReservationCalendar
from repro.core.schedule import Distribution, Placement
from repro.viz import render_calendars, render_distribution, render_timeline
from repro.workload.paper_example import fig2_pool


def demo_distribution():
    return Distribution("demo", [
        Placement("P1", 1, 0, 2),
        Placement("P2", 2, 3, 9),
        Placement("P3", 1, 4, 6),
    ], scenario="level=0")


def test_render_distribution_rows_and_labels():
    text = render_distribution(demo_distribution(), fig2_pool())
    lines = text.splitlines()
    assert "Distribution 'demo' (level=0)" in lines[0]
    assert any(line.startswith("n1(1.00)") for line in lines)
    assert any(line.startswith("n2(0.50)") for line in lines)
    assert "P1" in text and "P2" in text and "P3" in text


def test_render_distribution_block_positions():
    text = render_distribution(demo_distribution(), width=12)
    node1_row = [line for line in text.splitlines()
                 if line.startswith("n1")][0]
    body = node1_row.split("|")[1]
    # P1 occupies slots 0-1, P3 slots 4-5, rest of the row idle.
    assert body[0:2] == "P1"
    assert body[4:6] == "P3"
    assert body[2:4] == ".."


def test_render_distribution_without_pool():
    text = render_distribution(demo_distribution())
    assert "n1" in text and "n2" in text


def test_long_blocks_fill_with_rule():
    dist = Distribution("d", [Placement("X", 1, 0, 6)])
    text = render_distribution(dist, width=8)
    body = [line for line in text.splitlines()
            if line.startswith("n1")][0].split("|")[1]
    assert body.startswith("X=====")


def test_render_calendars():
    calendars = {
        1: ReservationCalendar(),
        2: ReservationCalendar(),
    }
    calendars[1].reserve(0, 4, "background")
    calendars[2].reserve(2, 5, "job:A")
    text = render_calendars(calendars, horizon=10)
    # Labels truncate to their block width.
    assert "back" in text
    assert "job" in text
    with pytest.raises(ValueError):
        render_calendars(calendars, horizon=0)


def test_axis_ticks_present():
    dist = Distribution("d", [Placement("X", 1, 0, 25)])
    text = render_distribution(dist)
    axis = text.splitlines()[-1]
    assert "0" in axis and "10" in axis and "20" in axis


def test_render_timeline_sorts_events():
    text = render_timeline([(5, "b"), (1, "a")], label="Log")
    lines = text.splitlines()
    assert lines[0] == "Log"
    assert lines[1].endswith("a")
    assert lines[2].endswith("b")
