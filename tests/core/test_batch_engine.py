"""The batched DP engine is bit-identical to the scalar recursion.

The batch engine answers every candidate row's placement query through
the stacked gap tables (:mod:`repro.core.placement`) and ranks rows
with vectorized lexicographic argmins; the guarantee is that engine
choice is purely a speed knob — every schedule, cost, makespan,
collision list, and admissibility flag must equal the scalar run's
exactly, for every strategy family.
"""

import pytest

from repro.core.dp import allocate_chain
from repro.core.strategy import StrategyGenerator, StrategyType
from repro.grid.environment import GridEnvironment
from repro.workload.generator import generate_job, generate_pool
from repro.workload.paper_example import fig2_job, fig2_pool

from .test_warm_start import strategies_equal


def generate_with(pool, job, calendars, stype, engine, release=0):
    return StrategyGenerator(pool, engine=engine).generate(
        job, calendars, stype, release=release)


def engines_equal(pool, job, calendars, stype, release=0):
    scalar = generate_with(pool, job, dict(calendars), stype, "scalar",
                           release)
    batch = generate_with(pool, job, dict(calendars), stype, "batch",
                          release)
    auto = generate_with(pool, job, dict(calendars), stype, "auto",
                         release)
    strategies_equal(batch, scalar)
    strategies_equal(auto, scalar)


@pytest.mark.parametrize("stype", list(StrategyType))
def test_fig2_batch_equals_scalar_on_empty_calendars(stype):
    pool, job = fig2_pool(), fig2_job()
    environment = GridEnvironment(pool)
    engines_equal(pool, job, environment.snapshot(), stype)


@pytest.mark.parametrize("stype", list(StrategyType))
@pytest.mark.parametrize("seed", [7, 2009])
def test_fig2_batch_equals_scalar_under_background_load(stype, seed):
    from repro.sim.rng import RandomStreams

    pool, job = fig2_pool(), fig2_job()
    environment = GridEnvironment(pool)
    environment.apply_background_load(
        RandomStreams(seed).stream("bg"), 0.4, 300)
    engines_equal(pool, job, environment.snapshot(), stype)


@pytest.mark.parametrize("seed", range(6))
def test_random_workloads_batch_equals_scalar(seed):
    """Seeded random jobs on a loaded random pool, all families."""
    from repro.sim.rng import RandomStreams

    streams = RandomStreams(seed)
    pool = generate_pool(streams.stream("pool"))
    environment = GridEnvironment(pool)
    environment.apply_background_load(streams.stream("bg"), 0.5, 400)
    for index in range(3):
        job = generate_job(streams.stream(f"job{index}"), index)
        for stype in StrategyType:
            engines_equal(pool, job, environment.snapshot(), stype,
                          release=index * 7)


@pytest.mark.parametrize("objective", ["cost", "time"])
def test_allocate_chain_engines_agree_directly(objective):
    """Engine equality at the allocate_chain level, both objectives.

    The forced batch engine must return the same placements, cost, and
    finish as the scalar recursion — and, cold against cold, the same
    expansion count (the batch sweep expands exactly the states the
    cold recursion would).
    """
    from repro.sim.rng import RandomStreams

    streams = RandomStreams(42)
    pool = generate_pool(streams.stream("pool"))
    environment = GridEnvironment(pool)
    environment.apply_background_load(streams.stream("bg"), 0.5, 300)
    job = generate_job(streams.stream("job"), 0)
    order = job.topological_order()
    chain = [order[0]]
    for task_id in order[1:]:
        if job.transfer_between(chain[-1], task_id) is not None:
            chain.append(task_id)
    assert len(chain) >= 2, "workload generator no longer yields chains"
    calendars = environment.snapshot()
    deadline = 10_000
    scalar = allocate_chain(job, chain, pool, calendars, deadline,
                            objective=objective, engine="scalar")
    batch = allocate_chain(job, chain, pool, calendars, deadline,
                           objective=objective, engine="batch")
    assert scalar is not None and batch is not None
    assert batch.placements == scalar.placements
    assert batch.cost == scalar.cost
    assert batch.finish == scalar.finish
    assert batch.evaluations == scalar.evaluations
