"""Round-trip tests for the shared-memory gap-table transport.

The worker-lane sync protocol of the sharded engine: the parent
exports calendars' gap tables into one shared-memory block
(:class:`SharedGapExport`), a consumer attaches zero-copy views
(:func:`attach_gap_tables`) and rebuilds planning calendars
(:func:`repro.flow.sharding.replica_calendars`).  These tests run both
sides in one process — the block is real shared memory either way —
and assert the rebuilt calendars answer placement queries identically
to the originals.
"""

import pytest

from repro.core.calendar import ReservationCalendar
from repro.core.placement import SharedGapExport, attach_gap_tables
from repro.flow.sharding import replica_calendars


def loaded_calendars():
    a = ReservationCalendar()
    a.reserve(0, 4, tag="j1:t1")
    a.reserve(4, 6, tag="j1:t2")  # back-to-back: a zero-length gap
    a.reserve(20, 25, tag="background")
    b = ReservationCalendar()
    b.reserve(7, 9, tag="j2:t1")
    empty = ReservationCalendar()
    return {3: a, 5: b, 11: empty}


def test_export_attach_round_trip():
    calendars = loaded_calendars()
    export = SharedGapExport(
        {nid: cal.gap_table() for nid, cal in calendars.items()})
    try:
        attached = attach_gap_tables(export.handle)
        try:
            assert set(attached.tables) == set(calendars)
            for nid, calendar in calendars.items():
                original = calendar.gap_table()
                view = attached.tables[nid]
                assert view.gap_start.tolist() == original.gap_start.tolist()
                assert view.gap_end.tolist() == original.gap_end.tolist()
                assert view.last_end == original.last_end
                assert view.version == original.version
        finally:
            attached.close()
    finally:
        export.close()


def test_attached_views_are_read_only():
    export = SharedGapExport({1: loaded_calendars()[3].gap_table()})
    try:
        attached = attach_gap_tables(export.handle)
        try:
            with pytest.raises(ValueError):
                attached.tables[1].gap_start[0] = 99
        finally:
            attached.close()
    finally:
        export.close()


def test_replica_calendars_match_original_busy_spans():
    calendars = loaded_calendars()
    export = SharedGapExport(
        {nid: cal.gap_table() for nid, cal in calendars.items()})
    try:
        attached = attach_gap_tables(export.handle)
        try:
            replicas = replica_calendars(attached.tables)
        finally:
            attached.close()
    finally:
        export.close()
    for nid, original in calendars.items():
        replica = replicas[nid]
        assert [(r.start, r.end) for r in replica.reservations] == [
            (r.start, r.end) for r in original.reservations]
        assert all(r.tag == "replica" for r in replica.reservations)
        # The replica answers placement queries like the original.
        for duration in (1, 3, 8):
            for earliest in (0, 2, 5, 30):
                assert replica.earliest_fit(duration, earliest=earliest) \
                    == original.earliest_fit(duration, earliest=earliest)


def test_close_is_idempotent_and_views_survive_unlink():
    export = SharedGapExport({1: loaded_calendars()[3].gap_table()})
    attached = attach_gap_tables(export.handle)
    # Exporter closes (and unlinks) first: on Linux the consumer's
    # mapping stays valid until it detaches — the teardown order the
    # sharded engine relies on when superseding an export.
    export.close()
    export.close()
    assert attached.tables[1].gap_start.shape[0] >= 1
    attached.close()
    attached.close()
