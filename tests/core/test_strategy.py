"""Unit tests for strategy generation (S1, S2, S3, MS1)."""

import pytest

from repro.core.calendar import ReservationCalendar
from repro.core.strategy import (
    EXTREME_LEVELS,
    FULL_LEVELS,
    STRATEGY_SPECS,
    DataPolicyKind,
    StrategyGenerator,
    StrategyType,
)
from repro.workload.paper_example import fig2_job, fig2_pool


@pytest.fixture()
def generator():
    return StrategyGenerator(fig2_pool())


def empty_calendars(pool):
    return {node.node_id: ReservationCalendar() for node in pool}


def test_specs_cover_all_families():
    assert set(STRATEGY_SPECS) == set(StrategyType)
    assert STRATEGY_SPECS[StrategyType.S1].policy is DataPolicyKind.REPLICATION
    assert STRATEGY_SPECS[StrategyType.S2].policy is DataPolicyKind.REMOTE_ACCESS
    assert STRATEGY_SPECS[StrategyType.S3].policy is DataPolicyKind.STATIC
    assert STRATEGY_SPECS[StrategyType.MS1].policy is DataPolicyKind.REPLICATION


def test_only_s3_is_coarse():
    assert STRATEGY_SPECS[StrategyType.S3].coarse
    for stype in (StrategyType.S1, StrategyType.S2, StrategyType.MS1):
        assert not STRATEGY_SPECS[stype].coarse


def test_ms1_has_extreme_levels_only():
    assert STRATEGY_SPECS[StrategyType.MS1].levels == EXTREME_LEVELS
    assert STRATEGY_SPECS[StrategyType.S1].levels == FULL_LEVELS


def test_generate_s1_produces_level_variants(generator):
    job = fig2_job()
    strategy = generator.generate(job, empty_calendars(fig2_pool()),
                                  StrategyType.S1)
    assert [s.level for s in strategy.schedules] == list(FULL_LEVELS)
    assert strategy.stype is StrategyType.S1
    assert strategy.scheduled_job is job  # fine grain: unchanged


def test_generate_s3_coarsens_job(generator):
    job = fig2_job(deadline=40)
    strategy = generator.generate(job, empty_calendars(fig2_pool()),
                                  StrategyType.S3)
    assert len(strategy.scheduled_job) <= len(job)
    assert strategy.job is job


def test_s1_admissible_on_empty_environment(generator):
    strategy = generator.generate(fig2_job(), empty_calendars(fig2_pool()),
                                  StrategyType.S1)
    assert strategy.admissible
    assert strategy.coverage > 0
    best = strategy.best_schedule()
    assert best is not None
    assert best.outcome.cost is not None


def test_ms1_cheaper_to_generate_than_s1(generator):
    """Section 4: 'The type S1 has more computational expenses than MS1.'"""
    job = fig2_job()
    calendars = empty_calendars(fig2_pool())
    s1 = generator.generate(job, calendars, StrategyType.S1)
    ms1 = generator.generate(job, calendars, StrategyType.MS1)
    assert s1.generation_expense > ms1.generation_expense


def test_ms1_coverage_not_exceeding_s1(generator):
    job = fig2_job()
    calendars = empty_calendars(fig2_pool())
    s1 = generator.generate(job, calendars, StrategyType.S1)
    ms1 = generator.generate(job, calendars, StrategyType.MS1)
    assert len(ms1.schedules) < len(s1.schedules)


def test_schedule_for_level_picks_covering_variant(generator):
    strategy = generator.generate(fig2_job(deadline=40),
                                  empty_calendars(fig2_pool()),
                                  StrategyType.S1)
    covering = strategy.schedule_for_level(0.5)
    assert covering is not None
    assert covering.level >= 0.5
    exact = strategy.schedule_for_level(1 / 3)
    assert exact is not None
    assert exact.level == pytest.approx(1 / 3)


def test_schedule_for_level_none_when_uncovered(generator):
    strategy = generator.generate(fig2_job(deadline=5),  # inadmissible
                                  empty_calendars(fig2_pool()),
                                  StrategyType.S1)
    assert not strategy.admissible
    assert strategy.schedule_for_level(0.0) is None
    assert strategy.best_schedule() is None
    assert strategy.coverage == 0.0


def test_all_collisions_aggregates(generator):
    strategy = generator.generate(fig2_job(), empty_calendars(fig2_pool()),
                                  StrategyType.S1)
    assert (len(strategy.all_collisions())
            == sum(len(s.outcome.collisions) for s in strategy.schedules))


def test_unknown_policy_model_raises():
    generator = StrategyGenerator(fig2_pool(), policy_models={})
    with pytest.raises(KeyError):
        generator.generate(fig2_job(), empty_calendars(fig2_pool()),
                           StrategyType.S1)


def test_spec_property_roundtrip(generator):
    strategy = generator.generate(fig2_job(), empty_calendars(fig2_pool()),
                                  StrategyType.S2)
    assert strategy.spec is STRATEGY_SPECS[StrategyType.S2]


# ----------------------------------------------------------------------
# Level-covering filter
# ----------------------------------------------------------------------

def test_covering_schedules_filters_by_level(generator):
    strategy = generator.generate(fig2_job(), empty_calendars(fig2_pool()),
                                  StrategyType.S1)
    covering = strategy.covering_schedules(0.5)
    assert covering
    assert all(s.level >= 0.5 for s in covering)
    assert all(s.admissible for s in covering)
    # Level 0 covers everything admissible.
    assert strategy.covering_schedules(0.0) == strategy.admissible_schedules()


def test_covering_schedules_tolerates_float_noise(generator):
    from repro.core.strategy import LEVEL_EPS

    strategy = generator.generate(fig2_job(), empty_calendars(fig2_pool()),
                                  StrategyType.S1)
    top = max(s.level for s in strategy.admissible_schedules())
    # A query an epsilon above an exact level must not drop the exact
    # variant (the classic 0.1 + 0.2 style float mishap).
    barely_above = top + LEVEL_EPS / 2
    assert any(s.level == top
               for s in strategy.covering_schedules(barely_above))
    clearly_above = top + 1e-6
    assert all(s.level > top or s.level >= clearly_above - LEVEL_EPS
               for s in strategy.covering_schedules(clearly_above))


def test_schedule_for_level_consistent_with_covering(generator):
    strategy = generator.generate(fig2_job(), empty_calendars(fig2_pool()),
                                  StrategyType.S1)
    for level in (0.0, 0.3, 0.5, 0.9):
        chosen = strategy.schedule_for_level(level)
        covering = strategy.covering_schedules(level)
        if covering:
            assert chosen in covering
        else:
            assert chosen is None
