"""Unit tests for job coarsening (S3's coarse-grain computations)."""

import pytest

from repro.core.granularity import coarsen, merge_linear_sections
from repro.core.job import DataTransfer, Job, Task
from repro.workload.paper_example import fig2_job


def linear_job():
    """A -> B -> C pure chain."""
    return Job(
        "line",
        [Task("A", volume=10, best_time=2),
         Task("B", volume=20, best_time=3),
         Task("C", volume=30, best_time=4)],
        [DataTransfer("D1", "A", "B"), DataTransfer("D2", "B", "C")],
        deadline=30,
    )


def test_merge_linear_sections_collapses_chain():
    coarse = merge_linear_sections(linear_job())
    assert len(coarse) == 1
    merged = next(iter(coarse.tasks.values()))
    assert merged.volume == 60
    assert merged.best_time == 9
    assert coarse.transfers == []


def test_merged_ids_record_history():
    coarse = merge_linear_sections(linear_job())
    assert list(coarse.tasks) == ["A+B+C"]


def test_coarsen_factor_halves_task_count():
    coarse = coarsen(linear_job(), factor=1.5)
    assert len(coarse) == 2


def test_coarsen_preserves_deadline_and_owner():
    job = linear_job()
    coarse = coarsen(job, factor=3)
    assert coarse.deadline == job.deadline
    assert coarse.owner == job.owner
    assert coarse.job_id == job.job_id


def test_original_job_untouched():
    job = linear_job()
    coarsen(job, factor=3)
    assert len(job) == 3
    assert len(job.transfers) == 2


def test_coarsen_validation():
    with pytest.raises(ValueError):
        coarsen(linear_job(), factor=0.5)
    with pytest.raises(ValueError):
        coarsen(linear_job(), target_tasks=0)


def test_diamond_core_is_not_merged():
    """Fork/join structure has no linear sections except around it."""
    job = Job(
        "diamond",
        [Task("A", 1, 1), Task("B", 1, 1), Task("C", 1, 1), Task("D", 1, 1)],
        [DataTransfer("D1", "A", "B"), DataTransfer("D2", "A", "C"),
         DataTransfer("D3", "B", "D"), DataTransfer("D4", "C", "D")],
        deadline=10,
    )
    coarse = coarsen(job, target_tasks=1)
    # A has two successors, D two predecessors: nothing merges.
    assert len(coarse) == 4


def test_fig2_job_coarsening_keeps_dag_valid():
    job = fig2_job()
    coarse = coarsen(job, factor=2.0)
    # The fig2 graph has no strictly linear interior sections; tail/head
    # merges happen only where degree constraints allow.
    assert 1 <= len(coarse) <= len(job)
    assert coarse.total_volume() == job.total_volume()
    # The coarse job must still be a valid DAG (constructor validates).
    order = coarse.topological_order()
    assert len(order) == len(coarse)


def test_coarsen_reattaches_external_edges():
    """head(A)->B chain inside a wider graph keeps outer edges intact."""
    job = Job(
        "mixed",
        [Task("S", 1, 1), Task("A", 1, 1), Task("B", 1, 1), Task("T", 1, 1)],
        [DataTransfer("D0", "S", "A"), DataTransfer("D1", "A", "B"),
         DataTransfer("D2", "B", "T")],
        deadline=20,
    )
    coarse = coarsen(job, target_tasks=1)
    assert len(coarse) == 1
    assert list(coarse.tasks)[0].count("+") == 3


def test_partial_coarsen_keeps_volume_and_reachability():
    job = Job(
        "mixed",
        [Task("S", 1, 1), Task("A", 2, 2), Task("B", 3, 3), Task("T", 4, 4)],
        [DataTransfer("D0", "S", "A"), DataTransfer("D1", "A", "B"),
         DataTransfer("D2", "B", "T")],
        deadline=20,
    )
    coarse = coarsen(job, target_tasks=2)
    assert len(coarse) == 2
    assert coarse.total_volume() == job.total_volume()
    assert len(coarse.sources()) == 1
    assert len(coarse.sinks()) == 1


def test_single_task_job_is_fixed_point():
    job = Job("one", [Task("A", 1, 1)], deadline=5)
    coarse = coarsen(job, factor=4)
    assert len(coarse) == 1
    assert list(coarse.tasks) == ["A"]


def test_aggressive_merge_skips_cycle_creating_edges():
    """A -> B, A -> C, C -> B: contracting (A, B) directly would trap C
    between the merged node's outputs and inputs (a cycle); the
    aggressive coarsener must pick a safe edge instead."""
    job = Job(
        "tri",
        [Task("A", 1, 1), Task("B", 1, 1), Task("C", 1, 1)],
        [DataTransfer("D1", "A", "B"), DataTransfer("D2", "A", "C"),
         DataTransfer("D3", "C", "B")],
        deadline=10,
    )
    coarse = coarsen(job, target_tasks=2, aggressive=True)
    assert len(coarse) == 2
    # Still a valid DAG with preserved totals.
    assert len(coarse.topological_order()) == 2
    assert coarse.total_volume() == job.total_volume()


def test_aggressive_merge_collapses_triangle_to_one():
    job = Job(
        "tri",
        [Task("A", 1, 1), Task("B", 1, 1), Task("C", 1, 1)],
        [DataTransfer("D1", "A", "B"), DataTransfer("D2", "A", "C"),
         DataTransfer("D3", "C", "B")],
        deadline=10,
    )
    coarse = coarsen(job, target_tasks=1, aggressive=True)
    assert len(coarse) == 1
    merged = next(iter(coarse.tasks.values()))
    assert merged.volume == 3
    assert merged.best_time == 3


def test_serialize_preserves_job_identity_fields():
    from repro.core.granularity import serialize

    job = Job("named", [Task("A", 1, 1), Task("B", 1, 1)],
              [DataTransfer("D1", "A", "B")], deadline=9, owner="me")
    serial = serialize(job)
    assert serial.job_id == "named"
    assert serial.deadline == 9
    assert serial.owner == "me"
