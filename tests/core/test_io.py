"""Unit tests for JSON serialization."""

import pytest

from repro.experiments.common import ExperimentTable
from repro.io import (
    distribution_from_dict,
    distribution_to_dict,
    dump_json,
    job_from_dict,
    job_to_dict,
    load_json,
    pool_from_dict,
    pool_to_dict,
    table_to_dict,
)
from repro.core.schedule import Distribution, Placement
from repro.workload.paper_example import fig2_job, fig2_pool


def test_job_roundtrip():
    job = fig2_job()
    clone = job_from_dict(job_to_dict(job))
    assert list(clone.tasks) == list(job.tasks)
    assert clone.deadline == job.deadline
    assert clone.owner == job.owner
    for original, restored in zip(job.transfers, clone.transfers):
        assert original == restored
    assert clone.critical_chains() == job.critical_chains()


def test_pool_roundtrip():
    pool = fig2_pool()
    clone = pool_from_dict(pool_to_dict(pool))
    assert len(clone) == len(pool)
    for original, restored in zip(pool, clone):
        assert original == restored


def test_distribution_roundtrip():
    distribution = Distribution("j", [
        Placement("A", 1, 0, 2),
        Placement("B", 2, 3, 7),
    ], scenario="level=0.5")
    clone = distribution_from_dict(distribution_to_dict(distribution))
    assert clone.job_id == distribution.job_id
    assert clone.scenario == distribution.scenario
    assert clone.placements == distribution.placements


def test_invalid_payload_rejected_by_constructors():
    payload = job_to_dict(fig2_job())
    payload["transfers"].append({"transfer_id": "DX", "src": "P1",
                                 "dst": "ghost", "volume": 1,
                                 "base_time": 1})
    with pytest.raises(Exception):
        job_from_dict(payload)


def test_table_to_dict():
    table = ExperimentTable("x", "demo", columns=["a"])
    table.add_row(a=1)
    table.notes.append("n")
    payload = table_to_dict(table)
    assert payload["experiment_id"] == "x"
    assert payload["rows"] == [{"a": 1}]
    assert payload["notes"] == ["n"]


def test_dump_and_load_json(tmp_path):
    path = tmp_path / "out.json"
    dump_json({"k": [1, 2]}, str(path))
    assert load_json(str(path)) == {"k": [1, 2]}


def test_cli_json_output(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "fig2.json"
    assert main(["run", "fig2", "--json", str(path)]) == 0
    payload = load_json(str(path))
    assert payload["experiment_id"] == "fig2"
    assert len(payload["rows"]) == 4
