"""Unit tests for the compound-job DAG model."""

import pytest

from repro.core.job import DataTransfer, Job, JobValidationError, Task


def diamond_job(deadline=20):
    """P1 -> (P2, P3) -> P4 with unit transfers."""
    tasks = [
        Task("P1", volume=20, best_time=2),
        Task("P2", volume=30, best_time=3),
        Task("P3", volume=10, best_time=1),
        Task("P4", volume=20, best_time=2),
    ]
    transfers = [
        DataTransfer("D1", "P1", "P2"),
        DataTransfer("D2", "P1", "P3"),
        DataTransfer("D3", "P2", "P4"),
        DataTransfer("D4", "P3", "P4"),
    ]
    return Job("diamond", tasks, transfers, deadline=deadline)


def test_task_validation():
    with pytest.raises(ValueError):
        Task("", volume=1, best_time=1)
    with pytest.raises(ValueError):
        Task("t", volume=-1, best_time=1)
    with pytest.raises(ValueError):
        Task("t", volume=1, best_time=0)
    with pytest.raises(ValueError):
        Task("t", volume=1, best_time=5, worst_time=3)


def test_task_default_worst_time():
    task = Task("t", volume=1, best_time=4)
    assert task.worst_time == 4


def test_task_base_time_levels():
    task = Task("t", volume=1, best_time=2, worst_time=6)
    assert task.base_time(0.0) == 2
    assert task.base_time(1.0) == 6
    assert task.base_time(0.5) == 4


def test_task_duration_on_scales_with_performance():
    task = Task("t", volume=1, best_time=2)
    assert task.duration_on(1.0) == 2
    assert task.duration_on(0.5) == 4
    assert task.duration_on(1 / 3) == 6


def test_transfer_validation():
    with pytest.raises(ValueError):
        DataTransfer("", "a", "b")
    with pytest.raises(ValueError):
        DataTransfer("d", "a", "a")
    with pytest.raises(ValueError):
        DataTransfer("d", "a", "b", volume=-1)
    with pytest.raises(ValueError):
        DataTransfer("d", "a", "b", base_time=-1)


def test_job_requires_tasks():
    with pytest.raises(JobValidationError):
        Job("empty", [])


def test_job_duplicate_task_ids():
    with pytest.raises(JobValidationError):
        Job("dup", [Task("a", 1, 1), Task("a", 1, 1)])


def test_job_duplicate_transfer_ids():
    tasks = [Task("a", 1, 1), Task("b", 1, 1), Task("c", 1, 1)]
    with pytest.raises(JobValidationError):
        Job("dup", tasks, [DataTransfer("d", "a", "b"),
                           DataTransfer("d", "b", "c")])


def test_job_unknown_transfer_endpoint():
    with pytest.raises(JobValidationError):
        Job("bad", [Task("a", 1, 1)], [DataTransfer("d", "a", "ghost")])


def test_job_parallel_edges_rejected():
    tasks = [Task("a", 1, 1), Task("b", 1, 1)]
    with pytest.raises(JobValidationError):
        Job("bad", tasks, [DataTransfer("d1", "a", "b"),
                           DataTransfer("d2", "a", "b")])


def test_job_cycle_detection():
    tasks = [Task("a", 1, 1), Task("b", 1, 1)]
    with pytest.raises(JobValidationError):
        Job("cycle", tasks, [DataTransfer("d1", "a", "b"),
                             DataTransfer("d2", "b", "a")])


def test_job_negative_deadline():
    with pytest.raises(JobValidationError):
        Job("bad", [Task("a", 1, 1)], deadline=-1)


def test_structure_queries():
    job = diamond_job()
    assert job.sources() == ["P1"]
    assert job.sinks() == ["P4"]
    assert job.successors("P1") == ["P2", "P3"]
    assert job.predecessors("P4") == ["P2", "P3"]
    assert job.transfer_between("P1", "P2").transfer_id == "D1"
    assert job.transfer_between("P1", "P4") is None
    assert len(job) == 4
    assert "P1" in job and "P9" not in job
    with pytest.raises(KeyError):
        job.task("P9")


def test_topological_order_is_valid_and_deterministic():
    job = diamond_job()
    order = job.topological_order()
    assert order == ["P1", "P2", "P3", "P4"]
    position = {tid: i for i, tid in enumerate(order)}
    for transfer in job.transfers:
        assert position[transfer.src] < position[transfer.dst]


def test_all_paths_diamond():
    job = diamond_job()
    assert job.all_paths() == [["P1", "P2", "P4"], ["P1", "P3", "P4"]]


def test_all_paths_limit():
    job = diamond_job()
    assert len(job.all_paths(limit=1)) == 1


def test_chain_length_includes_transfers():
    job = diamond_job()
    # P1(2) + D1(1) + P2(3) + D3(1) + P4(2) = 9 on the reference node.
    assert job.chain_length(["P1", "P2", "P4"]) == 9
    # Halved performance doubles task time, not transfer time.
    assert job.chain_length(["P1", "P2", "P4"], performance=0.5) == 16


def test_chain_length_rejects_non_edges():
    job = diamond_job()
    with pytest.raises(ValueError):
        job.chain_length(["P1", "P4"])


def test_chain_length_custom_transfer_model():
    job = diamond_job()
    assert job.chain_length(["P1", "P2", "P4"],
                            transfer_time=lambda t: 0) == 7


def test_critical_chains_sorted_descending():
    job = diamond_job()
    chains = job.critical_chains()
    assert chains[0] == (9, ["P1", "P2", "P4"])
    assert chains[1] == (7, ["P1", "P3", "P4"])


def test_minimal_makespan_is_critical_path():
    job = diamond_job()
    assert job.minimal_makespan() == 9


def test_total_volume():
    assert diamond_job().total_volume() == 80


def test_single_task_job():
    job = Job("single", [Task("only", volume=5, best_time=3)], deadline=10)
    assert job.all_paths() == [["only"]]
    assert job.minimal_makespan() == 3
    assert job.sources() == job.sinks() == ["only"]


def test_clone_shares_structure_under_new_identity():
    job = diamond_job()
    other = job.clone("job42", owner="vo")
    assert other.job_id == "job42"
    assert other.owner == "vo"
    assert other.tasks is job.tasks
    assert other.transfers is job.transfers
    assert other.deadline == job.deadline
    # Semantic keys exclude identity, so siblings share them — the
    # property the plan cache's rebind path rides on.
    assert other.structural_hash == job.structural_hash
    assert other.shape_hash == job.shape_hash
    assert other.topological_order() == job.topological_order()


def test_clone_keeps_owner_by_default():
    job = diamond_job()
    assert job.clone("twin").owner == job.owner
