"""Warm-started strategy generation is bit-identical to the cold path.

The warm start seeds each level's DP with the adjacent level's
allocation as an incumbent and prunes dominated partial chains; the
guarantee is that only *work* changes — every returned schedule, cost,
makespan, collision list, and admissibility flag must equal the cold
run's exactly.
"""

import numpy as np
import pytest

from repro.core.strategy import StrategyGenerator, StrategyType
from repro.grid.environment import GridEnvironment
from repro.workload.generator import generate_job, generate_pool
from repro.workload.paper_example import fig2_job, fig2_pool


def outcomes_equal(warm, cold):
    """Field-by-field equality of two SchedulingOutcomes.

    ``evaluations`` is deliberately excluded: performing less work is
    the whole point of the warm start.
    """
    assert warm.job_id == cold.job_id
    assert warm.level == cold.level
    assert warm.admissible == cold.admissible
    assert warm.cost == cold.cost
    assert warm.makespan == cold.makespan
    assert warm.collisions == cold.collisions
    if cold.distribution is None:
        assert warm.distribution is None
    else:
        assert warm.distribution is not None
        assert list(warm.distribution) == list(cold.distribution)


def strategies_equal(warm, cold):
    assert [s.level for s in warm.schedules] == [
        s.level for s in cold.schedules]
    for warm_schedule, cold_schedule in zip(warm.schedules, cold.schedules):
        outcomes_equal(warm_schedule.outcome, cold_schedule.outcome)
    # NOTE: no per-strategy expense assertion here.  Warm runs usually
    # expand fewer states, but a bound-proof memo entry re-expanded
    # under a larger allowance can cost a few extra expansions on tiny
    # instances; the aggregate saving is asserted separately.


def generate_both(pool, job, calendars, stype, release=0):
    warm = StrategyGenerator(pool, warm_start=True).generate(
        job, calendars, stype, release=release)
    cold = StrategyGenerator(pool, warm_start=False).generate(
        job, calendars, stype, release=release)
    return warm, cold


@pytest.mark.parametrize("stype", list(StrategyType))
def test_fig2_warm_equals_cold_on_empty_calendars(stype):
    pool, job = fig2_pool(), fig2_job()
    environment = GridEnvironment(pool)
    warm, cold = generate_both(pool, job, environment.snapshot(), stype)
    strategies_equal(warm, cold)


@pytest.mark.parametrize("stype", list(StrategyType))
@pytest.mark.parametrize("seed", [3, 5, 8])
def test_fig2_warm_equals_cold_under_background_load(stype, seed):
    pool, job = fig2_pool(), fig2_job()
    environment = GridEnvironment(pool)
    environment.apply_background_load(
        np.random.default_rng(seed), 0.4, 120)
    warm, cold = generate_both(pool, job, environment.snapshot(), stype)
    strategies_equal(warm, cold)


@pytest.mark.parametrize("seed", [7, 11, 2009])
def test_random_workloads_warm_equals_cold(seed):
    rng = np.random.default_rng(seed)
    pool = generate_pool(rng)
    environment = GridEnvironment(pool)
    environment.apply_background_load(rng, 0.3, 200)
    calendars = environment.snapshot()
    for index in range(4):
        job = generate_job(rng, index)
        for stype in (StrategyType.S1, StrategyType.S2, StrategyType.MS1):
            warm, cold = generate_both(pool, job, calendars, stype)
            strategies_equal(warm, cold)


def test_warm_start_actually_saves_work_under_load():
    """On a loaded pool the warm start must prune at least some levels'
    expansions (otherwise the optimization is dead code)."""
    rng = np.random.default_rng(2009)
    pool = generate_pool(rng)
    environment = GridEnvironment(pool)
    environment.apply_background_load(rng, 0.5, 300)
    calendars = environment.snapshot()
    saved = 0
    for index in range(3):
        job = generate_job(rng, index)
        warm, cold = generate_both(pool, job, calendars, StrategyType.S1)
        strategies_equal(warm, cold)
        saved += cold.generation_expense - warm.generation_expense
    assert saved > 0
