"""Unit tests for the SchedulingContext session layer.

Covers the LRU primitive (per-entry eviction, recency refresh, the
plan-cache thrash regression), the identity-token registry, weak
per-job cache lifetime, content-version keyed placement caches, the
stats surface, and the Scheduler protocol.
"""

import gc

import pytest

from repro.core.calendar import ReservationCalendar
from repro.core.context import (
    CONTEXT_CACHE_NAMES,
    LruCache,
    Scheduler,
    SchedulingContext,
)
from repro.core.critical_works import CriticalWorksScheduler
from repro.core.job import Job, Task
from repro.core.resources import ProcessorNode, ResourcePool
from repro.core.strategy import StrategyType
from repro.core.transfers import NeutralTransferModel
from repro.grid.data import ReplicationModel
from repro.flow.metascheduler import Metascheduler
from repro.grid.environment import GridEnvironment
from repro.perf import PERF
from repro.workload.paper_example import fig2_job, fig2_pool


# ----------------------------------------------------------------------
# LruCache primitive
# ----------------------------------------------------------------------

def test_lru_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        LruCache("x", 0)


def test_lru_evicts_least_recently_used_entry():
    cache = LruCache("x", 2)
    cache["a"] = 1
    cache["b"] = 2
    cache["c"] = 3  # evicts a
    assert "a" not in cache
    assert cache.get("b") == 2 and cache.get("c") == 3
    assert cache.evictions == 1
    assert len(cache) == 2


def test_lru_get_refreshes_recency():
    cache = LruCache("x", 2)
    cache["a"] = 1
    cache["b"] = 2
    assert cache.get("a") == 1  # a becomes most recent
    cache["c"] = 3              # evicts b, not a
    assert "a" in cache and "b" not in cache


def test_lru_overwrite_does_not_evict():
    cache = LruCache("x", 2)
    cache["a"] = 1
    cache["b"] = 2
    cache["a"] = 10
    assert cache.evictions == 0
    assert cache.get("a") == 10


def test_lru_eviction_mirrored_to_perf_registry():
    cache = LruCache("test.some_cache", 1)
    with PERF.collecting() as registry:
        cache["a"] = 1
        cache["b"] = 2
    assert registry.counters["test.some_cache_evictions"] == 1


def test_lru_clear_drops_entries_without_counting_evictions():
    cache = LruCache("x", 4)
    cache["a"] = 1
    cache.clear()
    assert len(cache) == 0 and cache.evictions == 0


# ----------------------------------------------------------------------
# Plan-cache thrash regression (the wholesale-clear bug)
# ----------------------------------------------------------------------

def test_hot_key_survives_flood_of_unrelated_keys():
    """The old plan cache cleared wholesale at its size limit, so a
    flood of one-shot keys wiped hot entries.  The LRU must keep a
    recently touched key alive through two full floods."""
    cache = LruCache("flow.plan_cache", 4)
    cache["hot"] = "plan-A"
    for key in ("b", "c", "d"):   # fill to capacity
        cache[key] = key
    assert cache.get("hot") == "plan-A"  # touch: hot is most recent
    for key in ("e", "f", "g"):   # flood: evicts b, c, d — never hot
        cache[key] = key
    assert cache.get("hot") == "plan-A"
    assert cache.evictions == 3


def _single_domain_grid():
    pool = ResourcePool([
        ProcessorNode(node_id=1, performance=1.0, domain="alpha"),
        ProcessorNode(node_id=2, performance=0.5, domain="alpha"),
    ])
    return GridEnvironment(pool)


def _simple_job(job_id):
    # Volume varies with the name so differently named jobs are
    # structurally unrelated — the plan cache keys on content, not ids.
    extra = sum(job_id.encode()) % 97
    return Job(job_id,
               [Task("A", volume=20 + extra, best_time=2),
                Task("B", volume=10, best_time=1)],
               [], deadline=40)


def test_metascheduler_hot_plan_survives_flood():
    """End-to-end regression on the real plan cache: planning a flood
    of unrelated jobs must not drop a hot job's cached strategy."""
    context = SchedulingContext(plan_capacity=4)
    scheduler = Metascheduler(_single_domain_grid(), context=context)
    hot = _simple_job("hot")

    plan_a = scheduler.plan_job(hot, StrategyType.S1, 0).strategy
    for name in ("b", "c", "d"):
        scheduler.plan_job(_simple_job(name), StrategyType.S1, 0)
    # Re-plan against unchanged calendars: exact reuse, same object.
    assert scheduler.plan_job(hot, StrategyType.S1, 0).strategy is plan_a
    for name in ("e", "f", "g"):
        scheduler.plan_job(_simple_job(name), StrategyType.S1, 0)
    assert scheduler.plan_job(hot, StrategyType.S1, 0).strategy is plan_a
    assert context.plans.evictions > 0  # the flood did evict — cold keys


def test_plan_cache_misses_after_calendar_drift():
    """A committed booking bumps the domain's epoch slice, so the
    cached plan stops matching and is regenerated, never served stale."""
    context = SchedulingContext()
    scheduler = Metascheduler(_single_domain_grid(), context=context)
    job = _simple_job("j")
    planned = scheduler.plan_job(job, StrategyType.S1, 0)
    scheduler.commit_planned(planned)  # books → epochs drift
    replanned = scheduler.plan_job(job, StrategyType.S1, 0)
    assert replanned.strategy is not planned.strategy


# ----------------------------------------------------------------------
# Identity tokens
# ----------------------------------------------------------------------

def test_tokens_are_stable_and_distinct():
    context = SchedulingContext()
    model_a, model_b = NeutralTransferModel(), NeutralTransferModel()
    assert context.token(model_a) == context.token(model_a)
    assert context.token(model_a) != context.token(model_b)


def test_tokens_are_never_reused_after_death():
    """Tokens are monotonic: even if the allocator recycles a dead
    object's address, the new object gets a fresh token."""
    context = SchedulingContext()
    seen = set()
    for _ in range(50):
        model = NeutralTransferModel()
        token = context.token(model)
        assert token not in seen
        seen.add(token)
        del model
        gc.collect()


def test_token_pruning_drops_dead_entries():
    context = SchedulingContext()
    model = NeutralTransferModel()
    context.token(model)
    del model
    gc.collect()
    context._prune_tokens()
    assert context._tokens == {}


# ----------------------------------------------------------------------
# Per-job caches
# ----------------------------------------------------------------------

def test_job_caches_are_scoped_by_model_identity():
    context = SchedulingContext()
    job = fig2_job()
    neutral, replication = NeutralTransferModel(), ReplicationModel()
    lags_a = context.transfer_lags(job, neutral)
    lags_b = context.transfer_lags(job, replication)
    assert lags_a is not lags_b
    assert context.transfer_lags(job, neutral) is lags_a


def test_job_caches_are_scoped_by_pool_identity():
    context = SchedulingContext()
    job, model = fig2_job(), NeutralTransferModel()
    pool_a, pool_b = fig2_pool(), fig2_pool()
    assert context.rankings(job, model, pool_a) is not \
        context.rankings(job, model, pool_b)


def test_job_caches_shared_across_structural_siblings():
    """Per-structure caches key on content, so a template sibling
    (same tasks/transfers/deadline, different id) shares them."""
    context = SchedulingContext()
    job = fig2_job()
    context.durations(job)[("T", 1, 0.0)] = 7
    sibling = Job("sibling", job.tasks.values(), job.transfers,
                  deadline=job.deadline)
    assert context.durations(sibling)[("T", 1, 0.0)] == 7
    assert len(context._struct_caches) == 1


def test_job_caches_evict_least_recent_structure():
    """The per-structure tier is LRU-bounded, not tied to object
    lifetime: flooding with fresh structures retires the oldest."""
    context = SchedulingContext(struct_capacity=2)
    stale = _simple_job("stale")
    context.durations(stale)[("A", 1, 0.0)] = 3
    for name in ("x", "y"):
        context.durations(_simple_job(name))
    assert context._struct_caches.get(stale.structural_hash) is None
    assert context.durations(stale).get(("A", 1, 0.0)) is None


def test_job_paths_memoized_per_limit():
    context = SchedulingContext()
    job = fig2_job()
    paths = context.job_paths(job)
    assert context.job_paths(job) is paths
    assert sorted(paths) == sorted(job.all_paths())


# ----------------------------------------------------------------------
# Placement caches (content-version keyed)
# ----------------------------------------------------------------------

def test_gap_table_cached_by_content_version():
    context = SchedulingContext()
    calendar = ReservationCalendar()
    calendar.reserve(0, 5, "bg")
    table = context.gap_table(calendar)
    assert context.gap_table(calendar) is table


def test_gap_table_probe_does_not_build():
    context = SchedulingContext()
    calendar = ReservationCalendar()
    assert context.gap_table(calendar, build=False) is None
    context.gap_table(calendar)  # materialize
    assert context.gap_table(calendar, build=False) is not None


def test_mutation_invalidates_gap_table_by_version():
    context = SchedulingContext()
    calendar = ReservationCalendar()
    stale = context.gap_table(calendar)
    calendar.reserve(0, 5, "bg")  # version bump
    assert context.gap_table(calendar, build=False) is None
    fresh = context.gap_table(calendar)
    assert fresh is not stale


def test_stacked_tables_cached_by_version_sequence():
    context = SchedulingContext()
    calendars = [ReservationCalendar() for _ in range(3)]
    for at, calendar in enumerate(calendars):
        calendar.reserve(at, at + 2, "bg")
    tables = [context.gap_table(calendar) for calendar in calendars]
    stacked = context.stack_gap_tables(tables)
    assert context.stack_gap_tables(tables) is stacked
    versions = tuple(table.version for table in tables)
    assert context.cached_stack(versions) is stacked
    assert context.cached_stack((999999,)) is None


# ----------------------------------------------------------------------
# Stats surface
# ----------------------------------------------------------------------

def test_stats_reports_every_context_cache():
    context = SchedulingContext()
    stats = context.stats({})
    for name in CONTEXT_CACHE_NAMES:
        assert name in stats, name
    for name in ("dp.fit_cache", "placement.gap_table",
                 "placement.stack"):
        assert stats[name]["policy"] == "lru"
        assert stats[name]["entries"] == 0
        assert stats[name]["capacity"] >= 1
    assert stats["flow.plan_cache"]["policy"] == "two-tier-lru"
    assert stats["flow.plan_cache"]["skeletons"] == 0
    assert stats["flow.plan_cache"]["reuse_rate"] == 0.0
    assert stats["dp.duration_cache"]["policy"] == "struct-lru"


def test_stats_derives_hit_rates_from_counters():
    context = SchedulingContext()
    stats = context.stats({"dp.fit_cache_hits": 3,
                           "dp.fit_cache_misses": 1})
    assert stats["dp.fit_cache"]["hits"] == 3
    assert stats["dp.fit_cache"]["misses"] == 1
    assert stats["dp.fit_cache"]["hit_rate"] == 0.75


# ----------------------------------------------------------------------
# Scheduler protocol
# ----------------------------------------------------------------------

def test_critical_works_scheduler_satisfies_protocol():
    assert isinstance(CriticalWorksScheduler(fig2_pool()), Scheduler)


def test_baseline_adapters_satisfy_protocol():
    from repro.baselines import (GreedyScheduler, HeftScheduler,
                                 IndependentTasksScheduler)
    assert isinstance(GreedyScheduler(), Scheduler)
    assert isinstance(HeftScheduler(), Scheduler)
    assert isinstance(IndependentTasksScheduler(), Scheduler)


def test_critical_works_schedule_rejects_foreign_pool():
    scheduler = CriticalWorksScheduler(fig2_pool())
    other = fig2_pool()
    calendars = {node.node_id: ReservationCalendar() for node in other}
    with pytest.raises(ValueError):
        scheduler.schedule(fig2_job(), other, calendars)
