"""Unit tests for processor nodes and resource pools."""

import pytest

from repro.core.resources import (
    FIG2_TYPE_PERFORMANCES,
    NodeGroup,
    ProcessorNode,
    ResourcePool,
    classify_performance,
)


def test_classify_performance_paper_groups():
    assert classify_performance(1.0) is NodeGroup.FAST
    assert classify_performance(0.66) is NodeGroup.FAST
    assert classify_performance(0.5) is NodeGroup.MEDIUM
    assert classify_performance(0.34) is NodeGroup.MEDIUM
    assert classify_performance(0.33) is NodeGroup.SLOW
    assert classify_performance(0.1) is NodeGroup.SLOW


def test_classify_performance_range_check():
    with pytest.raises(ValueError):
        classify_performance(0)
    with pytest.raises(ValueError):
        classify_performance(1.5)


def test_node_validation():
    with pytest.raises(ValueError):
        ProcessorNode(node_id=1, performance=0)
    with pytest.raises(ValueError):
        ProcessorNode(node_id=1, performance=0.5, type_index=0)
    with pytest.raises(ValueError):
        ProcessorNode(node_id=1, performance=0.5, price_rate=-1)


def test_node_default_price_follows_performance():
    node = ProcessorNode(node_id=1, performance=0.5)
    assert node.price_rate == 0.5
    custom = ProcessorNode(node_id=2, performance=0.5, price_rate=3.0)
    assert custom.price_rate == 3.0


def test_node_group_property():
    assert ProcessorNode(node_id=1, performance=0.9).group is NodeGroup.FAST
    assert ProcessorNode(node_id=2, performance=0.33).group is NodeGroup.SLOW


def test_node_duration_of():
    node = ProcessorNode(node_id=3, performance=1 / 3)
    assert node.duration_of(2) == 6


def test_pool_lookup_and_membership():
    pool = ResourcePool.fig2_pool()
    assert len(pool) == 4
    assert 1 in pool and 5 not in pool
    assert pool.node(2).performance == 0.5
    with pytest.raises(KeyError):
        pool.node(99)


def test_pool_rejects_duplicate_ids():
    node = ProcessorNode(node_id=1, performance=1.0)
    with pytest.raises(ValueError):
        ResourcePool([node, node])
    pool = ResourcePool([node])
    with pytest.raises(ValueError):
        pool.add(ProcessorNode(node_id=1, performance=0.5))


def test_pool_add():
    pool = ResourcePool()
    pool.add(ProcessorNode(node_id=7, performance=0.7))
    assert pool.node(7).group is NodeGroup.FAST


def test_fig2_pool_types():
    pool = ResourcePool.fig2_pool()
    assert [n.performance for n in pool] == list(FIG2_TYPE_PERFORMANCES)
    assert [n.type_index for n in pool] == [1, 2, 3, 4]


def test_pool_by_group_and_type():
    pool = ResourcePool.fig2_pool()
    assert [n.node_id for n in pool.by_group(NodeGroup.FAST)] == [1]
    assert [n.node_id for n in pool.by_group(NodeGroup.MEDIUM)] == [2]
    assert [n.node_id for n in pool.by_group(NodeGroup.SLOW)] == [3, 4]
    assert [n.node_id for n in pool.by_type(3)] == [3]


def test_pool_domains():
    pool = ResourcePool([
        ProcessorNode(node_id=1, performance=1.0, domain="a"),
        ProcessorNode(node_id=2, performance=0.5, domain="b"),
        ProcessorNode(node_id=3, performance=0.4, domain="a"),
    ])
    assert pool.domains() == ["a", "b"]
    assert [n.node_id for n in pool.by_domain("a")] == [1, 3]


def test_pool_fastest_and_sorting():
    pool = ResourcePool([
        ProcessorNode(node_id=1, performance=0.4),
        ProcessorNode(node_id=2, performance=0.9),
        ProcessorNode(node_id=3, performance=0.9),
    ])
    assert pool.fastest().node_id == 2
    assert [n.node_id for n in pool.sorted_by_performance()] == [2, 3, 1]
    assert [n.node_id for n in
            pool.sorted_by_performance(descending=False)] == [1, 2, 3]


def test_fastest_on_empty_pool():
    with pytest.raises(ValueError):
        ResourcePool().fastest()


def test_from_performances_assigns_type_ranks():
    pool = ResourcePool.from_performances([0.5, 1.0, 0.5, 0.25])
    assert [n.node_id for n in pool] == [1, 2, 3, 4]
    assert [n.type_index for n in pool] == [2, 1, 2, 3]
