"""Unit tests for transfer models and the adapter."""

from repro.core.job import DataTransfer
from repro.core.resources import ProcessorNode
from repro.core.transfers import NeutralTransferModel, transfer_time_fn


def nodes():
    return (ProcessorNode(node_id=1, performance=1.0),
            ProcessorNode(node_id=2, performance=0.5))


def test_neutral_model_free_on_same_node():
    model = NeutralTransferModel()
    a, _ = nodes()
    transfer = DataTransfer("d", "x", "y", base_time=3)
    assert model.time(transfer, a, a) == 0


def test_neutral_model_base_time_across_nodes():
    model = NeutralTransferModel()
    a, b = nodes()
    transfer = DataTransfer("d", "x", "y", base_time=3)
    assert model.time(transfer, a, b) == 3
    assert model.estimate(transfer) == 3


def test_transfer_time_fn_adapter():
    fn = transfer_time_fn(NeutralTransferModel())
    a, b = nodes()
    transfer = DataTransfer("d", "x", "y", base_time=2)
    assert fn(transfer, a, b) == 2
    assert fn(transfer, a, a) == 0
