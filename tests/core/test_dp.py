"""Unit tests for the dynamic-programming chain allocator."""

import itertools

import pytest

from repro.core.calendar import ReservationCalendar
from repro.core.costs import VolumeOverTimeCost
from repro.core.dp import allocate_chain
from repro.core.job import DataTransfer, Job, Task
from repro.core.resources import ProcessorNode, ResourcePool
from repro.core.schedule import Placement


def make_pool(*performances):
    return ResourcePool([
        ProcessorNode(node_id=i + 1, performance=perf)
        for i, perf in enumerate(performances)
    ])


def empty_calendars(pool):
    return {node.node_id: ReservationCalendar() for node in pool}


def chain_job(deadline=20):
    return Job(
        "chain",
        [Task("A", volume=20, best_time=2),
         Task("B", volume=30, best_time=3),
         Task("C", volume=10, best_time=1)],
        [DataTransfer("D1", "A", "B"), DataTransfer("D2", "B", "C")],
        deadline=deadline,
    )


def test_empty_chain_is_trivial():
    job = chain_job()
    pool = make_pool(1.0)
    result = allocate_chain(job, [], pool, empty_calendars(pool), 20)
    assert result.placements == []
    assert result.cost == 0.0


def test_single_task_on_single_node():
    job = chain_job()
    pool = make_pool(1.0)
    result = allocate_chain(job, ["A"], pool, empty_calendars(pool), 20)
    assert result.placements == [Placement("A", 1, 0, 2)]
    assert result.cost == 10  # ceil(20 / 2)


def test_chain_respects_precedence_and_transfers():
    job = chain_job()
    pool = make_pool(1.0, 1.0)
    result = allocate_chain(job, ["A", "B", "C"], pool,
                            empty_calendars(pool), 20)
    placements = {p.task_id: p for p in result.placements}
    for earlier, later in [("A", "B"), ("B", "C")]:
        lag = 0 if (placements[earlier].node_id
                    == placements[later].node_id) else 1
        assert placements[later].start >= placements[earlier].end + lag


def test_deadline_infeasible_returns_none():
    job = chain_job(deadline=20)
    pool = make_pool(1.0)
    # Chain needs at least 2 + 3 + 1 = 6 slots co-located.
    assert allocate_chain(job, ["A", "B", "C"], pool,
                          empty_calendars(pool), 5) is None


def test_prefers_cheaper_slow_node_when_deadline_allows():
    """CF = ceil(V/T): slower nodes yield longer T, hence lower cost."""
    job = Job("j", [Task("A", volume=20, best_time=2)], deadline=20)
    pool = make_pool(1.0, 0.5)
    result = allocate_chain(job, ["A"], pool, empty_calendars(pool), 20)
    assert result.placements[0].node_id == 2  # slow: ceil(20/4)=5 < 10


def test_forced_to_fast_node_by_tight_deadline():
    job = Job("j", [Task("A", volume=20, best_time=2)], deadline=3)
    pool = make_pool(1.0, 0.5)
    result = allocate_chain(job, ["A"], pool, empty_calendars(pool), 3)
    assert result.placements[0].node_id == 1


def test_avoids_busy_windows():
    job = Job("j", [Task("A", volume=20, best_time=2)], deadline=10)
    pool = make_pool(1.0)
    calendars = empty_calendars(pool)
    calendars[1].reserve(0, 4, "background")
    result = allocate_chain(job, ["A"], pool, calendars, 10)
    assert result.placements[0].start == 4


def test_all_nodes_busy_returns_none():
    job = Job("j", [Task("A", volume=20, best_time=2)], deadline=10)
    pool = make_pool(1.0)
    calendars = empty_calendars(pool)
    calendars[1].reserve(0, 10, "background")
    assert allocate_chain(job, ["A"], pool, calendars, 10) is None


def test_fixed_predecessor_imposes_release():
    job = chain_job()
    pool = make_pool(1.0, 1.0)
    fixed = {"A": Placement("A", 1, 0, 2)}
    result = allocate_chain(job, ["B", "C"], pool, empty_calendars(pool), 20,
                            fixed=fixed)
    b = result.placements[0]
    lag = 0 if b.node_id == 1 else 1
    assert b.start >= 2 + lag


def test_fixed_successor_imposes_latest_end():
    job = chain_job()
    pool = make_pool(1.0)
    fixed = {"C": Placement("C", 1, 10, 11)}
    result = allocate_chain(job, ["A", "B"], pool, empty_calendars(pool), 20,
                            fixed=fixed)
    b = [p for p in result.placements if p.task_id == "B"][0]
    # B on node 1 (same as C): must end by C.start.
    assert b.end <= 10
    # And B may not overlap C on the node? The DP does not book, but the
    # caller checks; here node 1 is free before 10 so no clash.


def test_release_shifts_everything():
    job = Job("j", [Task("A", volume=20, best_time=2)], deadline=100)
    pool = make_pool(1.0)
    result = allocate_chain(job, ["A"], pool, empty_calendars(pool), 100,
                            release=50)
    assert result.placements[0].start >= 50


def test_estimation_level_lengthens_reservations():
    job = Job("j", [Task("A", volume=20, best_time=2, worst_time=6)],
              deadline=20)
    pool = make_pool(1.0)
    best = allocate_chain(job, ["A"], pool, empty_calendars(pool), 20,
                          level=0.0)
    worst = allocate_chain(job, ["A"], pool, empty_calendars(pool), 20,
                           level=1.0)
    assert best.placements[0].duration == 2
    assert worst.placements[0].duration == 6


def test_allowed_nodes_whitelist():
    job = Job("j", [Task("A", volume=20, best_time=2)], deadline=20)
    pool = make_pool(1.0, 0.5)
    result = allocate_chain(job, ["A"], pool, empty_calendars(pool), 20,
                            allowed_nodes={1})
    assert result.placements[0].node_id == 1
    assert allocate_chain(job, ["A"], pool, empty_calendars(pool), 20,
                          allowed_nodes=set()) is None


def test_rejects_non_chain_input():
    job = chain_job()
    pool = make_pool(1.0)
    with pytest.raises(ValueError):
        allocate_chain(job, ["A", "C"], pool, empty_calendars(pool), 20)


def test_rejects_already_fixed_chain_task():
    job = chain_job()
    pool = make_pool(1.0)
    with pytest.raises(ValueError):
        allocate_chain(job, ["A", "B"], pool, empty_calendars(pool), 20,
                       fixed={"A": Placement("A", 1, 0, 2)})


def brute_force_best(job, chain, pool, deadline):
    """Exhaustive minimum cost over node assignments with greedy timing."""
    model = VolumeOverTimeCost()
    best_cost = None
    for nodes in itertools.product(list(pool), repeat=len(chain)):
        ready = 0
        cost = 0.0
        feasible = True
        prev_node = None
        for task_id, node in zip(chain, nodes):
            lag = 0
            if prev_node is not None and prev_node.node_id != node.node_id:
                lag = job.transfer_between(
                    chain[chain.index(task_id) - 1], task_id).base_time
            start = ready + lag
            duration = job.task(task_id).duration_on(node.performance)
            end = start + duration
            if end > deadline:
                feasible = False
                break
            cost += model.task_cost(
                job.task(task_id), Placement(task_id, node.node_id,
                                             start, end), node)
            ready = end
            prev_node = node
        if feasible and (best_cost is None or cost < best_cost):
            best_cost = cost
    return best_cost


@pytest.mark.parametrize("deadline", [8, 10, 14, 20, 30])
def test_dp_matches_brute_force_on_empty_calendars(deadline):
    job = chain_job(deadline=deadline)
    pool = make_pool(1.0, 0.5, 1 / 3)
    chain = ["A", "B", "C"]
    result = allocate_chain(job, chain, pool, empty_calendars(pool), deadline)
    expected = brute_force_best(job, chain, pool, deadline)
    if expected is None:
        assert result is None
    else:
        assert result.cost == expected


def test_evaluations_counter_positive():
    job = chain_job()
    pool = make_pool(1.0, 0.5)
    result = allocate_chain(job, ["A", "B", "C"], pool,
                            empty_calendars(pool), 20)
    assert result.evaluations > 0


def test_context_caches_do_not_change_results():
    """The context's version-keyed fit cache and transfer-lag memo are
    pure memoization: results must equal the cacheless run's exactly."""
    from repro.core.context import SchedulingContext

    job = chain_job()
    pool = make_pool(1.0, 0.5, 1 / 3)
    chain = ["A", "B", "C"]
    calendars = empty_calendars(pool)
    calendars[1].reserve(0, 3, tag="bg")
    calendars[2].reserve(4, 6, tag="bg")

    plain = allocate_chain(job, chain, pool, calendars, 25)
    context = SchedulingContext()
    cached = allocate_chain(job, chain, pool, calendars, 25,
                            context=context)
    assert plain is not None and cached is not None
    assert cached.placements == plain.placements
    assert cached.cost == plain.cost
    assert cached.evaluations == plain.evaluations
    assert len(context.fit_cache)  # the run actually populated it

    # A second run through the same context reuses entries and agrees.
    again = allocate_chain(job, chain, pool, calendars, 25,
                           context=context)
    assert again.placements == plain.placements
    assert again.cost == plain.cost


def test_stale_fit_cache_keys_are_ignored_after_mutation():
    """Calendar mutations bump versions, so entries from the old state
    can never be read back — the warm context must track fresh state."""
    from repro.core.context import SchedulingContext

    job = chain_job()
    pool = make_pool(1.0, 0.5)
    chain = ["A", "B", "C"]
    calendars = empty_calendars(pool)
    context = SchedulingContext()
    allocate_chain(job, chain, pool, calendars, 25, context=context)

    calendars[1].reserve(0, 4, tag="bg")
    fresh = allocate_chain(job, chain, pool, calendars, 25,
                           context=context)
    uncached = allocate_chain(job, chain, pool, calendars, 25)
    assert (fresh is None) == (uncached is None)
    if uncached is not None:
        assert fresh.placements == uncached.placements
        assert fresh.cost == uncached.cost


def test_hint_warm_start_is_bit_identical():
    """A warm hint may only reduce work; the allocation itself must be
    exactly the cold one's, even when the hint is wrong or stale."""
    job = chain_job()
    pool = make_pool(1.0, 0.5, 1 / 3)
    chain = ["A", "B", "C"]
    calendars = empty_calendars(pool)
    calendars[2].reserve(0, 5, tag="bg")
    cold = allocate_chain(job, chain, pool, calendars, 25)
    assert cold is not None

    good_hint = {p.task_id: p.node_id for p in cold.placements}
    bad_hint = {"A": 2, "B": 2, "C": 2}
    partial_hint = {"A": 1}
    for hint in (good_hint, bad_hint, partial_hint, {}):
        warm = allocate_chain(job, chain, pool, calendars, 25, hint=hint)
        assert warm is not None
        assert warm.placements == cold.placements
        assert warm.cost == cold.cost


def test_hint_on_infeasible_instance_still_returns_none():
    job = chain_job(deadline=3)
    pool = make_pool(0.33)
    chain = ["A", "B", "C"]
    hint = {"A": 1, "B": 1, "C": 1}
    assert allocate_chain(job, chain, pool, empty_calendars(pool), 3,
                          hint=hint) is None
