"""A shared SchedulingContext never changes results, only speed.

Every context cache is exact — pure value keys or calendar content
versions — so schedules built through a warm, long-lived context must
be bit-identical to schedules built cold.  These tests run the same
workloads twice (one context shared across everything vs. a fresh
context per call) and compare outcomes field by field.
"""

import numpy as np
import pytest

from repro.core.calendar import ReservationCalendar
from repro.core.context import SchedulingContext
from repro.core.critical_works import CriticalWorksScheduler
from repro.core.strategy import StrategyGenerator, StrategyType
from repro.workload.generator import generate_job, generate_pool
from repro.workload.paper_example import fig2_job, fig2_pool


def outcomes_equal(warm, cold):
    assert warm.job_id == cold.job_id
    assert warm.level == cold.level
    assert warm.admissible == cold.admissible
    assert warm.cost == cold.cost
    assert warm.makespan == cold.makespan
    assert warm.collisions == cold.collisions
    if cold.distribution is None:
        assert warm.distribution is None
    else:
        assert warm.distribution is not None
        assert list(warm.distribution) == list(cold.distribution)


def strategies_equal(warm, cold):
    assert [s.level for s in warm.schedules] == \
        [s.level for s in cold.schedules]
    for warm_schedule, cold_schedule in zip(warm.schedules, cold.schedules):
        outcomes_equal(warm_schedule.outcome, cold_schedule.outcome)


def empty_calendars(pool):
    return {node.node_id: ReservationCalendar() for node in pool}


def test_shared_context_matches_cold_across_levels():
    """One context across every relative-load level of fig2 vs. a
    fresh scheduler (fresh context) per level."""
    pool, job = fig2_pool(), fig2_job()
    shared = CriticalWorksScheduler(pool, context=SchedulingContext())
    calendars = empty_calendars(pool)
    for level in (0.0, 0.25, 0.5, 0.75, 1.0):
        warm = shared.build_schedule(job, calendars, level=level)
        cold = CriticalWorksScheduler(pool).build_schedule(
            job, calendars, level=level)
        outcomes_equal(warm, cold)


def test_repeated_build_through_warm_context_is_stable():
    """The second build answers mostly from caches; same outcome."""
    pool, job = fig2_pool(), fig2_job()
    scheduler = CriticalWorksScheduler(pool)
    calendars = empty_calendars(pool)
    first = scheduler.build_schedule(job, calendars)
    second = scheduler.build_schedule(job, calendars)
    outcomes_equal(second, first)


@pytest.mark.parametrize("stype", list(StrategyType))
def test_shared_context_across_families_and_jobs(stype):
    """One context shared across a seeded batch and all families vs. a
    fresh generator per (job, family)."""
    rng = np.random.default_rng(2009)
    pool = generate_pool(rng)
    jobs = [generate_job(rng, index) for index in range(4)]
    calendars = empty_calendars(pool)
    shared = StrategyGenerator(pool, context=SchedulingContext())
    for job in jobs:
        warm = shared.generate(job, calendars, stype)
        cold = StrategyGenerator(pool).generate(job, calendars, stype)
        strategies_equal(warm, cold)


def test_shared_context_with_background_load():
    """Background reservations exercise phase B (working calendars);
    the shared context must stay exact through collisions."""
    pool, job = fig2_pool(), fig2_job()
    calendars = empty_calendars(pool)
    for at, calendar in enumerate(calendars.values()):
        calendar.reserve(2 * at, 2 * at + 3, "background")
    shared = CriticalWorksScheduler(pool, context=SchedulingContext())
    for level in (0.0, 0.5, 1.0):
        warm = shared.build_schedule(job, calendars, level=level)
        cold = CriticalWorksScheduler(pool).build_schedule(
            job, calendars, level=level)
        outcomes_equal(warm, cold)
