"""Regression tests for the critical-works descendant-release repair.

Before the repair existed, the first critical work's sink placement
pinned every later chain: a fork-join on a two-node pool was infeasible
at level 0 even though valid schedules existed (and, absurdly, feasible
at level 1 where longer durations happened to leave room).
"""

from repro.core.calendar import ReservationCalendar
from repro.core.critical_works import CriticalWorksScheduler
from repro.core.resources import ProcessorNode, ResourcePool
from repro.workload.shapes import fork_join_job, intree_job


def two_node_pool():
    return ResourcePool([
        ProcessorNode(node_id=1, performance=1.0),
        ProcessorNode(node_id=2, performance=0.5),
    ])


def empty_calendars(pool):
    return {node.node_id: ReservationCalendar() for node in pool}


def test_fork_join_feasible_at_every_level():
    """The historical failure mode: level 0 infeasible, level 1 fine."""
    pool = two_node_pool()
    scheduler = CriticalWorksScheduler(pool)
    job = fork_join_job()  # width 3 on 2 nodes: sink must be repaired
    for level in (0.0, 1 / 3, 2 / 3, 1.0):
        outcome = scheduler.build_schedule(job, empty_calendars(pool),
                                           level=level)
        assert outcome.admissible, f"level {level} regressed"


def test_intree_feasible_after_repair():
    pool = two_node_pool()
    outcome = CriticalWorksScheduler(pool).build_schedule(
        intree_job(depth=2), empty_calendars(pool))
    assert outcome.admissible


def test_repair_never_leaves_partial_distributions():
    """Whatever happens, an admissible outcome places every task and an
    inadmissible one places none."""
    pool = two_node_pool()
    scheduler = CriticalWorksScheduler(pool)
    for width in (2, 3, 4, 5):
        for deadline in (8, 12, 16, 24, 40):
            job = fork_join_job(width=width, deadline=deadline)
            outcome = scheduler.build_schedule(job, empty_calendars(pool))
            if outcome.admissible:
                assert len(outcome.distribution) == len(job)
                assert outcome.distribution.internal_overlaps() == []
            else:
                assert outcome.distribution is None


def test_repair_does_not_duplicate_collision_records():
    pool = two_node_pool()
    job = fork_join_job(width=4)
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars(pool))
    records = [(c.task_id, c.holder, c.node_id, c.time)
               for c in outcome.collisions]
    assert len(records) == len(set(records))
