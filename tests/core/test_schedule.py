"""Unit tests for placements, distributions, and schedule validation."""

import pytest

from repro.core.job import DataTransfer, Job, Task
from repro.core.resources import ProcessorNode, ResourcePool
from repro.core.schedule import (
    Distribution,
    Placement,
    check_distribution,
)


def chain_job():
    """P1 -> P2 chain with a unit transfer, deadline 20."""
    return Job(
        "chain",
        [Task("P1", volume=20, best_time=2),
         Task("P2", volume=30, best_time=3)],
        [DataTransfer("D1", "P1", "P2")],
        deadline=20,
    )


def two_node_pool():
    return ResourcePool([
        ProcessorNode(node_id=1, performance=1.0),
        ProcessorNode(node_id=2, performance=0.5),
    ])


def test_placement_validation():
    with pytest.raises(ValueError):
        Placement("t", 1, -1, 3)
    with pytest.raises(ValueError):
        Placement("t", 1, 3, 3)
    assert Placement("t", 1, 2, 6).duration == 4


def test_placement_overlap_requires_same_node():
    a = Placement("a", 1, 0, 5)
    b = Placement("b", 1, 4, 8)
    c = Placement("c", 2, 4, 8)
    d = Placement("d", 1, 5, 8)
    assert a.overlaps(b)
    assert not a.overlaps(c)
    assert not a.overlaps(d)


def test_distribution_basic_accessors():
    dist = Distribution("chain", [
        Placement("P1", 1, 0, 2),
        Placement("P2", 1, 3, 6),
    ])
    assert len(dist) == 2
    assert "P1" in dist and "P9" not in dist
    assert dist.placement("P2").start == 3
    assert dist.makespan == 6
    assert dist.start_time == 0
    assert dist.node_ids() == {1}
    with pytest.raises(KeyError):
        dist.placement("P9")


def test_distribution_duplicate_placement_rejected():
    with pytest.raises(ValueError):
        Distribution("j", [Placement("a", 1, 0, 1), Placement("a", 2, 1, 2)])


def test_distribution_by_node_sorted():
    dist = Distribution("j", [
        Placement("b", 1, 5, 8),
        Placement("a", 1, 0, 2),
        Placement("c", 2, 1, 4),
    ])
    groups = dist.by_node()
    assert [p.task_id for p in groups[1]] == ["a", "b"]
    assert [p.task_id for p in groups[2]] == ["c"]


def test_distribution_admissibility():
    dist = Distribution("j", [Placement("a", 1, 0, 10)])
    assert dist.is_admissible(10)
    assert not dist.is_admissible(9)


def test_distribution_internal_overlaps():
    dist = Distribution("j", [
        Placement("a", 1, 0, 5),
        Placement("b", 1, 4, 8),
    ])
    clashes = dist.internal_overlaps()
    assert len(clashes) == 1
    assert clashes[0][0].task_id == "a"
    assert clashes[0][1].task_id == "b"


def test_distribution_replace():
    dist = Distribution("j", [Placement("a", 1, 0, 5)])
    moved = dist.replace(Placement("a", 2, 3, 8))
    assert moved.placement("a").node_id == 2
    assert dist.placement("a").node_id == 1  # original untouched
    with pytest.raises(KeyError):
        dist.replace(Placement("ghost", 1, 0, 1))


def test_check_distribution_accepts_valid_schedule():
    job = chain_job()
    pool = two_node_pool()
    dist = Distribution("chain", [
        Placement("P1", 1, 0, 2),
        Placement("P2", 1, 3, 6),
    ])
    assert check_distribution(job, dist, pool) == []


def test_check_distribution_colocated_tasks_skip_transfer():
    job = chain_job()
    pool = two_node_pool()
    dist = Distribution("chain", [
        Placement("P1", 1, 0, 2),
        Placement("P2", 1, 2, 5),  # back-to-back is fine on one node
    ])
    assert check_distribution(job, dist, pool) == []


def test_check_distribution_flags_missing_task():
    job = chain_job()
    dist = Distribution("chain", [Placement("P1", 1, 0, 2)])
    kinds = {v.kind for v in check_distribution(job, dist, two_node_pool())}
    assert "missing" in kinds


def test_check_distribution_flags_unknown_task_and_node():
    job = chain_job()
    dist = Distribution("chain", [
        Placement("P1", 1, 0, 2),
        Placement("P2", 1, 3, 6),
        Placement("P9", 1, 0, 1),
    ])
    kinds = {v.kind for v in check_distribution(job, dist, two_node_pool())}
    assert "unknown-task" in kinds

    dist = Distribution("chain", [
        Placement("P1", 99, 0, 2),
        Placement("P2", 1, 3, 6),
    ])
    kinds = {v.kind for v in check_distribution(job, dist, two_node_pool())}
    assert "unknown-node" in kinds


def test_check_distribution_flags_short_reservation():
    job = chain_job()
    dist = Distribution("chain", [
        Placement("P1", 2, 0, 2),   # needs 4 slots on the half-speed node
        Placement("P2", 1, 3, 6),
    ])
    kinds = {v.kind for v in check_distribution(job, dist, two_node_pool())}
    assert "too-short" in kinds


def test_check_distribution_flags_precedence_violation():
    job = chain_job()
    dist = Distribution("chain", [
        Placement("P1", 1, 0, 2),
        Placement("P2", 2, 2, 8),  # cross-node needs 1 slot of transfer
    ])
    kinds = {v.kind for v in check_distribution(job, dist, two_node_pool())}
    assert "precedence" in kinds


def test_check_distribution_flags_deadline():
    job = chain_job()
    dist = Distribution("chain", [
        Placement("P1", 1, 0, 2),
        Placement("P2", 1, 18, 21),
    ])
    kinds = {v.kind for v in check_distribution(job, dist, two_node_pool())}
    assert "deadline" in kinds


def test_check_distribution_flags_overlap():
    job = chain_job()
    # Ignore precedence by placing P2 before P1 ends on the same node.
    dist = Distribution("chain", [
        Placement("P1", 1, 0, 4),
        Placement("P2", 1, 1, 6),
    ])
    kinds = {v.kind for v in check_distribution(job, dist, two_node_pool())}
    assert "overlap" in kinds


def test_check_distribution_estimation_level():
    job = Job("j", [Task("P1", volume=1, best_time=2, worst_time=6)],
              deadline=10)
    pool = two_node_pool()
    dist = Distribution("j", [Placement("P1", 1, 0, 2)])
    assert check_distribution(job, dist, pool, estimation_level=0.0) == []
    kinds = {v.kind for v in
             check_distribution(job, dist, pool, estimation_level=1.0)}
    assert "too-short" in kinds
