"""Unit tests for collision records and statistics."""

import pytest

from repro.core.collisions import Collision, CollisionStats
from repro.core.resources import NodeGroup


def make_collision(group, node_id=1, task="T", holder="H", time=0):
    return Collision(job_id="j", task_id=task, holder=holder,
                     node_id=node_id, node_group=group, time=time)


def test_stats_of_empty():
    stats = CollisionStats.of([])
    assert stats.total == 0
    assert stats.fraction(NodeGroup.FAST) == 0.0
    assert stats.fast_vs_slow() == (0.0, 0.0)


def test_stats_counts_by_group():
    collisions = [
        make_collision(NodeGroup.FAST),
        make_collision(NodeGroup.FAST),
        make_collision(NodeGroup.MEDIUM),
        make_collision(NodeGroup.SLOW),
    ]
    stats = CollisionStats.of(collisions)
    assert stats.total == 4
    assert stats.by_group[NodeGroup.FAST] == 2
    assert stats.by_group[NodeGroup.MEDIUM] == 1
    assert stats.by_group[NodeGroup.SLOW] == 1


def test_fraction_and_fast_vs_slow():
    collisions = [make_collision(NodeGroup.FAST)] * 3 + [
        make_collision(NodeGroup.SLOW)]
    stats = CollisionStats.of(collisions)
    assert stats.fraction(NodeGroup.FAST) == 0.75
    fast, slow = stats.fast_vs_slow()
    assert fast == 0.75
    assert slow == 0.25


def test_fast_vs_slow_pools_medium_with_slow():
    stats = CollisionStats.of([
        make_collision(NodeGroup.MEDIUM),
        make_collision(NodeGroup.SLOW),
    ])
    fast, slow = stats.fast_vs_slow()
    assert fast == 0.0
    assert slow == 1.0


def test_merge():
    a = CollisionStats.of([make_collision(NodeGroup.FAST)])
    b = CollisionStats.of([make_collision(NodeGroup.SLOW),
                           make_collision(NodeGroup.FAST)])
    merged = a.merge(b)
    assert merged.total == 3
    assert merged.by_group[NodeGroup.FAST] == 2
    # Inputs untouched.
    assert a.total == 1 and b.total == 2


def test_collision_str_mentions_parties():
    collision = make_collision(NodeGroup.FAST, node_id=7, task="P5",
                               holder="P4", time=10)
    text = str(collision)
    assert "P5" in text and "P4" in text and "7" in text
