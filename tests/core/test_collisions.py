"""Unit tests for collision records and statistics.

The edge cases at the bottom (zero-length intervals, touching windows,
tasks shared between critical works) define the ground truth the
schedule verifier in :mod:`repro.analysis.verify` is built on.
"""

import pytest

from repro.core.calendar import Reservation, ReservationCalendar
from repro.core.collisions import Collision, CollisionStats
from repro.core.critical_works import CriticalWorksScheduler
from repro.core.resources import NodeGroup
from repro.core.schedule import Placement
from repro.workload.paper_example import fig2_job, fig2_pool


def make_collision(group, node_id=1, task="T", holder="H", time=0):
    return Collision(job_id="j", task_id=task, holder=holder,
                     node_id=node_id, node_group=group, time=time)


def test_stats_of_empty():
    stats = CollisionStats.of([])
    assert stats.total == 0
    assert stats.fraction(NodeGroup.FAST) == 0.0
    assert stats.fast_vs_slow() == (0.0, 0.0)


def test_stats_counts_by_group():
    collisions = [
        make_collision(NodeGroup.FAST),
        make_collision(NodeGroup.FAST),
        make_collision(NodeGroup.MEDIUM),
        make_collision(NodeGroup.SLOW),
    ]
    stats = CollisionStats.of(collisions)
    assert stats.total == 4
    assert stats.by_group[NodeGroup.FAST] == 2
    assert stats.by_group[NodeGroup.MEDIUM] == 1
    assert stats.by_group[NodeGroup.SLOW] == 1


def test_fraction_and_fast_vs_slow():
    collisions = [make_collision(NodeGroup.FAST)] * 3 + [
        make_collision(NodeGroup.SLOW)]
    stats = CollisionStats.of(collisions)
    assert stats.fraction(NodeGroup.FAST) == 0.75
    fast, slow = stats.fast_vs_slow()
    assert fast == 0.75
    assert slow == 0.25


def test_fast_vs_slow_pools_medium_with_slow():
    stats = CollisionStats.of([
        make_collision(NodeGroup.MEDIUM),
        make_collision(NodeGroup.SLOW),
    ])
    fast, slow = stats.fast_vs_slow()
    assert fast == 0.0
    assert slow == 1.0


def test_merge():
    a = CollisionStats.of([make_collision(NodeGroup.FAST)])
    b = CollisionStats.of([make_collision(NodeGroup.SLOW),
                           make_collision(NodeGroup.FAST)])
    merged = a.merge(b)
    assert merged.total == 3
    assert merged.by_group[NodeGroup.FAST] == 2
    # Inputs untouched.
    assert a.total == 1 and b.total == 2


def test_collision_str_mentions_parties():
    collision = make_collision(NodeGroup.FAST, node_id=7, task="P5",
                               holder="P4", time=10)
    text = str(collision)
    assert "P5" in text and "P4" in text and "7" in text


# ----------------------------------------------------------------------
# Edge cases grounding the schedule verifier (repro.analysis.verify)
# ----------------------------------------------------------------------

def test_zero_length_intervals_are_rejected_everywhere():
    # A zero-length occupation can neither hold a node nor collide.
    with pytest.raises(ValueError):
        Placement("T", 1, 5, 5)
    with pytest.raises(ValueError):
        Placement("T", 1, 5, 4)
    with pytest.raises(ValueError):
        Reservation(5, 5)
    with pytest.raises(ValueError):
        ReservationCalendar().conflicts(5, 5)


def test_touching_windows_do_not_overlap():
    first = Placement("A", 1, 0, 5)
    second = Placement("B", 1, 5, 9)
    assert not first.overlaps(second)
    assert not second.overlaps(first)
    # Same rule on the calendar: [0,5) blocks neither [5,9) nor a
    # conflicts() query that merely touches it.
    calendar = ReservationCalendar([Reservation(0, 5, tag="A")])
    assert calendar.conflicts(5, 9) == []
    calendar.reserve(5, 9, tag="B")
    assert len(calendar) == 2


def test_touching_on_different_nodes_never_interacts():
    first = Placement("A", 1, 0, 5)
    second = Placement("B", 2, 3, 6)
    assert not first.overlaps(second)


def test_identical_collision_records_compare_equal():
    # The scheduler dedups repair-restart replays with `not in`; frozen
    # dataclass equality is what makes that correct.
    one = make_collision(NodeGroup.FAST, node_id=3, task="P5",
                         holder="P4", time=7)
    two = make_collision(NodeGroup.FAST, node_id=3, task="P5",
                         holder="P4", time=7)
    assert one == two
    assert one in [two]
    # Any differing field is a distinct contention event.
    assert one != make_collision(NodeGroup.FAST, node_id=3, task="P5",
                                 holder="P4", time=8)


def test_stats_count_duplicate_records_per_event():
    record = make_collision(NodeGroup.SLOW)
    stats = CollisionStats.of([record, record])
    assert stats.total == 2


def test_task_in_two_critical_works_is_placed_once_and_deduped():
    # In the Fig. 2 job, P4 and P5 each lie on two of the four critical
    # works (P1-P2-P4-P6, P1-P3-P4-P6, P1-P2-P5-P6, P1-P3-P5-P6).  The
    # method must place each exactly once, and record each contention
    # event at most once despite revisiting the shared tasks.
    job, pool = fig2_job(), fig2_pool()
    scheduler = CriticalWorksScheduler(pool)
    works = [chain for _, chain in scheduler.critical_works(job)]
    assert sum(1 for chain in works if "P4" in chain) == 2
    assert sum(1 for chain in works if "P5" in chain) == 2

    outcome = scheduler.build_schedule(
        job, {node.node_id: ReservationCalendar() for node in pool})
    assert outcome.distribution is not None
    assert len(outcome.distribution) == len(job.tasks)
    assert len(set(outcome.collisions)) == len(outcome.collisions)
