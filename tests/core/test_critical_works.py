"""Unit tests for the critical works method."""

import pytest

from repro.core.calendar import ReservationCalendar
from repro.core.critical_works import (
    CriticalWorksScheduler,
    _unassigned_segments,
)
from repro.core.job import DataTransfer, Job, Task
from repro.core.resources import NodeGroup, ProcessorNode, ResourcePool
from repro.core.schedule import Placement, check_distribution
from repro.core.transfers import NeutralTransferModel, transfer_time_fn
from repro.workload.paper_example import fig2_job, fig2_pool


def empty_calendars(pool):
    return {node.node_id: ReservationCalendar() for node in pool}


def test_critical_works_ranking_matches_paper():
    """Section 3: four critical works of 12, 11, 10, 9 slots on type 1."""
    scheduler = CriticalWorksScheduler(fig2_pool())
    works = scheduler.critical_works(fig2_job())
    assert [length for length, _ in works] == [12, 11, 10, 9]
    assert works[0][1] == ["P1", "P2", "P4", "P6"]
    assert works[1][1] == ["P1", "P2", "P5", "P6"]
    assert works[2][1] == ["P1", "P3", "P4", "P6"]
    assert works[3][1] == ["P1", "P3", "P5", "P6"]


def test_fig2_schedule_is_valid_and_admissible():
    job = fig2_job()
    pool = fig2_pool()
    scheduler = CriticalWorksScheduler(pool)
    outcome = scheduler.build_schedule(job, empty_calendars(pool))
    assert outcome.admissible
    assert outcome.distribution is not None
    assert len(outcome.distribution) == len(job)
    violations = check_distribution(
        job, outcome.distribution, pool,
        transfer_time_fn(NeutralTransferModel()))
    assert violations == []
    assert outcome.makespan <= job.deadline
    assert outcome.cost > 0


def test_fig2_collision_between_p4_and_p5():
    """The paper's Fig. 2 collision: P4 and P5 competing for one node."""
    job = fig2_job()
    pool = fig2_pool()
    scheduler = CriticalWorksScheduler(pool)
    outcome = scheduler.build_schedule(job, empty_calendars(pool))
    pairs = {(c.task_id, c.holder) for c in outcome.collisions}
    assert ("P5", "P4") in pairs or ("P4", "P5") in pairs


def test_calendars_are_not_mutated():
    job = fig2_job()
    pool = fig2_pool()
    calendars = empty_calendars(pool)
    CriticalWorksScheduler(pool).build_schedule(job, calendars)
    assert all(len(calendar) == 0 for calendar in calendars.values())


def test_inadmissible_when_deadline_too_tight():
    job = fig2_job(deadline=5)  # critical work needs 12 slots minimum
    pool = fig2_pool()
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars(pool))
    assert not outcome.admissible
    assert outcome.distribution is None


def test_background_load_can_break_admissibility():
    job = fig2_job(deadline=13)
    pool = fig2_pool()
    calendars = empty_calendars(pool)
    # Saturate every node for the whole window.
    for calendar in calendars.values():
        calendar.reserve(0, 13, "background")
    outcome = CriticalWorksScheduler(pool).build_schedule(job, calendars)
    assert not outcome.admissible


def test_background_load_shifts_placements():
    job = Job("j", [Task("A", volume=10, best_time=2)], deadline=10)
    pool = ResourcePool([ProcessorNode(node_id=1, performance=1.0)])
    calendars = empty_calendars(pool)
    calendars[1].reserve(0, 3, "background")
    outcome = CriticalWorksScheduler(pool).build_schedule(job, calendars)
    assert outcome.admissible
    assert outcome.distribution.placement("A").start == 3


def test_zero_deadline_job_uses_generous_horizon():
    job = Job("j", [Task("A", volume=10, best_time=2)], deadline=0)
    pool = ResourcePool([ProcessorNode(node_id=1, performance=1.0)])
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars(pool))
    assert outcome.admissible
    assert outcome.distribution is not None


def test_collision_resolution_respects_structure():
    """After collision resolution the schedule must still be valid."""
    job = fig2_job()
    pool = fig2_pool()
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars(pool))
    assert outcome.collisions  # the fig2 job does collide
    assert outcome.distribution.internal_overlaps() == []


def test_collision_records_node_group():
    job = fig2_job()
    pool = fig2_pool()
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars(pool))
    for collision in outcome.collisions:
        node = pool.node(collision.node_id)
        assert collision.node_group is node.group


def test_evaluations_accumulate_over_chains():
    job = fig2_job()
    pool = fig2_pool()
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars(pool))
    assert outcome.evaluations >= len(job)


def test_level_changes_reservation_lengths():
    tasks = [Task("A", volume=10, best_time=2, worst_time=6)]
    job = Job("j", tasks, deadline=20)
    pool = ResourcePool([ProcessorNode(node_id=1, performance=1.0)])
    scheduler = CriticalWorksScheduler(pool)
    best = scheduler.build_schedule(job, empty_calendars(pool), level=0.0)
    worst = scheduler.build_schedule(job, empty_calendars(pool), level=1.0)
    assert best.distribution.placement("A").duration == 2
    assert worst.distribution.placement("A").duration == 6


def test_release_offsets_schedule_and_deadline():
    job = Job("j", [Task("A", volume=10, best_time=2)], deadline=10)
    pool = ResourcePool([ProcessorNode(node_id=1, performance=1.0)])
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars(pool), release=100)
    placement = outcome.distribution.placement("A")
    assert placement.start >= 100
    assert placement.end <= 110
    assert outcome.admissible


def test_unassigned_segments_helper():
    placed = {"B": Placement("B", 1, 0, 1), "D": Placement("D", 1, 2, 3)}
    assert _unassigned_segments(["A", "B", "C", "D", "E"], placed) == [
        ["A"], ["C"], ["E"]]
    assert _unassigned_segments(["B", "D"], placed) == []
    assert _unassigned_segments(["A", "C"], {}) == [["A", "C"]]


def test_parallel_tasks_do_not_overlap_on_one_node():
    """Two independent tasks forced onto one node must serialize."""
    job = Job(
        "par",
        [Task("A", volume=10, best_time=3), Task("B", volume=10, best_time=3)],
        deadline=10,
    )
    pool = ResourcePool([ProcessorNode(node_id=1, performance=1.0)])
    outcome = CriticalWorksScheduler(pool).build_schedule(
        job, empty_calendars(pool))
    assert outcome.admissible
    assert outcome.distribution.internal_overlaps() == []
    # Serializing two independent tasks on one node is a collision.
    assert len(outcome.collisions) == 1
