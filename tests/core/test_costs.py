"""Unit tests for the CF cost function and cost models."""

import pytest

from repro.core.costs import (
    PricedTimeCost,
    VolumeOverTimeCost,
    cheapest_possible_cost,
    distribution_cost,
    relative_cost,
)
from repro.core.job import DataTransfer, Job, Task
from repro.core.resources import ProcessorNode, ResourcePool
from repro.core.schedule import Distribution, Placement


def fig2_like_job():
    return Job(
        "j",
        [Task("P1", volume=20, best_time=2),
         Task("P2", volume=30, best_time=3)],
        [DataTransfer("D1", "P1", "P2")],
        deadline=20,
    )


def pool():
    return ResourcePool([
        ProcessorNode(node_id=1, performance=1.0),
        ProcessorNode(node_id=2, performance=0.5),
    ])


def test_volume_over_time_is_ceil_of_quotient():
    model = VolumeOverTimeCost()
    task = Task("t", volume=10, best_time=1)
    node = ProcessorNode(node_id=1, performance=1.0)
    assert model.task_cost(task, Placement("t", 1, 0, 3), node) == 4
    assert model.task_cost(task, Placement("t", 1, 0, 5), node) == 2


def test_faster_node_costs_more_under_cf():
    """The paper's economics: shorter real load time => higher cost."""
    model = VolumeOverTimeCost()
    task = Task("t", volume=20, best_time=2)
    fast = ProcessorNode(node_id=1, performance=1.0)
    slow = ProcessorNode(node_id=2, performance=0.5)
    fast_cost = model.task_cost(
        task, Placement("t", 1, 0, task.duration_on(1.0)), fast)
    slow_cost = model.task_cost(
        task, Placement("t", 2, 0, task.duration_on(0.5)), slow)
    assert fast_cost > slow_cost


def test_distribution_cost_sums_task_costs():
    job = fig2_like_job()
    dist = Distribution("j", [
        Placement("P1", 1, 0, 2),   # 20/2 = 10
        Placement("P2", 1, 3, 6),   # 30/3 = 10
    ])
    assert distribution_cost(dist, job, pool()) == 20


def test_priced_time_cost():
    model = PricedTimeCost()
    task = Task("t", volume=1, best_time=2)
    node = ProcessorNode(node_id=1, performance=1.0, price_rate=2.0)
    assert model.task_cost(task, Placement("t", 1, 0, 3), node) == 6.0


def test_priced_time_cost_surge():
    model = PricedTimeCost(surge=1.5)
    task = Task("t", volume=1, best_time=2)
    node = ProcessorNode(node_id=1, performance=1.0, price_rate=2.0)
    assert model.task_cost(task, Placement("t", 1, 0, 2), node) == 6.0
    with pytest.raises(ValueError):
        PricedTimeCost(surge=0)


def test_cheapest_possible_cost_is_a_lower_bound():
    job = fig2_like_job()
    resource_pool = pool()
    floor = cheapest_possible_cost(job, resource_pool)
    dist = Distribution("j", [
        Placement("P1", 1, 0, 2),
        Placement("P2", 1, 3, 6),
    ])
    assert distribution_cost(dist, job, resource_pool) >= floor


def test_relative_cost_at_least_one():
    job = fig2_like_job()
    resource_pool = pool()
    dist = Distribution("j", [
        Placement("P1", 1, 0, 2),
        Placement("P2", 1, 3, 6),
    ])
    assert relative_cost(dist, job, resource_pool) >= 1.0


def test_relative_cost_orders_cheap_vs_expensive():
    job = fig2_like_job()
    resource_pool = pool()
    expensive = Distribution("j", [
        Placement("P1", 1, 0, 2),
        Placement("P2", 1, 3, 6),
    ])
    cheap = Distribution("j", [
        Placement("P1", 2, 0, 8),
        Placement("P2", 2, 9, 20),
    ])
    assert (relative_cost(cheap, job, resource_pool)
            < relative_cost(expensive, job, resource_pool))
