"""Unit tests for slot arithmetic helpers."""

import pytest

from repro.core.units import ceil_div, ceil_units, interpolate, scale_duration


def test_ceil_units_exact_integer():
    assert ceil_units(6.0) == 6


def test_ceil_units_float_noise():
    # 2 / (1/3) == 6.000000000000001 — must not round up to 7.
    assert ceil_units(2 / (1 / 3)) == 6


def test_ceil_units_genuine_fraction():
    assert ceil_units(6.2) == 7
    assert ceil_units(0.1) == 1


def test_ceil_div_basic():
    assert ceil_div(10, 3) == 4
    assert ceil_div(9, 3) == 3
    assert ceil_div(20, 2) == 10


def test_ceil_div_rejects_nonpositive_denominator():
    with pytest.raises(ValueError):
        ceil_div(1, 0)
    with pytest.raises(ValueError):
        ceil_div(1, -2)


def test_scale_duration_matches_fig2_estimate_rows():
    # Fig. 2 table: P1 base time 2 -> 2, 4, 6, 8 on types 1..4.
    for perf, expected in [(1.0, 2), (0.5, 4), (1 / 3, 6), (0.25, 8)]:
        assert scale_duration(2, perf) == expected


def test_scale_duration_p2_row():
    # P2 base 3 -> 3, 6, 9, 12.
    for perf, expected in [(1.0, 3), (0.5, 6), (1 / 3, 9), (0.25, 12)]:
        assert scale_duration(3, perf) == expected


def test_scale_duration_validation():
    with pytest.raises(ValueError):
        scale_duration(2, 0)
    with pytest.raises(ValueError):
        scale_duration(-1, 1.0)


def test_interpolate_endpoints_and_midpoint():
    assert interpolate(2, 8, 0.0) == 2
    assert interpolate(2, 8, 1.0) == 8
    assert interpolate(2, 8, 0.5) == 5


def test_interpolate_validation():
    with pytest.raises(ValueError):
        interpolate(2, 8, 1.5)
    with pytest.raises(ValueError):
        interpolate(8, 2, 0.5)
