"""Unit tests for reservation calendars."""

import pytest

from repro.core.calendar import (
    Reservation,
    ReservationCalendar,
    ReservationConflict,
)


def test_reservation_validation_and_duration():
    with pytest.raises(ValueError):
        Reservation(5, 5)
    with pytest.raises(ValueError):
        Reservation(5, 3)
    assert Reservation(2, 7).duration == 5


def test_reservation_overlaps():
    reservation = Reservation(5, 10)
    assert reservation.overlaps(9, 12)
    assert reservation.overlaps(0, 6)
    assert reservation.overlaps(6, 8)
    assert not reservation.overlaps(10, 12)  # half-open: touching is fine
    assert not reservation.overlaps(0, 5)


def test_reserve_and_conflicts():
    cal = ReservationCalendar()
    cal.reserve(0, 5, "a")
    cal.reserve(10, 15, "b")
    assert cal.is_free(5, 10)
    assert not cal.is_free(4, 6)
    assert [r.tag for r in cal.conflicts(3, 12)] == ["a", "b"]


def test_reserve_conflict_raises():
    cal = ReservationCalendar()
    cal.reserve(0, 5, "a")
    with pytest.raises(ReservationConflict):
        cal.reserve(4, 6, "b")
    # Failed reserve must not corrupt the calendar.
    assert len(cal) == 1


def test_adjacent_reservations_allowed():
    cal = ReservationCalendar()
    cal.reserve(0, 5)
    cal.reserve(5, 10)
    assert len(cal) == 2


def test_constructor_accepts_unordered_reservations():
    cal = ReservationCalendar([Reservation(10, 15, "b"),
                               Reservation(0, 5, "a")])
    assert [r.tag for r in cal] == ["a", "b"]


def test_free_windows_basic():
    cal = ReservationCalendar()
    cal.reserve(3, 5)
    cal.reserve(8, 10)
    assert cal.free_windows(0, 12) == [(0, 3), (5, 8), (10, 12)]


def test_free_windows_edge_cases():
    cal = ReservationCalendar()
    assert cal.free_windows(0, 10) == [(0, 10)]
    assert cal.free_windows(5, 5) == []
    cal.reserve(0, 10)
    assert cal.free_windows(0, 10) == []
    assert cal.free_windows(2, 8) == []


def test_free_windows_clips_to_range():
    cal = ReservationCalendar()
    cal.reserve(0, 4)
    cal.reserve(20, 30)
    assert cal.free_windows(2, 25) == [(4, 20)]


def test_earliest_fit():
    cal = ReservationCalendar()
    cal.reserve(0, 4)
    cal.reserve(6, 10)
    assert cal.earliest_fit(2, earliest=0, deadline=20) == 4
    assert cal.earliest_fit(3, earliest=0, deadline=20) == 10
    assert cal.earliest_fit(3, earliest=0, deadline=10) is None


def test_earliest_fit_without_deadline_always_finds_slot():
    cal = ReservationCalendar()
    cal.reserve(0, 100)
    assert cal.earliest_fit(5) == 100


def test_earliest_fit_validation():
    with pytest.raises(ValueError):
        ReservationCalendar().earliest_fit(0)


def test_release():
    cal = ReservationCalendar()
    booking = cal.reserve(0, 5, "a")
    cal.release(booking)
    assert cal.is_free(0, 5)
    with pytest.raises(KeyError):
        cal.release(booking)


def test_release_tag():
    cal = ReservationCalendar()
    cal.reserve(0, 2, "job1")
    cal.reserve(3, 5, "job1")
    cal.reserve(6, 8, "job2")
    assert cal.release_tag("job1") == 2
    assert [r.tag for r in cal] == ["job2"]
    assert cal.release_tag("ghost") == 0


def test_copy_is_independent():
    cal = ReservationCalendar()
    cal.reserve(0, 5, "a")
    clone = cal.copy()
    clone.reserve(5, 10, "b")
    assert len(cal) == 1
    assert len(clone) == 2


def test_utilization():
    cal = ReservationCalendar()
    cal.reserve(0, 5)
    assert cal.utilization(0, 10) == 0.5
    assert cal.utilization(0, 5) == 1.0
    assert cal.utilization(5, 10) == 0.0
    with pytest.raises(ValueError):
        cal.utilization(5, 5)


def test_conflicts_validation():
    with pytest.raises(ValueError):
        ReservationCalendar().conflicts(3, 3)


def test_many_reservations_scan_correctness():
    cal = ReservationCalendar()
    for i in range(100):
        cal.reserve(i * 10, i * 10 + 5, f"r{i}")
    assert [r.tag for r in cal.conflicts(250, 275)] == ["r25", "r26", "r27"]
    assert cal.is_free(255, 260)


# ----------------------------------------------------------------------
# Content versions (calendar epochs)
# ----------------------------------------------------------------------

def test_version_bumps_on_every_mutation():
    calendar = ReservationCalendar()
    versions = [calendar.version]
    reservation = calendar.reserve(0, 5, tag="a")
    versions.append(calendar.version)
    calendar.reserve(10, 15, tag="b")
    versions.append(calendar.version)
    calendar.release(reservation)
    versions.append(calendar.version)
    calendar.release_tag("b")
    versions.append(calendar.version)
    # Strictly increasing: every mutation is observable.
    assert versions == sorted(set(versions))
    assert len(set(versions)) == len(versions)


def test_version_stable_across_reads():
    calendar = ReservationCalendar()
    calendar.reserve(0, 5)
    before = calendar.version
    calendar.conflicts(0, 10)
    calendar.is_free(6, 8)
    calendar.earliest_fit(2, earliest=0, deadline=50)
    assert calendar.version == before


def test_release_tag_without_match_keeps_version():
    calendar = ReservationCalendar()
    calendar.reserve(0, 5, tag="a")
    before = calendar.version
    assert calendar.release_tag("missing") == 0
    assert calendar.version == before


def test_copy_shares_version_until_divergence():
    """Equal versions must imply identical contents: a copy-on-write
    snapshot keeps the source's version, and either side mutating draws
    a fresh globally-unique version."""
    calendar = ReservationCalendar()
    calendar.reserve(0, 5)
    snapshot = calendar.copy()
    assert snapshot.version == calendar.version
    snapshot.reserve(10, 12)
    assert snapshot.version != calendar.version


def test_versions_are_globally_unique():
    first, second = ReservationCalendar(), ReservationCalendar()
    assert first.version != second.version
    first.reserve(0, 1)
    second.reserve(0, 1)
    assert first.version != second.version


def test_from_busy_bulk_load_matches_reserve():
    starts, ends = [0, 10, 30], [5, 12, 31]
    bulk = ReservationCalendar.from_busy(starts, ends, tag="bg")
    incremental = ReservationCalendar()
    for start, end in zip(starts, ends):
        incremental.reserve(start, end, tag="bg")
    assert [(r.start, r.end, r.tag) for r in bulk.reservations] == [
        (r.start, r.end, r.tag) for r in incremental.reservations]
    assert bulk.earliest_fit(4) == incremental.earliest_fit(4)


def test_from_busy_accepts_back_to_back_and_empty():
    touching = ReservationCalendar.from_busy([0, 5], [5, 9])
    assert [(r.start, r.end) for r in touching.reservations] == [
        (0, 5), (5, 9)]
    assert ReservationCalendar.from_busy([], []).reservations == []


def test_from_busy_rejects_overlap_and_disorder():
    with pytest.raises(ReservationConflict):
        ReservationCalendar.from_busy([0, 3], [5, 9])
    with pytest.raises(ReservationConflict):
        ReservationCalendar.from_busy([10, 0], [12, 5])


def test_release_prefix_removes_all_matches_in_one_pass():
    calendar = ReservationCalendar()
    calendar.reserve(0, 2, tag="j1:t1")
    calendar.reserve(3, 5, tag="j1:t2")
    calendar.reserve(6, 8, tag="j10:t1")
    calendar.reserve(9, 11, tag="background")
    assert calendar.release_prefix("j1:") == 2
    assert [r.tag for r in calendar.reservations] == ["j10:t1",
                                                      "background"]


def test_release_prefix_without_match_keeps_version():
    calendar = ReservationCalendar()
    calendar.reserve(0, 2, tag="a")
    version = calendar.version
    assert calendar.release_prefix("zzz") == 0
    assert calendar.version == version
    assert calendar.release_prefix("a") == 1
    assert calendar.version != version
