"""Run the doctests embedded in module and function docstrings."""

import doctest

import pytest

import repro.core.units
import repro.local.query
import repro.sim.engine
import repro.sim.rng

MODULES = [
    repro.core.units,
    repro.sim.rng,
    repro.sim.engine,
    repro.local.query,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0
    assert results.attempted > 0, f"{module.__name__} has no doctests"
