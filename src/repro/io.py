"""JSON serialization of the library's core artifacts.

Jobs, pools, distributions, and experiment tables round-trip through
plain dictionaries so workloads can be archived, diffed, and replayed,
and experiment outputs consumed by external tooling
(``repro run fig3a --json out.json``).
"""

from __future__ import annotations

import csv
import importlib.util
import json
from typing import Any, Mapping, Optional, Sequence

from .core.job import DataTransfer, Job, Task
from .core.resources import ProcessorNode, ResourcePool
from .core.schedule import Distribution, Placement
from .experiments.common import ExperimentTable

__all__ = [
    "job_to_dict", "job_from_dict",
    "pool_to_dict", "pool_from_dict",
    "distribution_to_dict", "distribution_from_dict",
    "table_to_dict",
    "dump_json", "load_json",
    "dump_csv", "dump_parquet", "PARQUET_AVAILABLE",
]

#: Parquet export needs pyarrow, which this environment may not ship;
#: the capability is probed without importing (imports cost ~100ms).
PARQUET_AVAILABLE = importlib.util.find_spec("pyarrow") is not None


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------

def job_to_dict(job: Job) -> dict[str, Any]:
    """A JSON-ready description of a compound job."""
    return {
        "job_id": job.job_id,
        "owner": job.owner,
        "deadline": job.deadline,
        "tasks": [
            {
                "task_id": task.task_id,
                "volume": task.volume,
                "best_time": task.best_time,
                "worst_time": task.worst_time,
            }
            for task in job.tasks.values()
        ],
        "transfers": [
            {
                "transfer_id": transfer.transfer_id,
                "src": transfer.src,
                "dst": transfer.dst,
                "volume": transfer.volume,
                "base_time": transfer.base_time,
            }
            for transfer in job.transfers
        ],
    }


def job_from_dict(data: Mapping[str, Any]) -> Job:
    """Rebuild a job; validation happens in the Job constructor."""
    tasks = [Task(**entry) for entry in data["tasks"]]
    transfers = [DataTransfer(**entry) for entry in data["transfers"]]
    return Job(data["job_id"], tasks, transfers,
               deadline=data.get("deadline", 0),
               owner=data.get("owner", "anonymous"))


# ----------------------------------------------------------------------
# Pools
# ----------------------------------------------------------------------

def pool_to_dict(pool: ResourcePool) -> dict[str, Any]:
    """A JSON-ready description of a resource pool."""
    return {
        "nodes": [
            {
                "node_id": node.node_id,
                "performance": node.performance,
                "type_index": node.type_index,
                "domain": node.domain,
                "price_rate": node.price_rate,
            }
            for node in pool
        ]
    }


def pool_from_dict(data: Mapping[str, Any]) -> ResourcePool:
    """Rebuild a pool from its description."""
    return ResourcePool([ProcessorNode(**entry)
                         for entry in data["nodes"]])


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------

def distribution_to_dict(distribution: Distribution) -> dict[str, Any]:
    """A JSON-ready description of one supporting schedule."""
    return {
        "job_id": distribution.job_id,
        "scenario": distribution.scenario,
        "placements": [
            {
                "task_id": placement.task_id,
                "node_id": placement.node_id,
                "start": placement.start,
                "end": placement.end,
            }
            for placement in sorted(distribution,
                                    key=lambda p: (p.start, p.task_id))
        ],
    }


def distribution_from_dict(data: Mapping[str, Any]) -> Distribution:
    """Rebuild a distribution from its description."""
    return Distribution(
        data["job_id"],
        [Placement(**entry) for entry in data["placements"]],
        scenario=data.get("scenario", ""),
    )


# ----------------------------------------------------------------------
# Experiment tables
# ----------------------------------------------------------------------

def table_to_dict(table: ExperimentTable) -> dict[str, Any]:
    """Experiment output as JSON (one-way: tables are results)."""
    return {
        "experiment_id": table.experiment_id,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [dict(row) for row in table.rows],
        "notes": list(table.notes),
    }


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------

def dump_json(payload: Mapping[str, Any], path: str) -> None:
    """Write a payload as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> Any:
    """Read a JSON payload."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _flat_cell(value: Any) -> Any:
    """A CSV-safe cell: scalars pass through, containers become JSON."""
    if isinstance(value, (list, dict, tuple)):
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    return value


def dump_csv(columns: Sequence[str], rows: Sequence[Mapping[str, Any]],
             path: str,
             schema_header: Optional[Mapping[str, str]] = None) -> None:
    """Write rows as CSV in the given column order.

    ``schema_header`` renders as one leading ``# key=value ...``
    comment line (the versioned-schema tag study exports carry);
    list/dict cells are embedded as compact JSON so the file stays one
    value per cell.
    """
    with open(path, "w", encoding="utf-8", newline="") as handle:
        if schema_header:
            handle.write("# " + " ".join(
                f"{key}={value}"
                for key, value in schema_header.items()) + "\n")
        writer = csv.DictWriter(handle, fieldnames=list(columns),
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({column: _flat_cell(row.get(column, ""))
                             for column in columns})


def dump_parquet(columns: Sequence[str],
                 rows: Sequence[Mapping[str, Any]], path: str,
                 metadata: Optional[Mapping[str, str]] = None) -> None:
    """Write rows as Parquet (schema metadata carries the version tag).

    Raises RuntimeError when pyarrow is not installed — Parquet is an
    optional export; CSV and JSON always work.
    """
    if not PARQUET_AVAILABLE:
        raise RuntimeError(
            "Parquet export requires pyarrow, which is not installed; "
            "use --format csv or --format json instead")
    import pyarrow as pa
    import pyarrow.parquet as pq

    table = pa.table({column: [_flat_cell(row.get(column))
                               for row in rows]
                      for column in columns})
    if metadata:
        table = table.replace_schema_metadata(
            {str(key): str(value) for key, value in metadata.items()})
    pq.write_table(table, path)
