"""JSON serialization of the library's core artifacts.

Jobs, pools, distributions, and experiment tables round-trip through
plain dictionaries so workloads can be archived, diffed, and replayed,
and experiment outputs consumed by external tooling
(``repro run fig3a --json out.json``).
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from .core.job import DataTransfer, Job, Task
from .core.resources import ProcessorNode, ResourcePool
from .core.schedule import Distribution, Placement
from .experiments.common import ExperimentTable

__all__ = [
    "job_to_dict", "job_from_dict",
    "pool_to_dict", "pool_from_dict",
    "distribution_to_dict", "distribution_from_dict",
    "table_to_dict",
    "dump_json", "load_json",
]


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------

def job_to_dict(job: Job) -> dict[str, Any]:
    """A JSON-ready description of a compound job."""
    return {
        "job_id": job.job_id,
        "owner": job.owner,
        "deadline": job.deadline,
        "tasks": [
            {
                "task_id": task.task_id,
                "volume": task.volume,
                "best_time": task.best_time,
                "worst_time": task.worst_time,
            }
            for task in job.tasks.values()
        ],
        "transfers": [
            {
                "transfer_id": transfer.transfer_id,
                "src": transfer.src,
                "dst": transfer.dst,
                "volume": transfer.volume,
                "base_time": transfer.base_time,
            }
            for transfer in job.transfers
        ],
    }


def job_from_dict(data: Mapping[str, Any]) -> Job:
    """Rebuild a job; validation happens in the Job constructor."""
    tasks = [Task(**entry) for entry in data["tasks"]]
    transfers = [DataTransfer(**entry) for entry in data["transfers"]]
    return Job(data["job_id"], tasks, transfers,
               deadline=data.get("deadline", 0),
               owner=data.get("owner", "anonymous"))


# ----------------------------------------------------------------------
# Pools
# ----------------------------------------------------------------------

def pool_to_dict(pool: ResourcePool) -> dict[str, Any]:
    """A JSON-ready description of a resource pool."""
    return {
        "nodes": [
            {
                "node_id": node.node_id,
                "performance": node.performance,
                "type_index": node.type_index,
                "domain": node.domain,
                "price_rate": node.price_rate,
            }
            for node in pool
        ]
    }


def pool_from_dict(data: Mapping[str, Any]) -> ResourcePool:
    """Rebuild a pool from its description."""
    return ResourcePool([ProcessorNode(**entry)
                         for entry in data["nodes"]])


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------

def distribution_to_dict(distribution: Distribution) -> dict[str, Any]:
    """A JSON-ready description of one supporting schedule."""
    return {
        "job_id": distribution.job_id,
        "scenario": distribution.scenario,
        "placements": [
            {
                "task_id": placement.task_id,
                "node_id": placement.node_id,
                "start": placement.start,
                "end": placement.end,
            }
            for placement in sorted(distribution,
                                    key=lambda p: (p.start, p.task_id))
        ],
    }


def distribution_from_dict(data: Mapping[str, Any]) -> Distribution:
    """Rebuild a distribution from its description."""
    return Distribution(
        data["job_id"],
        [Placement(**entry) for entry in data["placements"]],
        scenario=data.get("scenario", ""),
    )


# ----------------------------------------------------------------------
# Experiment tables
# ----------------------------------------------------------------------

def table_to_dict(table: ExperimentTable) -> dict[str, Any]:
    """Experiment output as JSON (one-way: tables are results)."""
    return {
        "experiment_id": table.experiment_id,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [dict(row) for row in table.rows],
        "notes": list(table.notes),
    }


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------

def dump_json(payload: Mapping[str, Any], path: str) -> None:
    """Write a payload as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> Any:
    """Read a JSON payload."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
