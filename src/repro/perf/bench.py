"""Pinned kernel benchmark: fixed workloads, JSON reports, comparison.

``run_kernel_bench`` times three seeded, deterministic workloads that
together cover the scheduling kernel's hot paths:

``study_fig3a``
    The Fig. 3a application-level study at a pinned scale — strategy
    generation end to end (DP, calendars, critical-works ranking).
``critical_works_fig2``
    200 repetitions of the paper's Fig. 2 worked example against empty
    calendars — the critical-works method without background load.
``calendar_ops``
    A reservation-calendar micro-workload: 1 000 bookings, 2 000
    ``conflicts``/``earliest_fit`` queries, one what-if copy.

The report also embeds one :class:`~repro.perf.registry.PerfRegistry`
snapshot of the study workload, so counter drift (e.g. a cache that
stopped hitting) is visible next to the timings.  ``compare_reports``
diffs two reports for CI's warn-only regression gate.

Workload imports are lazy: the kernel imports :mod:`repro.perf` for the
``PERF`` registry, so this module must not import the kernel at module
scope.
"""

from __future__ import annotations

import platform
import time
from typing import Any, Callable, Optional

from .registry import PERF

__all__ = ["BENCH_SCHEMA_VERSION", "run_kernel_bench", "compare_reports",
           "format_comparison"]

#: Bump when the pinned workloads change incompatibly; comparisons
#: across schema versions are refused.
BENCH_SCHEMA_VERSION = 1

#: Default warn threshold: flag a workload slower than baseline by more
#: than this fraction.  Generous because CI machines are noisy and the
#: gate is warn-only.
DEFAULT_THRESHOLD = 0.30


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall seconds over ``repeats`` runs (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def run_kernel_bench(jobs: int = 60, seed: int = 2009, repeats: int = 3,
                     workers: Optional[int] = 1) -> dict[str, Any]:
    """Run the pinned kernel workloads and return a JSON-ready report."""
    from ..core.calendar import ReservationCalendar
    from ..core.critical_works import CriticalWorksScheduler
    from ..experiments.study import (ApplicationStudyConfig,
                                     application_level_study)
    from ..workload.paper_example import fig2_job, fig2_pool

    config = ApplicationStudyConfig(seed=seed, n_jobs=jobs)

    def study() -> None:
        application_level_study(config, workers=workers)

    pool, job = fig2_pool(), fig2_job()
    scheduler = CriticalWorksScheduler(pool)

    def critical_works() -> None:
        for _ in range(200):
            calendars = {node.node_id: ReservationCalendar()
                         for node in pool}
            scheduler.build_schedule(job, calendars)

    def calendar_ops() -> int:
        calendar = ReservationCalendar()
        for index in range(1_000):
            calendar.reserve(index * 5, index * 5 + 3, tag=f"r{index}")
        hits = 0
        for index in range(2_000):
            hits += len(calendar.conflicts(index * 2, index * 2 + 4))
            calendar.earliest_fit(2, earliest=index, deadline=index + 5_000)
        calendar.copy()
        return hits

    report: dict[str, Any] = {
        "benchmark": "kernel",
        "schema": BENCH_SCHEMA_VERSION,
        "python": platform.python_version(),
        "workloads": {
            "study_fig3a": {
                "seconds": round(_best_of(study, repeats), 6),
                "jobs": jobs, "seed": seed, "workers": workers,
            },
            "critical_works_fig2": {
                "seconds": round(_best_of(critical_works, repeats), 6),
                "repetitions": 200,
            },
            "calendar_ops": {
                "seconds": round(_best_of(calendar_ops, repeats), 6),
                "reservations": 1_000, "queries": 2_000,
            },
        },
    }

    # One instrumented study pass: the counters document how hard the
    # kernel worked and how well its caches performed.
    with PERF.collecting() as registry:
        application_level_study(config, workers=1)
        snapshot = registry.snapshot()
    report["counters"] = snapshot["counters"]
    report["timers"] = snapshot["timers"]
    return report


def compare_reports(baseline: dict[str, Any], current: dict[str, Any],
                    threshold: float = DEFAULT_THRESHOLD
                    ) -> list[dict[str, Any]]:
    """Per-workload comparison rows; ``regressed`` marks slowdowns.

    A workload regresses when its time exceeds the baseline by more
    than ``threshold`` (fractional).  Workloads present on only one
    side are skipped.
    """
    if baseline.get("schema") != current.get("schema"):
        raise ValueError(
            f"benchmark schema mismatch: baseline "
            f"{baseline.get('schema')!r} vs current {current.get('schema')!r}")
    rows: list[dict[str, Any]] = []
    base_workloads = baseline.get("workloads", {})
    for name, entry in current.get("workloads", {}).items():
        base_entry = base_workloads.get(name)
        if base_entry is None:
            continue
        base_seconds = float(base_entry["seconds"])
        seconds = float(entry["seconds"])
        ratio = seconds / base_seconds if base_seconds > 0 else float("inf")
        rows.append({
            "workload": name,
            "baseline_seconds": base_seconds,
            "seconds": seconds,
            "ratio": round(ratio, 3),
            "regressed": ratio > 1.0 + threshold,
        })
    return rows


def format_comparison(rows: list[dict[str, Any]],
                      threshold: float = DEFAULT_THRESHOLD) -> str:
    """A human-readable table of :func:`compare_reports` rows."""
    lines = [f"{'workload':<24} {'baseline':>10} {'current':>10} "
             f"{'ratio':>7}  status"]
    for row in rows:
        status = ("REGRESSED" if row["regressed"]
                  else "ok" if row["ratio"] >= 1.0 else "faster")
        lines.append(
            f"{row['workload']:<24} {row['baseline_seconds']:>9.4f}s "
            f"{row['seconds']:>9.4f}s {row['ratio']:>6.2f}x  {status}")
    regressed = [row["workload"] for row in rows if row["regressed"]]
    if regressed:
        lines.append(f"warning: {len(regressed)} workload(s) slower than "
                     f"baseline by >{threshold:.0%}: {', '.join(regressed)}")
    else:
        lines.append(f"all workloads within {threshold:.0%} of baseline")
    return "\n".join(lines)


def measure_speedup(baseline: dict[str, Any], current: dict[str, Any]
                    ) -> Optional[float]:
    """Aggregate speedup (geometric mean of baseline/current ratios)."""
    rows = compare_reports(baseline, current, threshold=float("inf"))
    if not rows:
        return None
    product = 1.0
    for row in rows:
        if row["seconds"] <= 0:
            return None
        product *= row["baseline_seconds"] / row["seconds"]
    return product ** (1.0 / len(rows))
