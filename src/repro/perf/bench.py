"""Pinned kernel benchmark: fixed workloads, JSON reports, comparison.

``run_kernel_bench`` times seven seeded, deterministic workloads that
together cover the scheduling kernel's hot paths:

``study_fig3a``
    The Fig. 3a application-level study at a pinned scale — strategy
    generation end to end (DP, calendars, critical-works ranking).
``critical_works_fig2``
    200 repetitions of the paper's Fig. 2 worked example against empty
    calendars — the critical-works method without background load.
``calendar_ops``
    A reservation-calendar micro-workload: 1 000 bookings, 2 000
    ``conflicts``/``earliest_fit`` queries, one what-if copy.
``strategy_generation``
    Incremental strategy generation: S1/S2/MS1 strategies for a batch
    of random jobs over background-loaded calendars through one
    generator — the warm-start + fit-cache path.
``online_sim``
    A pinned :class:`~repro.flow.simulation.OnlineSimulation` run —
    plan, epoch-aware commit, and discrete-event execution end to end.
``online_large``
    The plan-reuse scenario: >10³ template-skewed arrivals (two job
    classes at 70/30) through a dense flash-crowd window, where the
    flow layer's semantic plan keys turn most commits into exact cache
    hits or warm repairs.  The strict perf gate floors this workload's
    ``flow.plan_cache`` reuse rate (``PLAN_CACHE_FLOORS``).
``online_sharded``
    The scale scenario: 10^5 template-mixed arrivals through the
    domain-sharded batch engine
    (:class:`~repro.flow.sharded.ShardedSimulation`) at the pinned
    shard count (``--shards``, default 4) over a 12-domain pool.  The
    same run is repeated once at ``shards=1`` and the entry records
    ``baseline_shards1_seconds`` and ``speedup_vs_shards1`` — the
    wall-clock payoff of planning each arrival against its own shard's
    domains only.  Also floored by ``PLAN_CACHE_FLOORS``.

The report also embeds a merged :class:`~repro.perf.registry.
PerfRegistry` snapshot of one instrumented pass over every selected
workload plus derived per-cache hit rates (``caches``), so counter
drift (e.g. a cache that stopped hitting) is visible next to the
timings.  Workloads that run through a
:class:`~repro.core.context.SchedulingContext` additionally report the
context's own per-cache view (entries, capacities, eviction policies)
under ``context.<workload>`` — the unified ``context.stats()`` surface
the refactor consolidated the cache inventory behind.
``compare_reports`` diffs two reports for the CI regression gates.

Workload imports are lazy: the kernel imports :mod:`repro.perf` for the
``PERF`` registry, so this module must not import the kernel at module
scope.
"""

from __future__ import annotations

import platform
import time
from typing import Any, Callable, Iterable, Optional

from .registry import PERF, derive_cache_stats

__all__ = ["BENCH_SCHEMA_VERSION", "BENCH_WORKLOADS", "PLAN_CACHE_FLOORS",
           "run_kernel_bench", "compare_reports", "format_comparison",
           "check_plan_floors"]

#: Bump when the pinned workloads change incompatibly; comparisons
#: across schema versions are refused.
BENCH_SCHEMA_VERSION = 1

#: Default warn threshold: flag a workload slower than baseline by more
#: than this fraction.  Generous because CI machines are noisy and the
#: gate is warn-only.
DEFAULT_THRESHOLD = 0.30


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall seconds over ``repeats`` runs (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()  # lint: perf-timer — measures the host
        fn()
        elapsed = time.perf_counter() - started  # lint: perf-timer
        if elapsed < best:
            best = elapsed
    return best


#: Names of the pinned workloads, in report order.
BENCH_WORKLOADS = ("study_fig3a", "critical_works_fig2", "calendar_ops",
                   "strategy_generation", "online_sim", "online_large",
                   "online_sharded")

#: Minimum ``flow.plan_cache`` reuse rate (exact hits + warm repairs
#: over reads) per online workload, enforced by ``repro perf --strict``.
#: ``online_large`` is the scenario semantic plan keys were built for —
#: most commits must be served from the cache; ``online_sim`` draws
#: unique jobs, so only conflict replans can reuse and the floor is a
#: canary against the cache being disabled outright.  ``online_sharded``
#: plans 10^5 template arrivals in windows, so within-window siblings
#: must hit exactly and across windows at worst repair — only the first
#: (template, family, domain) probe of a window may miss.
PLAN_CACHE_FLOORS = {"online_large": 0.50, "online_sim": 0.05,
                     "online_sharded": 0.80}


def check_plan_floors(report: dict[str, Any]) -> list[str]:
    """Plan-cache reuse-rate floor violations in a bench ``report``.

    Checks every :data:`PLAN_CACHE_FLOORS` workload that ran in this
    report (others are skipped, so CI can gate subsets) and returns one
    human-readable line per violated floor — empty means the gate
    passes.
    """
    failures: list[str] = []
    for name, floor in sorted(PLAN_CACHE_FLOORS.items()):
        context = report.get("context", {}).get(name)
        if context is None:
            continue
        rate = float(context["flow.plan_cache"]["reuse_rate"])
        if rate < floor:
            failures.append(
                f"{name}: flow.plan_cache reuse rate {rate:.1%} is below "
                f"the {floor:.0%} floor")
    return failures


def run_kernel_bench(jobs: int = 60, seed: int = 2009, repeats: int = 3,
                     workers: Optional[int] = 1,
                     workloads: Optional[Iterable[str]] = None,
                     shards: int = 4,
                     sharded_jobs: Optional[int] = None) -> dict[str, Any]:
    """Run the pinned kernel workloads and return a JSON-ready report.

    ``workloads`` restricts the run to a subset of
    :data:`BENCH_WORKLOADS` (all of them by default) — CI uses this to
    gate strictly on the fast micro scenarios without paying for the
    end-to-end ones twice.  ``shards`` pins the shard count of the
    ``online_sharded`` scenario (its ``shards=1`` baseline is measured
    inside the same report whenever ``shards != 1``); ``sharded_jobs``
    overrides that scenario's pinned 10^5 arrivals — a test-scale knob,
    not something a committed baseline should ever set.
    """
    from ..core.calendar import ReservationCalendar
    from ..core.critical_works import CriticalWorksScheduler
    from ..core.strategy import StrategyGenerator, StrategyType
    from ..experiments.study import (ApplicationStudyConfig,
                                     application_level_study)
    from ..flow.sharded import ShardedConfig, ShardedSimulation
    from ..flow.simulation import OnlineConfig, OnlineSimulation
    from ..grid.environment import GridEnvironment
    from ..sim.rng import RandomStreams
    from ..workload.generator import (WorkloadConfig, generate_job,
                                      generate_pool,
                                      template_workload_factory)
    from ..workload.paper_example import fig2_job, fig2_pool

    if workloads is None:
        selected = list(BENCH_WORKLOADS)
    else:
        selected = list(workloads)
        unknown = sorted(set(selected) - set(BENCH_WORKLOADS))
        if unknown:
            raise ValueError(
                f"unknown workload(s) {', '.join(unknown)}; "
                f"choose from {', '.join(BENCH_WORKLOADS)}")

    config = ApplicationStudyConfig(seed=seed, n_jobs=jobs)

    def study() -> None:
        application_level_study(config, workers=workers)

    pool, job = fig2_pool(), fig2_job()
    scheduler = CriticalWorksScheduler(pool)

    def critical_works() -> None:
        for _ in range(200):
            calendars = {node.node_id: ReservationCalendar()
                         for node in pool}
            scheduler.schedule(job, pool, calendars)

    def calendar_ops() -> int:
        calendar = ReservationCalendar()
        for index in range(1_000):
            calendar.reserve(index * 5, index * 5 + 3, tag=f"r{index}")
        hits = 0
        for index in range(2_000):
            hits += len(calendar.conflicts(index * 2, index * 2 + 4))
            calendar.earliest_fit(2, earliest=index, deadline=index + 5_000)
        calendar.copy()
        return hits

    # Strategy generation over loaded calendars: built once, reused by
    # every repetition (the generator itself is fresh per run, so its
    # warm-start/fit-cache state always starts cold).
    sgen_jobs, sgen_stypes, sgen_busy = 30, 3, 0.5
    streams = RandomStreams(seed)
    sgen_rng = streams.stream("bench.sgen")
    sgen_pool = generate_pool(sgen_rng)
    sgen_batch = [generate_job(sgen_rng, index) for index in range(sgen_jobs)]
    sgen_env = GridEnvironment(sgen_pool)
    sgen_env.apply_background_load(sgen_rng, sgen_busy, 400)

    last_sgen_context: list[Any] = [None]

    def strategy_generation() -> int:
        generator = StrategyGenerator(sgen_pool)
        last_sgen_context[0] = generator.context
        expense = 0
        for batch_job in sgen_batch:
            for stype in (StrategyType.S1, StrategyType.S2,
                          StrategyType.MS1):
                strategy = generator.generate(batch_job, sgen_env.snapshot(),
                                              stype)
                expense += strategy.generation_expense
        return expense

    # plan_latency > 0 separates planning from commitment on the DES
    # clock, so commitment conflicts (and the epoch-aware replans that
    # exercise the plan cache) actually occur in the benchmark.
    online_config = OnlineConfig(horizon=400, mean_interarrival=6.0,
                                 busy_fraction=0.3, conflict_retries=1,
                                 plan_latency=4)
    online_pool = generate_pool(streams.stream("bench.online_pool"))
    last_online_context: list[Any] = [None]

    def online_sim() -> None:
        simulation = OnlineSimulation(online_pool, seed=seed,
                                      config=online_config)
        last_online_context[0] = simulation.context
        simulation.run()

    # The plan-reuse scenario: a dense flash crowd (~8 arrivals per
    # slot) of two dominant job templates with a long decision lag, so
    # thousands of commits land against a mostly-frozen environment and
    # same-template arrivals resolve to exact plan-cache hits; the
    # drifted remainder exercises warm repair.
    large_weights = (0.7, 0.3)
    large_config = OnlineConfig(horizon=150, mean_interarrival=0.12,
                                busy_fraction=0.25, conflict_retries=2,
                                plan_latency=10,
                                stypes=(StrategyType.S1, StrategyType.S2))
    large_pool = generate_pool(streams.stream("bench.online_large_pool"))
    last_large_context: list[Any] = [None]

    def online_large() -> None:
        simulation = OnlineSimulation(
            large_pool, seed=seed, config=large_config,
            job_factory=template_workload_factory(large_weights))
        last_large_context[0] = simulation.context
        simulation.run()

    # The scale scenario: 10^5 arrivals from a 3-template mix through
    # the sharded batch engine over a 12-domain / 48-node pool, in the
    # in-process lane (workers=1 — the speedup is semantic: each job
    # only meets its own shard's domains, and each shard's plan cache
    # serves a narrower working set).  The ``shards=1`` reference run
    # below measures the same stream planned against the whole VO.
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    sharded_weights = (5.0, 3.0, 1.0)
    sharded_config = ShardedConfig(
        jobs=100_000 if sharded_jobs is None else sharded_jobs,
        mean_interarrival=0.02, window=16, shards=shards, workers=1)
    sharded_pool = generate_pool(streams.stream("bench.sharded_pool"),
                                 WorkloadConfig(pool_size=(48, 48)),
                                 domains=12)
    sharded_factory = template_workload_factory(sharded_weights)
    last_sharded: list[Any] = [None]

    def online_sharded() -> None:
        simulation = ShardedSimulation(sharded_pool, seed=seed,
                                       config=sharded_config,
                                       job_factory=sharded_factory)
        last_sharded[0] = simulation
        simulation.run()

    runners: dict[str, tuple[Callable[[], Any], dict[str, Any]]] = {
        "study_fig3a": (study, {"jobs": jobs, "seed": seed,
                                "workers": workers}),
        "critical_works_fig2": (critical_works, {"repetitions": 200}),
        "calendar_ops": (calendar_ops, {"reservations": 1_000,
                                        "queries": 2_000}),
        "strategy_generation": (strategy_generation, {
            "jobs": sgen_jobs, "stypes": sgen_stypes, "seed": seed,
            "busy_fraction": sgen_busy}),
        "online_sim": (online_sim, {
            "horizon": online_config.horizon,
            "mean_interarrival": online_config.mean_interarrival,
            "busy_fraction": online_config.busy_fraction,
            "conflict_retries": online_config.conflict_retries,
            "plan_latency": online_config.plan_latency,
            "seed": seed}),
        "online_large": (online_large, {
            "horizon": large_config.horizon,
            "mean_interarrival": large_config.mean_interarrival,
            "busy_fraction": large_config.busy_fraction,
            "conflict_retries": large_config.conflict_retries,
            "plan_latency": large_config.plan_latency,
            "template_weights": list(large_weights),
            "seed": seed}),
        "online_sharded": (online_sharded, {
            "jobs": sharded_config.jobs,
            "mean_interarrival": sharded_config.mean_interarrival,
            "window": sharded_config.window,
            "shards": shards,
            "workers": sharded_config.workers,
            "domains": 12,
            "pool_nodes": len(sharded_pool),
            "template_weights": list(sharded_weights),
            "seed": seed}),
    }

    report: dict[str, Any] = {
        "benchmark": "kernel",
        "schema": BENCH_SCHEMA_VERSION,
        "python": platform.python_version(),
        "workloads": {},
    }
    for name in BENCH_WORKLOADS:
        if name not in selected:
            continue
        runner, params = runners[name]
        entry = {"seconds": round(_best_of(runner, repeats), 6)}
        entry.update(params)
        report["workloads"][name] = entry

    if "online_sharded" in report["workloads"] and shards != 1:
        # The unsharded reference, measured in the same process right
        # after the sharded runs so the comparison shares every warmup
        # effect; one pass — it exists to size the speedup, not to be
        # a low-noise timing of its own.
        from dataclasses import replace

        reference_config = replace(sharded_config, shards=1)

        def sharded_reference() -> None:
            ShardedSimulation(sharded_pool, seed=seed,
                              config=reference_config,
                              job_factory=sharded_factory).run()

        entry = report["workloads"]["online_sharded"]
        entry["baseline_shards1_seconds"] = round(
            _best_of(sharded_reference, 1), 6)
        entry["speedup_vs_shards1"] = round(
            entry["baseline_shards1_seconds"] / entry["seconds"], 3)

    # One instrumented pass of every selected workload, each under its
    # own collection scope: the merged counters document how hard the
    # kernel worked overall, and workloads that schedule through a
    # SchedulingContext additionally report that context's unified
    # per-cache stats (hits/misses from the scoped counters, plus
    # entries, capacities, and eviction policies from the context).
    # The study runs in-process here (workers=1) — subprocess workers
    # report into their own registries, not this one; its generators
    # (and calendar_ops) are context-free in this report.
    instrumented = dict(runners)
    instrumented["study_fig3a"] = (
        lambda: application_level_study(config, workers=1), {})
    workload_contexts: dict[str, Callable[[], Any]] = {
        "critical_works_fig2": lambda: scheduler.context,
        "strategy_generation": lambda: last_sgen_context[0],
        "online_sim": lambda: last_online_context[0],
        "online_large": lambda: last_large_context[0],
        # The sharded simulation exposes the same stats(counters)
        # surface as a context, merged over its per-shard contexts.
        "online_sharded": lambda: last_sharded[0],
    }
    merged_counters: dict[str, int] = {}
    merged_timers: dict[str, float] = {}
    report["context"] = {}
    for name in BENCH_WORKLOADS:
        if name not in selected:
            continue
        with PERF.collecting() as registry:
            instrumented[name][0]()
            snapshot = registry.snapshot()
        for counter, value in snapshot["counters"].items():
            merged_counters[counter] = (
                merged_counters.get(counter, 0) + int(value))
        for timer, seconds in snapshot["timers"].items():
            merged_timers[timer] = round(
                merged_timers.get(timer, 0.0) + float(seconds), 6)
        context = workload_contexts.get(name, lambda: None)()
        if context is not None:
            report["context"][name] = context.stats(snapshot["counters"])
    report["counters"] = dict(sorted(merged_counters.items()))
    report["timers"] = dict(sorted(merged_timers.items()))
    report["caches"] = derive_cache_stats(merged_counters)
    return report


def compare_reports(baseline: dict[str, Any], current: dict[str, Any],
                    threshold: float = DEFAULT_THRESHOLD
                    ) -> list[dict[str, Any]]:
    """Per-workload comparison rows; ``regressed`` marks slowdowns.

    A workload regresses when its time exceeds the baseline by more
    than ``threshold`` (fractional).  Workloads present on only one
    side are skipped.
    """
    if baseline.get("schema") != current.get("schema"):
        raise ValueError(
            f"benchmark schema mismatch: baseline "
            f"{baseline.get('schema')!r} vs current {current.get('schema')!r}")
    rows: list[dict[str, Any]] = []
    base_workloads = baseline.get("workloads", {})
    for name, entry in current.get("workloads", {}).items():
        base_entry = base_workloads.get(name)
        if base_entry is None:
            continue
        base_seconds = float(base_entry["seconds"])
        seconds = float(entry["seconds"])
        ratio = seconds / base_seconds if base_seconds > 0 else float("inf")
        rows.append({
            "workload": name,
            "baseline_seconds": base_seconds,
            "seconds": seconds,
            "ratio": round(ratio, 3),
            "regressed": ratio > 1.0 + threshold,
        })
    return rows


def format_comparison(rows: list[dict[str, Any]],
                      threshold: float = DEFAULT_THRESHOLD) -> str:
    """A human-readable table of :func:`compare_reports` rows."""
    lines = [f"{'workload':<24} {'baseline':>10} {'current':>10} "
             f"{'ratio':>7}  status"]
    for row in rows:
        status = ("REGRESSED" if row["regressed"]
                  else "ok" if row["ratio"] >= 1.0 else "faster")
        lines.append(
            f"{row['workload']:<24} {row['baseline_seconds']:>9.4f}s "
            f"{row['seconds']:>9.4f}s {row['ratio']:>6.2f}x  {status}")
    regressed = [row["workload"] for row in rows if row["regressed"]]
    if regressed:
        lines.append(f"warning: {len(regressed)} workload(s) slower than "
                     f"baseline by >{threshold:.0%}: {', '.join(regressed)}")
    else:
        lines.append(f"all workloads within {threshold:.0%} of baseline")
    return "\n".join(lines)


def measure_speedup(baseline: dict[str, Any], current: dict[str, Any]
                    ) -> Optional[float]:
    """Aggregate speedup (geometric mean of baseline/current ratios)."""
    rows = compare_reports(baseline, current, threshold=float("inf"))
    if not rows:
        return None
    product = 1.0
    for row in rows:
        if row["seconds"] <= 0:
            return None
        product *= row["baseline_seconds"] / row["seconds"]
    return product ** (1.0 / len(rows))
