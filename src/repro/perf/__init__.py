"""Performance instrumentation: counters, timers, pinned benchmarks.

The scheduling kernel reports into a process-global
:class:`~repro.perf.registry.PerfRegistry` (``PERF``) when it is
enabled; the hot paths guard every report behind ``PERF.enabled`` so
the disabled-by-default cost is a single attribute read.  ``repro
perf`` runs the pinned kernel workloads of :mod:`repro.perf.bench`
and emits a ``BENCH_kernel.json``-style report that CI compares
against the committed baseline.
"""

from .bench import (
    BENCH_SCHEMA_VERSION,
    compare_reports,
    format_comparison,
    measure_speedup,
    run_kernel_bench,
)
from .registry import PERF, PerfRegistry, cache_stats, derive_cache_stats

__all__ = [
    "PERF",
    "PerfRegistry",
    "cache_stats",
    "derive_cache_stats",
    "BENCH_SCHEMA_VERSION",
    "run_kernel_bench",
    "compare_reports",
    "format_comparison",
    "measure_speedup",
]
