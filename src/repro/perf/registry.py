"""A lightweight counter/timer registry for the scheduling kernel.

Hot paths report with the pattern::

    from ..perf import PERF
    ...
    if PERF.enabled:
        PERF.incr("calendar.conflicts")

so the disabled cost is one attribute read and one branch.  The
registry is process-global and *not* thread-safe by design: the
parallel study runner fans out over processes, and each process owns
its own registry.

Counter names reported by the kernel
------------------------------------

``calendar.conflicts``
    Overlap queries answered by :meth:`ReservationCalendar.conflicts`.
``calendar.is_free``
    Boolean availability probes (O(log n) fast path).
``calendar.earliest_fit``
    Lazy first-fit searches over free windows.
``calendar.cow_copies``
    What-if snapshots taken via copy-on-write (O(1) each).
``calendar.materializations``
    Snapshots that were actually written to and paid the list copy.
``dp.expansions``
    DP state expansions actually performed.  The paper's
    strategy-generation expense metric (``evaluations``) counts the
    same events; warm-started runs perform — and therefore report —
    fewer of them while returning bit-identical schedules.
``dp.pruned``
    Candidate transitions discarded by warm-start branch-and-bound
    bounds (work the cold path would have expanded).
``dp.incumbents_warm`` / ``dp.incumbents_cold``
    Warm-start hints that re-fit as a feasible incumbent vs. hints
    that no longer fit the current level/calendars (the run is then
    cold).  Deliberately *not* a ``*_hits``/``*_misses`` pair: the
    incumbent machinery is not a cache, and the pair suffix is
    reserved for caches owned by the
    :class:`~repro.core.context.SchedulingContext`.
``dp.greedy_incumbents``
    Cold-hint recoveries: the warm-start hint no longer re-fit, but a
    greedy descent still produced a feasible incumbent to prune with.
``dp.transfer_cache_hits`` / ``dp.transfer_cache_misses``
    Per-``(transfer, src, dst)`` transfer-time memoization — the
    context's per-(job, transfer model) lag memo.
``dp.fit_cache_hits`` / ``dp.fit_cache_misses``
    The context's version-keyed ``earliest_fit`` memo shared across DP
    calls; a hit means the node's calendar is provably unchanged since
    the answer was computed.
``dp.fit_cache_evictions``
    Single entries dropped by the fit cache's LRU bound (was a
    wholesale-clear count before the context refactor).
``dp.duration_cache_hits`` / ``dp.duration_cache_misses``
    The context's per-job (task, node, level) duration memo.
``dp.warm_fallbacks``
    Warm runs that fell back to a cold pass (defensive; expected 0).
``dp.transfer_matrix_builds``
    Per-(job, model, pool) transfer-lag matrices precomputed for the
    batch engine (replacing per-edge transfer-time calls).
``placement.batch_queries`` / ``placement.rows_per_batch``
    Batched gap-table placement-kernel invocations and the total query
    rows they answered; the ratio is the batching factor.
``placement.gap_table_hits`` / ``placement.gap_table_misses``
    The context's version-keyed gap-table cache (a miss derives the
    table from the reservation list — the former
    ``placement.gap_rebuilds``); ``placement.gap_table_evictions``
    counts LRU drops.
``placement.stack_hits`` / ``placement.stack_misses``
    The context's stacked-array cache, keyed on version tuples (a miss
    concatenates — the former ``placement.stack_builds``);
    ``placement.stack_evictions`` counts LRU drops.
``flow.plan_cache_hits`` / ``flow.plan_cache_misses``
    Metascheduler strategy reuse through the context's two-tier plan
    cache, keyed semantically: skeletons by (job shape, family, domain)
    and concrete variants by (structural hash, release, epoch slice).
    A hit serves an identically structured plan against provably
    unchanged calendars; a miss generates cold.
    ``flow.plan_cache_evictions`` counts LRU drops on either tier.
``flow.plan_rebinds``
    Exact plan-cache hits whose cached strategy was generated for a
    *different* job id (a template sibling with the same structural
    hash); the strategy is re-tagged to the requesting job without any
    regeneration.  Always a subset of ``flow.plan_cache_hits``.
``flow.plan_repairs``
    Warm repairs — the middle outcome between a hit and a miss: a
    same-structure variant exists but its release or epochs drifted,
    so its per-level assignments seed a warm-started regeneration that
    re-searches only what no longer fits (bit-identical to a cold
    replan).  The plan-cache *reuse rate* the strict perf gate floors
    is (hits + repairs) / (hits + repairs + misses).
``flow.plan_coarse_hits`` / ``flow.plan_coarse_misses``
    The plan cache's coarse seed tier, consulted only on cold misses
    (no exact variant, no same-structure repair seed): a hit found a
    prior strategy for the same (family, domain, pool signature) —
    regardless of job shape — whose assignments warm-start the
    regeneration; a miss means generation ran fully cold.  The
    all-unique-jobs fallback: seeds only hint the warm start, so
    outcomes stay bit-identical either way.
``flow.speculative_fresh`` / ``flow.speculative_wasted``
    Speculative pre-planning outcomes in the online flow: pending jobs
    re-planned during their decision lag whose warmed epochs were
    still current at commit time vs. overtaken by later drift.
    Deliberately *not* a ``*_hits``/``*_misses`` pair — speculation is
    a cache-warming policy, not a cache, and the pair suffix is
    reserved for :class:`~repro.core.context.SchedulingContext`
    caches.
``critical_works.rank_cache_hits`` / ``..._misses``
    Reuse of the context's per-(job, model, pool, level) critical-works
    ranking.
``job.paths_cache_hits`` / ``job.paths_cache_misses``
    Reuse of the context's per-job source→sink path enumeration.
``platform.store_served`` / ``platform.store_absent`` /
``platform.store_corrupt``
    Content-addressed result-store reads (``repro.platform.store``):
    verified records served without recomputation, keys with no record
    on disk, and records that existed but failed digest/key
    verification (treated as absent and recomputed).  Deliberately
    *not* a ``*_hits``/``*_misses`` pair — the store is a cross-run
    on-disk cache keyed by config content, not a
    :class:`~repro.core.context.SchedulingContext` cache, and the pair
    suffix is reserved for those.

Every ``*_hits``/``*_misses`` pair above is emitted by exactly one
cache owned by the :class:`~repro.core.context.SchedulingContext`
(see ``CONTEXT_CACHE_NAMES``); ``tests/perf/test_counter_audit.py``
enforces the invariant so orphaned pairs cannot accumulate.

Timer names
-----------

``strategy.generate``
    Wall time spent building whole strategies (all levels).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PerfRegistry", "PERF", "cache_stats", "derive_cache_stats"]


def derive_cache_stats(counters: dict[str, int]
                       ) -> dict[str, dict[str, float]]:
    """Derive per-cache hit statistics from ``*_hits``/``*_misses`` pairs.

    Every counter pair named ``<cache>_hits`` / ``<cache>_misses``
    (either side may be absent and defaults to 0) yields one entry
    ``{<cache>: {"hits": h, "misses": m, "hit_rate": h / (h + m)}}``.
    Used by the benchmark report and ``repro perf --json`` so cache
    effectiveness is visible next to the timings.  Each derived name
    must correspond to a :class:`~repro.core.context.SchedulingContext`
    cache (``CONTEXT_CACHE_NAMES``) — the counter audit test keeps the
    two in lockstep.
    """
    names = {name[: -len(suffix)]
             for name in counters
             for suffix in ("_hits", "_misses")
             if name.endswith(suffix)}
    stats: dict[str, dict[str, float]] = {}
    for name in sorted(names):
        hits = int(counters.get(f"{name}_hits", 0))
        misses = int(counters.get(f"{name}_misses", 0))
        total = hits + misses
        stats[name] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }
    return stats


#: Backwards-compatible alias (pre-PR 5 name).
cache_stats = derive_cache_stats


class PerfRegistry:
    """Process-global performance counters and phase timers."""

    __slots__ = ("enabled", "counters", "timers")

    def __init__(self) -> None:
        #: Hot paths check this flag before reporting; keep it cheap.
        self.enabled: bool = False
        self.counters: dict[str, int] = {}
        #: Accumulated wall seconds per phase name.
        self.timers: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable(self) -> None:
        """Start collecting (does not clear previous numbers)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop collecting; accumulated numbers stay readable."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every counter and timer."""
        self.counters.clear()
        self.timers.clear()

    @contextmanager
    def collecting(self, reset: bool = True) -> Iterator["PerfRegistry"]:
        """Enable within a block, restoring the previous state after."""
        was_enabled = self.enabled
        if reset:
            self.reset()
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = was_enabled

    # ------------------------------------------------------------------
    # Reporting (call sites guard on ``enabled``)
    # ------------------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the block's wall time under ``name``.

        Reports only when the registry is enabled at entry, so call
        sites can use it unconditionally.
        """
        if not self.enabled:
            yield
            return
        started = time.perf_counter()  # lint: perf-timer — real elapsed time
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started  # lint: perf-timer
            self.timers[name] = self.timers.get(name, 0.0) + elapsed

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, float]]:
        """A JSON-ready copy of the current numbers."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {name: round(seconds, 6)
                       for name, seconds in sorted(self.timers.items())},
        }

    def merge(self, other: "PerfRegistry | dict") -> None:
        """Fold another registry's numbers into this one.

        Accepts a :class:`PerfRegistry`, a :meth:`snapshot` dict, or a
        :meth:`delta` dict — whatever a worker process shipped back.
        Counters add; timers add (they accumulate wall seconds).  This
        is how sharded planning keeps worker-side cache hits visible:
        each worker collects into its own process-global registry,
        returns a snapshot delta with its results, and the parent
        merges, so ``repro perf --json`` reports the whole fleet.
        """
        if isinstance(other, PerfRegistry):
            counters, timers = other.counters, other.timers
        else:
            counters = other.get("counters", {})
            timers = other.get("timers", {})
        for name, amount in counters.items():
            self.counters[name] = self.counters.get(name, 0) + int(amount)
        for name, seconds in timers.items():
            self.timers[name] = self.timers.get(name, 0.0) + float(seconds)

    def delta(self, since: dict) -> dict[str, dict[str, float]]:
        """The numbers accrued since an earlier :meth:`snapshot`.

        Returns a snapshot-shaped dict holding only positive
        differences — the payload a worker sends back per task so
        re-merging can never double-count work reported earlier.
        """
        base_counters = since.get("counters", {})
        base_timers = since.get("timers", {})
        counters = {
            name: value - int(base_counters.get(name, 0))
            for name, value in sorted(self.counters.items())
            if value - int(base_counters.get(name, 0)) > 0}
        timers = {
            name: round(seconds - float(base_timers.get(name, 0.0)), 6)
            for name, seconds in sorted(self.timers.items())
            if seconds - float(base_timers.get(name, 0.0)) > 0}
        return {"counters": counters, "timers": timers}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return (f"<PerfRegistry {state}: {len(self.counters)} counters, "
                f"{len(self.timers)} timers>")


#: The process-global registry the kernel reports into.
PERF = PerfRegistry()
