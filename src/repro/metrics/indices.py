"""Efficiency indices of the paper's Section 4 evaluation.

Aggregates per-job scheduling outcomes into the quantities printed in
Figs. 3 and 4: admissible-schedule percentages, collision splits by node
group, average node load levels, relative job completion cost, relative
task execution time, strategy time-to-live, and start-deviation ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..core.collisions import CollisionStats
from ..core.resources import NodeGroup
from ..core.strategy import Strategy, StrategyType
from .stats import mean, percentage

__all__ = ["ROW_SCHEMA_VERSION", "StrategyAggregate",
           "aggregate_strategies"]

#: Version tag of the :meth:`StrategyAggregate.to_row` /
#: :meth:`CoordinatedRow.to_row` layouts.  It participates in every
#: study-grid cell key, so bumping it orphans (rather than misreads)
#: cached cells written under the old layout.
ROW_SCHEMA_VERSION = 1


@dataclass
class StrategyAggregate:
    """Accumulated statistics for one strategy family."""

    #: Explicit serialization order — exported tables stay diffable
    #: across runs because column order never depends on dict whims.
    ROW_FIELDS = ("stype", "jobs", "admissible_jobs", "collisions",
                  "generation_expense", "costs", "makespans", "coverages")

    stype: StrategyType
    jobs: int = 0
    admissible_jobs: int = 0
    collisions: CollisionStats = field(default_factory=CollisionStats)
    generation_expense: int = 0
    costs: list[float] = field(default_factory=list)
    makespans: list[int] = field(default_factory=list)
    coverages: list[float] = field(default_factory=list)

    def add(self, strategy: Strategy) -> None:
        """Fold one generated strategy into the aggregate."""
        self.jobs += 1
        if strategy.admissible:
            self.admissible_jobs += 1
        self.collisions = self.collisions.merge(
            CollisionStats.of(strategy.all_collisions()))
        self.generation_expense += strategy.generation_expense
        self.coverages.append(strategy.coverage)
        best = strategy.best_schedule()
        if best is not None:
            self.costs.append(best.outcome.cost)
            self.makespans.append(best.outcome.makespan)

    def merge(self, other: "StrategyAggregate") -> None:
        """Fold another aggregate of the same family into this one.

        Appending ``other``'s samples in order keeps the merged lists
        identical to adding the underlying strategies directly — the
        parallel study runner relies on this for its deterministic,
        bit-identical merge.
        """
        if other.stype is not self.stype:
            raise ValueError(
                f"cannot merge {other.stype} aggregate into {self.stype}")
        self.jobs += other.jobs
        self.admissible_jobs += other.admissible_jobs
        self.collisions = self.collisions.merge(other.collisions)
        self.generation_expense += other.generation_expense
        self.costs.extend(other.costs)
        self.makespans.extend(other.makespans)
        self.coverages.extend(other.coverages)

    def to_row(self) -> dict[str, Any]:
        """A flat, JSON-ready row in :data:`ROW_FIELDS` order.

        Enums flatten to names and the collision tally to a
        ``{group name: count}`` mapping in :class:`NodeGroup`
        declaration order, so equal aggregates always serialize to
        equal bytes.
        """
        values: dict[str, Any] = {
            "stype": self.stype.name,
            "jobs": self.jobs,
            "admissible_jobs": self.admissible_jobs,
            "collisions": {group.name: self.collisions.by_group[group]
                           for group in NodeGroup},
            "generation_expense": self.generation_expense,
            "costs": list(self.costs),
            "makespans": list(self.makespans),
            "coverages": list(self.coverages),
        }
        row = {"row_schema": ROW_SCHEMA_VERSION}
        row.update((name, values[name]) for name in self.ROW_FIELDS)
        return row

    @classmethod
    def from_row(cls, row: Mapping[str, Any]) -> "StrategyAggregate":
        """Rebuild from :meth:`to_row` output (extra keys ignored, so
        grid rows — which prepend axis coordinates — feed in directly)."""
        schema = row.get("row_schema")
        if schema != ROW_SCHEMA_VERSION:
            raise ValueError(
                f"aggregate row schema {schema!r} != {ROW_SCHEMA_VERSION}")
        collisions = CollisionStats()
        for name, count in row["collisions"].items():
            collisions.by_group[NodeGroup[name]] = int(count)
        return cls(
            stype=StrategyType[row["stype"]],
            jobs=int(row["jobs"]),
            admissible_jobs=int(row["admissible_jobs"]),
            collisions=collisions,
            generation_expense=int(row["generation_expense"]),
            costs=[float(v) for v in row["costs"]],
            makespans=[int(v) for v in row["makespans"]],
            coverages=[float(v) for v in row["coverages"]],
        )

    @property
    def admissible_pct(self) -> float:
        """Fig. 3a: percentage of jobs with an admissible schedule."""
        return percentage(self.admissible_jobs, self.jobs)

    @property
    def collision_split(self) -> tuple[float, float]:
        """Fig. 3b: collision shares on fast vs slower nodes (percent)."""
        fast, slow = self.collisions.fast_vs_slow()
        return (100.0 * fast, 100.0 * slow)

    @property
    def mean_cost(self) -> float:
        """Average CF of the chosen supporting schedules."""
        return mean(self.costs)

    @property
    def mean_makespan(self) -> float:
        """Average completion time of the chosen schedules."""
        return mean(self.makespans)

    @property
    def mean_coverage(self) -> float:
        """Average fraction of covered estimation events."""
        return mean(self.coverages)

    @property
    def mean_expense(self) -> float:
        """Average DP evaluations per job (generation cost)."""
        if self.jobs == 0:
            return 0.0
        return self.generation_expense / self.jobs


def aggregate_strategies(strategies: Iterable[Strategy]
                         ) -> dict[StrategyType, StrategyAggregate]:
    """Group strategies by family and aggregate their statistics."""
    aggregates: dict[StrategyType, StrategyAggregate] = {}
    for strategy in strategies:
        bucket = aggregates.setdefault(
            strategy.stype, StrategyAggregate(stype=strategy.stype))
        bucket.add(strategy)
    return aggregates
