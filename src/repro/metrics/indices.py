"""Efficiency indices of the paper's Section 4 evaluation.

Aggregates per-job scheduling outcomes into the quantities printed in
Figs. 3 and 4: admissible-schedule percentages, collision splits by node
group, average node load levels, relative job completion cost, relative
task execution time, strategy time-to-live, and start-deviation ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.collisions import CollisionStats
from ..core.strategy import Strategy, StrategyType
from .stats import mean, percentage

__all__ = ["StrategyAggregate", "aggregate_strategies"]


@dataclass
class StrategyAggregate:
    """Accumulated statistics for one strategy family."""

    stype: StrategyType
    jobs: int = 0
    admissible_jobs: int = 0
    collisions: CollisionStats = field(default_factory=CollisionStats)
    generation_expense: int = 0
    costs: list[float] = field(default_factory=list)
    makespans: list[int] = field(default_factory=list)
    coverages: list[float] = field(default_factory=list)

    def add(self, strategy: Strategy) -> None:
        """Fold one generated strategy into the aggregate."""
        self.jobs += 1
        if strategy.admissible:
            self.admissible_jobs += 1
        self.collisions = self.collisions.merge(
            CollisionStats.of(strategy.all_collisions()))
        self.generation_expense += strategy.generation_expense
        self.coverages.append(strategy.coverage)
        best = strategy.best_schedule()
        if best is not None:
            self.costs.append(best.outcome.cost)
            self.makespans.append(best.outcome.makespan)

    def merge(self, other: "StrategyAggregate") -> None:
        """Fold another aggregate of the same family into this one.

        Appending ``other``'s samples in order keeps the merged lists
        identical to adding the underlying strategies directly — the
        parallel study runner relies on this for its deterministic,
        bit-identical merge.
        """
        if other.stype is not self.stype:
            raise ValueError(
                f"cannot merge {other.stype} aggregate into {self.stype}")
        self.jobs += other.jobs
        self.admissible_jobs += other.admissible_jobs
        self.collisions = self.collisions.merge(other.collisions)
        self.generation_expense += other.generation_expense
        self.costs.extend(other.costs)
        self.makespans.extend(other.makespans)
        self.coverages.extend(other.coverages)

    @property
    def admissible_pct(self) -> float:
        """Fig. 3a: percentage of jobs with an admissible schedule."""
        return percentage(self.admissible_jobs, self.jobs)

    @property
    def collision_split(self) -> tuple[float, float]:
        """Fig. 3b: collision shares on fast vs slower nodes (percent)."""
        fast, slow = self.collisions.fast_vs_slow()
        return (100.0 * fast, 100.0 * slow)

    @property
    def mean_cost(self) -> float:
        """Average CF of the chosen supporting schedules."""
        return mean(self.costs)

    @property
    def mean_makespan(self) -> float:
        """Average completion time of the chosen schedules."""
        return mean(self.makespans)

    @property
    def mean_coverage(self) -> float:
        """Average fraction of covered estimation events."""
        return mean(self.coverages)

    @property
    def mean_expense(self) -> float:
        """Average DP evaluations per job (generation cost)."""
        if self.jobs == 0:
            return 0.0
        return self.generation_expense / self.jobs


def aggregate_strategies(strategies: Iterable[Strategy]
                         ) -> dict[StrategyType, StrategyAggregate]:
    """Group strategies by family and aggregate their statistics."""
    aggregates: dict[StrategyType, StrategyAggregate] = {}
    for strategy in strategies:
        bucket = aggregates.setdefault(
            strategy.stype, StrategyAggregate(stype=strategy.stype))
        bucket.add(strategy)
    return aggregates
