"""Efficiency indices and statistics helpers for the experiments."""

from .indices import StrategyAggregate, aggregate_strategies
from .stats import (
    confidence_interval,
    mean,
    normalize_relative,
    percentage,
    std,
)

__all__ = [
    "StrategyAggregate",
    "aggregate_strategies",
    "mean",
    "std",
    "confidence_interval",
    "normalize_relative",
    "percentage",
]
