"""Small statistics helpers for experiment aggregation."""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["mean", "std", "confidence_interval", "normalize_relative",
           "percentage"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 on empty input)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def std(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 with fewer than two values)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values)
                     / (len(values) - 1))


def confidence_interval(values: Sequence[float],
                        z: float = 1.96) -> tuple[float, float]:
    """Normal-approximation confidence interval for the mean."""
    values = list(values)
    if not values:
        return (0.0, 0.0)
    centre = mean(values)
    half = z * std(values) / math.sqrt(len(values))
    return (centre - half, centre + half)


def normalize_relative(values: dict[str, float]) -> dict[str, float]:
    """Scale a named series so its maximum is 1 (the paper's relative
    bars in Fig. 4b/4c)."""
    if not values:
        return {}
    peak = max(values.values())
    if peak <= 0:
        return {key: 0.0 for key in values}
    return {key: value / peak for key, value in values.items()}


def percentage(numerator: float, denominator: float) -> float:
    """Percentage with a zero-safe denominator."""
    if denominator == 0:
        return 0.0
    return 100.0 * numerator / denominator
