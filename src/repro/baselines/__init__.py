"""Baseline schedulers the paper's method is compared against:
independent-task heuristics (ref. [13]), HEFT list scheduling, and a
greedy earliest-finish co-allocator."""

from .adapters import (
    GreedyScheduler,
    HeftScheduler,
    IndependentTasksScheduler,
)
from .greedy import greedy_schedule
from .heuristics import Heuristic, MappingResult, map_independent_tasks
from .list_scheduling import heft_schedule, upward_ranks

__all__ = [
    "Heuristic",
    "MappingResult",
    "map_independent_tasks",
    "heft_schedule",
    "upward_ranks",
    "greedy_schedule",
    "GreedyScheduler",
    "HeftScheduler",
    "IndependentTasksScheduler",
]
