"""Greedy earliest-finish co-allocation: the ablation foil for the DP.

Walks the job in topological order and puts every task on the node
where it finishes earliest, with no lookahead and no cost optimization.
Comparing its CF cost against the critical works method isolates what
the dynamic programming actually buys (the abl-dp experiment).
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.calendar import ReservationCalendar
from ..core.job import Job
from ..core.resources import ResourcePool
from ..core.schedule import Distribution, Placement
from ..core.transfers import NeutralTransferModel, TransferModel

__all__ = ["greedy_schedule"]


def greedy_schedule(job: Job, pool: ResourcePool,
                    calendars: Mapping[int, ReservationCalendar],
                    transfer_model: Optional[TransferModel] = None,
                    level: float = 0.0,
                    release: int = 0) -> Optional[Distribution]:
    """Earliest-finish-first schedule, or None when the deadline breaks."""
    transfer_model = transfer_model or NeutralTransferModel()
    deadline = release + job.deadline if job.deadline else None
    working = {node_id: calendar.copy()
               for node_id, calendar in calendars.items()}
    placements: dict[str, Placement] = {}

    for task_id in job.topological_order():
        task = job.task(task_id)
        best: Optional[Placement] = None
        for node in pool:
            ready = release
            for pred in job.predecessors(task_id):
                pred_place = placements[pred]
                transfer = job.transfer_between(pred, task_id)
                lag = transfer_model.time(
                    transfer, pool.node(pred_place.node_id), node)
                ready = max(ready, pred_place.end + lag)
            duration = task.duration_on(node.performance, level)
            start = working[node.node_id].earliest_fit(
                duration, earliest=ready, deadline=deadline)
            if start is None:
                continue
            candidate = Placement(task_id, node.node_id, start,
                                  start + duration)
            if best is None or (candidate.end, candidate.start,
                                candidate.node_id) < (best.end, best.start,
                                                      best.node_id):
                best = candidate
        if best is None:
            return None
        placements[task_id] = best
        working[best.node_id].reserve(best.start, best.end, tag=task_id)

    return Distribution(job.job_id, placements.values(), scenario="greedy")
