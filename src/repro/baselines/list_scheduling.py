"""HEFT-style list scheduling: the standard application-level baseline.

Heterogeneous Earliest Finish Time ranks tasks by *upward rank* (mean
execution time plus mean transfer time to the sink) and assigns each, in
rank order, to the node minimizing its earliest finish time, with an
insertion policy that reuses idle gaps.  Unlike the critical works
method it optimizes makespan, not cost, and carries no notion of
supporting schedules — making it the natural comparator for the
ablation experiments.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.calendar import ReservationCalendar
from ..core.job import Job
from ..core.resources import ResourcePool
from ..core.schedule import Distribution, Placement
from ..core.transfers import NeutralTransferModel, TransferModel

__all__ = ["upward_ranks", "heft_schedule"]


def upward_ranks(job: Job, pool: ResourcePool,
                 transfer_model: Optional[TransferModel] = None,
                 level: float = 0.0) -> dict[str, float]:
    """HEFT upward ranks: critical-path-to-sink lengths on mean speeds."""
    transfer_model = transfer_model or NeutralTransferModel()
    mean_perf = sum(n.performance for n in pool) / len(pool)
    ranks: dict[str, float] = {}

    for task_id in reversed(job.topological_order()):
        mean_exec = job.task(task_id).base_time(level) / mean_perf
        best_tail = 0.0
        for succ in job.successors(task_id):
            transfer = job.transfer_between(task_id, succ)
            tail = transfer_model.estimate(transfer) + ranks[succ]
            best_tail = max(best_tail, tail)
        ranks[task_id] = mean_exec + best_tail
    return ranks


def heft_schedule(job: Job, pool: ResourcePool,
                  calendars: Mapping[int, ReservationCalendar],
                  transfer_model: Optional[TransferModel] = None,
                  level: float = 0.0,
                  release: int = 0) -> Optional[Distribution]:
    """Schedule a compound job with HEFT against busy calendars.

    Returns None when some task cannot be placed before the job's
    deadline (with a deadline of 0 the horizon is unbounded).
    """
    transfer_model = transfer_model or NeutralTransferModel()
    ranks = upward_ranks(job, pool, transfer_model, level)
    order = sorted(job.tasks, key=lambda t: (-ranks[t], t))

    deadline = release + job.deadline if job.deadline else None
    working = {node_id: calendar.copy()
               for node_id, calendar in calendars.items()}
    placements: dict[str, Placement] = {}

    for task_id in order:
        task = job.task(task_id)
        best: Optional[Placement] = None
        for node in pool:
            ready = release
            for pred in job.predecessors(task_id):
                pred_place = placements.get(pred)
                if pred_place is None:
                    # Rank order does not always respect precedence when
                    # ranks tie oddly; treat unplaced preds as release.
                    continue
                transfer = job.transfer_between(pred, task_id)
                lag = transfer_model.time(
                    transfer, pool.node(pred_place.node_id), node)
                ready = max(ready, pred_place.end + lag)
            duration = task.duration_on(node.performance, level)
            start = working[node.node_id].earliest_fit(
                duration, earliest=ready, deadline=deadline)
            if start is None:
                continue
            candidate = Placement(task_id, node.node_id, start,
                                  start + duration)
            if best is None or (candidate.end, candidate.start,
                                candidate.node_id) < (best.end, best.start,
                                                      best.node_id):
                best = candidate
        if best is None:
            return None
        placements[task_id] = best
        working[best.node_id].reserve(best.start, best.end, tag=task_id)

    return Distribution(job.job_id, placements.values(), scenario="heft")
