"""Scheduler-protocol adapters for the baseline schedulers.

The baselines historically exposed three call shapes: the greedy and
HEFT co-allocators return a bare ``Distribution`` (or None), and the
independent-task heuristics return a ``MappingResult`` that ignores
precedence entirely.  These adapters wrap each shape behind the
:class:`repro.core.context.Scheduler` protocol —
``schedule(job, pool, calendars, *, context, level, release)`` →
:class:`~repro.core.critical_works.SchedulingOutcome` — so experiments
and the bench dispatch every scheduler the same way the critical-works
method is dispatched.

Outcomes are priced with the same accounting model as the
critical-works scheduler (the paper's CF by default), which is what
makes the ablation's cost columns comparable.  The adapters are
stateless and ignore the ``context`` argument: the baselines have no
caches to share, and accepting it keeps the protocol uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.calendar import ReservationCalendar
from ..core.context import SchedulingContext
from ..core.costs import CostModel, VolumeOverTimeCost, distribution_cost
from ..core.critical_works import SchedulingOutcome
from ..core.job import Job
from ..core.resources import ResourcePool
from ..core.schedule import Distribution, check_distribution
from ..core.transfers import TransferModel
from .greedy import greedy_schedule
from .heuristics import Heuristic, map_independent_tasks
from .list_scheduling import heft_schedule

__all__ = ["GreedyScheduler", "HeftScheduler", "IndependentTasksScheduler"]


def _outcome_from_distribution(distribution: Optional[Distribution],
                               job: Job, pool: ResourcePool,
                               accounting_model: CostModel,
                               level: float) -> SchedulingOutcome:
    """Wrap a baseline's Distribution-or-None into a SchedulingOutcome.

    The co-allocating baselines return None exactly when some task
    missed the deadline, so admissibility is the non-None check.
    """
    outcome = SchedulingOutcome(job_id=job.job_id, distribution=distribution,
                                admissible=distribution is not None,
                                level=level)
    if distribution is not None:
        outcome.cost = distribution_cost(distribution, job, pool,
                                         accounting_model)
        outcome.makespan = distribution.makespan
    return outcome


@dataclass
class GreedyScheduler:
    """Earliest-finish-first co-allocator behind the Scheduler protocol.

    Wraps :func:`repro.baselines.greedy.greedy_schedule`; DAG-aware but
    cost-blind, the paper's "no optimization" comparison point.
    """

    transfer_model: Optional[TransferModel] = None
    accounting_model: CostModel = field(default_factory=VolumeOverTimeCost)

    def schedule(self, job: Job, pool: ResourcePool,
                 calendars: Mapping[int, ReservationCalendar], *,
                 context: Optional[SchedulingContext] = None,
                 level: float = 0.0,
                 release: int = 0) -> SchedulingOutcome:
        distribution = greedy_schedule(job, pool, calendars,
                                       transfer_model=self.transfer_model,
                                       level=level, release=release)
        return _outcome_from_distribution(distribution, job, pool,
                                          self.accounting_model, level)


@dataclass
class HeftScheduler:
    """HEFT list scheduling behind the Scheduler protocol.

    Wraps :func:`repro.baselines.list_scheduling.heft_schedule`; the
    makespan-objective DAG baseline.
    """

    transfer_model: Optional[TransferModel] = None
    accounting_model: CostModel = field(default_factory=VolumeOverTimeCost)

    def schedule(self, job: Job, pool: ResourcePool,
                 calendars: Mapping[int, ReservationCalendar], *,
                 context: Optional[SchedulingContext] = None,
                 level: float = 0.0,
                 release: int = 0) -> SchedulingOutcome:
        distribution = heft_schedule(job, pool, calendars,
                                     transfer_model=self.transfer_model,
                                     level=level, release=release)
        return _outcome_from_distribution(distribution, job, pool,
                                          self.accounting_model, level)


@dataclass
class IndependentTasksScheduler:
    """Independent-task heuristics (min-min & co) behind the protocol.

    Wraps :func:`repro.baselines.heuristics.map_independent_tasks` —
    the structure-blindness baseline: precedence and transfer lags are
    ignored during mapping, then re-checked on the resulting
    distribution.  Admissibility therefore means "the mapping happens
    to satisfy precedence *and* the deadline", matching how the
    ablation has always scored it.  Background calendars are likewise
    ignored (the heuristics assume dedicated nodes).
    """

    heuristic: Heuristic = Heuristic.MIN_MIN
    accounting_model: CostModel = field(default_factory=VolumeOverTimeCost)

    def schedule(self, job: Job, pool: ResourcePool,
                 calendars: Mapping[int, ReservationCalendar], *,
                 context: Optional[SchedulingContext] = None,
                 level: float = 0.0,
                 release: int = 0) -> SchedulingOutcome:
        mapping = map_independent_tasks(list(job.tasks.values()), pool,
                                        self.heuristic, level=level)
        distribution = Distribution(job.job_id, mapping.placements.values())
        violations = check_distribution(job, distribution, pool)
        admissible = not violations and (
            not job.deadline
            or distribution.makespan <= release + job.deadline)
        outcome = SchedulingOutcome(job_id=job.job_id,
                                    distribution=distribution,
                                    admissible=admissible, level=level)
        outcome.cost = distribution_cost(distribution, job, pool,
                                         self.accounting_model)
        outcome.makespan = distribution.makespan
        return outcome
