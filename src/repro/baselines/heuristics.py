"""Static mapping heuristics for independent tasks.

The paper cites (ref. [13]) the classic comparison of eleven static
heuristics for mapping independent tasks onto heterogeneous systems.
The six standard members implemented here serve as flow-level baselines
for the strategies framework:

* **OLB** (opportunistic load balancing) — next task to the earliest
  ready node, ignoring execution times;
* **MET** (minimum execution time) — each task to its fastest node,
  ignoring load;
* **MCT** (minimum completion time) — each task to the node finishing
  it soonest;
* **min-min** — among all unmapped tasks, map the one with the smallest
  best completion time first;
* **max-min** — like min-min but the *largest* best completion first;
* **sufferage** — map the task that would suffer most if denied its
  best node (largest gap between best and second-best completion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.job import Task
from ..core.resources import ProcessorNode, ResourcePool
from ..core.schedule import Placement

__all__ = ["Heuristic", "MappingResult", "map_independent_tasks"]


class Heuristic(enum.Enum):
    """The implemented members of ref. [13]'s heuristic family."""

    OLB = "olb"
    MET = "met"
    MCT = "mct"
    MIN_MIN = "min-min"
    MAX_MIN = "max-min"
    SUFFERAGE = "sufferage"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class MappingResult:
    """A complete mapping of independent tasks to nodes."""

    placements: dict[str, Placement]
    heuristic: Heuristic

    @property
    def makespan(self) -> int:
        """Completion time of the last task."""
        if not self.placements:
            return 0
        return max(p.end for p in self.placements.values())

    @property
    def flowtime(self) -> int:
        """Sum of completion times (a responsiveness proxy)."""
        return sum(p.end for p in self.placements.values())

    def node_finish_times(self) -> dict[int, int]:
        """Ready time of every used node after the mapping."""
        ready: dict[int, int] = {}
        for placement in self.placements.values():
            ready[placement.node_id] = max(
                ready.get(placement.node_id, 0), placement.end)
        return ready


def _duration(task: Task, node: ProcessorNode, level: float) -> int:
    return task.duration_on(node.performance, level)


def map_independent_tasks(tasks: Sequence[Task], pool: ResourcePool,
                          heuristic: Heuristic,
                          level: float = 0.0,
                          ready: Optional[dict[int, int]] = None
                          ) -> MappingResult:
    """Map independent tasks with one of the classic heuristics.

    ``ready`` optionally pre-loads node ready times (e.g. existing
    background work); nodes default to ready at slot 0.
    """
    if ready is None:
        ready = {}
    ready_times = {node.node_id: ready.get(node.node_id, 0)
                   for node in pool}
    if not ready_times:
        raise ValueError("empty resource pool")
    placements: dict[str, Placement] = {}

    def completion(task: Task, node: ProcessorNode) -> int:
        return ready_times[node.node_id] + _duration(task, node, level)

    def assign(task: Task, node: ProcessorNode) -> None:
        start = ready_times[node.node_id]
        end = start + _duration(task, node, level)
        placements[task.task_id] = Placement(
            task.task_id, node.node_id, start, end)
        ready_times[node.node_id] = end

    if heuristic in (Heuristic.OLB, Heuristic.MET, Heuristic.MCT):
        for task in tasks:
            if heuristic is Heuristic.OLB:
                node = min(pool, key=lambda n: (ready_times[n.node_id],
                                                n.node_id))
            elif heuristic is Heuristic.MET:
                node = min(pool, key=lambda n: (_duration(task, n, level),
                                                n.node_id))
            else:  # MCT
                node = min(pool, key=lambda n: (completion(task, n),
                                                n.node_id))
            assign(task, node)
        return MappingResult(placements, heuristic)

    # Batch-mode heuristics: min-min, max-min, sufferage.
    unmapped = list(tasks)
    while unmapped:
        # Best and second-best completion per task under current loads.
        best: dict[str, tuple[int, ProcessorNode]] = {}
        second: dict[str, int] = {}
        for task in unmapped:
            scored = sorted(
                ((completion(task, node), node.node_id, node)
                 for node in pool),
                key=lambda item: item[:2])
            best[task.task_id] = (scored[0][0], scored[0][2])
            second[task.task_id] = (scored[1][0] if len(scored) > 1
                                    else scored[0][0])

        if heuristic is Heuristic.MIN_MIN:
            chosen = min(unmapped,
                         key=lambda t: (best[t.task_id][0], t.task_id))
        elif heuristic is Heuristic.MAX_MIN:
            chosen = max(unmapped,
                         key=lambda t: (best[t.task_id][0],
                                        # stable: earliest id on ties
                                        [-ord(c) for c in t.task_id]))
        elif heuristic is Heuristic.SUFFERAGE:
            chosen = max(unmapped,
                         key=lambda t: (second[t.task_id]
                                        - best[t.task_id][0],
                                        [-ord(c) for c in t.task_id]))
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown heuristic {heuristic}")

        assign(chosen, best[chosen.task_id][1])
        unmapped.remove(chosen)

    return MappingResult(placements, heuristic)
