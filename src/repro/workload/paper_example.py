"""The exact worked example of the paper's Fig. 2.

The information graph has six tasks ``P1..P6`` and eight data transfers
``D1..D8``::

    P1 ──D1──▶ P2 ──D3──▶ P4 ──D7──▶ P6
     │          └──D4──▶ P5 ──D8──▶ P6
     └──D2──▶ P3 ──D5──▶ P4
                └──D6──▶ P5

(P4 and P6 also receive D5/D8 as drawn above; precisely: P1→{P2,P3},
{P2,P3}→{P4,P5}, {P4,P5}→P6.)

The estimate table gives, per task, the execution times on the four
node types (performance 1, 1/2, 1/3, 1/4) and the relative volumes:

    task      P1  P2  P3  P4  P5  P6
    T_i1       2   3   1   2   1   2
    T_i2       4   6   2   4   2   4
    T_i3       6   9   3   6   3   6
    T_i4       8  12   4   8   4   8
    V_i       20  30  10  20  10  20

With unit transfer times the four critical works measure 12, 11, 10 and
9 slots on type-1 nodes — exactly the figures quoted in Section 3.
"""

from __future__ import annotations

from ..core.job import DataTransfer, Job, Task
from ..core.resources import ResourcePool

__all__ = [
    "FIG2_TASK_BASE_TIMES",
    "FIG2_TASK_VOLUMES",
    "FIG2_DEADLINE",
    "fig2_job",
    "fig2_pool",
    "fig2_estimate_table",
]

#: Base (type-1 node) execution times from the Fig. 2 table's first row.
FIG2_TASK_BASE_TIMES: dict[str, int] = {
    "P1": 2, "P2": 3, "P3": 1, "P4": 2, "P5": 1, "P6": 2,
}

#: Relative computation volumes from the Fig. 2 table's last row.
FIG2_TASK_VOLUMES: dict[str, int] = {
    "P1": 20, "P2": 30, "P3": 10, "P4": 20, "P5": 10, "P6": 20,
}

#: The distributions in Fig. 2b span a 0..20 time axis.
FIG2_DEADLINE = 20

#: Edges of the information graph, in D1..D8 order.
_FIG2_EDGES: tuple[tuple[str, str], ...] = (
    ("P1", "P2"),  # D1
    ("P1", "P3"),  # D2
    ("P2", "P4"),  # D3
    ("P2", "P5"),  # D4
    ("P3", "P4"),  # D5
    ("P3", "P5"),  # D6
    ("P4", "P6"),  # D7
    ("P5", "P6"),  # D8
)


def fig2_job(deadline: int = FIG2_DEADLINE) -> Job:
    """The compound job of the Fig. 2 worked example."""
    tasks = [
        Task(task_id, volume=FIG2_TASK_VOLUMES[task_id],
             best_time=FIG2_TASK_BASE_TIMES[task_id])
        for task_id in FIG2_TASK_BASE_TIMES
    ]
    transfers = [
        DataTransfer(f"D{index + 1}", src, dst, volume=1.0, base_time=1)
        for index, (src, dst) in enumerate(_FIG2_EDGES)
    ]
    return Job("fig2", tasks, transfers, deadline=deadline)


def fig2_pool() -> ResourcePool:
    """One node of each of the four types (performance 1, ½, ⅓, ¼)."""
    return ResourcePool.fig2_pool()


def fig2_estimate_table() -> dict[str, list[int]]:
    """The full T_ij table (rows Ti1..Ti4 per task), for display/tests."""
    pool = fig2_pool()
    return {
        task_id: [Task(task_id, FIG2_TASK_VOLUMES[task_id],
                       base).duration_on(node.performance)
                  for node in pool]
        for task_id, base in FIG2_TASK_BASE_TIMES.items()
    }
