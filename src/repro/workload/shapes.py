"""Canonical compound-job shapes.

Deterministic builders for the DAG families that recur in scheduling
literature — handy as test fixtures and for studying how the critical
works method behaves on known structures (a pure chain has exactly one
critical work; a fork-join of width *w* has *w* competing ones).
"""

from __future__ import annotations

from typing import Optional

from ..core.job import DataTransfer, Job, Task

__all__ = ["chain_job", "fork_join_job", "diamond_job", "intree_job"]


def _task(index: int, base_time: int, volume_rate: float,
          spread: float) -> Task:
    best = base_time
    worst = max(best, round(best * spread))
    return Task(f"P{index}", volume=round(best * volume_rate, 2),
                best_time=best, worst_time=worst)


def chain_job(length: int = 4, base_time: int = 2,
              transfer_time: int = 1, volume_rate: float = 10.0,
              spread: float = 1.5, deadline: Optional[int] = None,
              job_id: str = "chain") -> Job:
    """A pure pipeline P1 → P2 → ... → Pn (one critical work)."""
    if length < 1:
        raise ValueError(f"length must be positive, got {length}")
    tasks = [_task(i + 1, base_time, volume_rate, spread)
             for i in range(length)]
    transfers = [
        DataTransfer(f"D{i + 1}", f"P{i + 1}", f"P{i + 2}",
                     base_time=transfer_time)
        for i in range(length - 1)
    ]
    job = Job(job_id, tasks, transfers, deadline=0)
    return Job(job_id, tasks, transfers,
               deadline=deadline if deadline is not None
               else 2 * job.minimal_makespan(1.0))


def fork_join_job(width: int = 3, base_time: int = 2,
                  transfer_time: int = 1, volume_rate: float = 10.0,
                  spread: float = 1.5, deadline: Optional[int] = None,
                  job_id: str = "forkjoin") -> Job:
    """Source → *width* parallel branches → sink (*width* critical works)."""
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    tasks = [_task(1, base_time, volume_rate, spread)]
    transfers: list[DataTransfer] = []
    for branch in range(width):
        index = branch + 2
        tasks.append(_task(index, base_time, volume_rate, spread))
        transfers.append(DataTransfer(f"Din{branch + 1}", "P1",
                                      f"P{index}",
                                      base_time=transfer_time))
    sink = width + 2
    tasks.append(_task(sink, base_time, volume_rate, spread))
    for branch in range(width):
        transfers.append(DataTransfer(f"Dout{branch + 1}",
                                      f"P{branch + 2}", f"P{sink}",
                                      base_time=transfer_time))
    job = Job(job_id, tasks, transfers, deadline=0)
    return Job(job_id, tasks, transfers,
               deadline=deadline if deadline is not None
               else 2 * job.minimal_makespan(1.0))


def diamond_job(base_time: int = 2, transfer_time: int = 1,
                volume_rate: float = 10.0, spread: float = 1.5,
                deadline: Optional[int] = None,
                job_id: str = "diamond") -> Job:
    """The four-task diamond (fork-join of width 2)."""
    return fork_join_job(width=2, base_time=base_time,
                         transfer_time=transfer_time,
                         volume_rate=volume_rate, spread=spread,
                         deadline=deadline, job_id=job_id)


def intree_job(depth: int = 2, base_time: int = 2,
               transfer_time: int = 1, volume_rate: float = 10.0,
               spread: float = 1.5, deadline: Optional[int] = None,
               job_id: str = "intree") -> Job:
    """A complete binary in-tree: 2^depth leaves reduce to one root.

    The classic reduction/aggregation workload: every internal task
    consumes its two children's outputs.
    """
    if depth < 1:
        raise ValueError(f"depth must be positive, got {depth}")
    tasks: list[Task] = []
    transfers: list[DataTransfer] = []
    index = 0

    def build(level: int) -> str:
        """Create the subtree reducing into one task; returns its id."""
        nonlocal index
        index += 1
        task_index = index
        tasks.append(_task(task_index, base_time, volume_rate, spread))
        task_id = f"P{task_index}"
        if level > 0:
            for child in range(2):
                child_id = build(level - 1)
                transfers.append(DataTransfer(
                    f"D{child_id}-{task_id}", child_id, task_id,
                    base_time=transfer_time))
        return task_id

    build(depth)
    job = Job(job_id, tasks, transfers, deadline=0)
    return Job(job_id, tasks, transfers,
               deadline=deadline if deadline is not None
               else 2 * job.minimal_makespan(1.0))
