"""Random workload generation following Section 4's parameterization.

"Strategies for more than 12000 jobs with a fixed completion time were
studied.  Every task of a job had randomized completion time estimations,
computation volumes, data transfer times and volumes with a uniform
distribution.  These parameters for various tasks had difference which
was equal to 2...3.  Processor nodes were selected in accordance to their
relative performance ... 0.66…1 / 0.33…0.66 / 0.33 ... A number of nodes
was conformed to a job structure, i.e. a task parallelism degree, and was
varied from 20 to 30."

Jobs are layered DAGs: a source layer, interior layers whose width is
the job's parallelism degree, and a sink layer, with every non-source
task consuming at least one upstream output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..core.job import DataTransfer, Job, Task
from ..core.resources import ProcessorNode, ResourcePool
from ..core.units import ceil_units
from ..sim.rng import RandomStreams

__all__ = ["WorkloadConfig", "generate_job", "generate_pool",
           "generate_workload", "template_workload_factory",
           "TemplateWorkload"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the random workload (defaults follow Section 4)."""

    #: Interior layers of the task DAG (min, max inclusive).
    layers: tuple[int, int] = (1, 3)
    #: Tasks per interior layer — the parallelism degree (min, max).
    parallelism: tuple[int, int] = (2, 4)
    #: Base (reference-node) execution time of a task, uniform ints.
    base_time: tuple[int, int] = (2, 6)
    #: Worst-case multiplier over the best estimate (user uncertainty;
    #: the paper's "difference ... 2...3" is the across-task parameter
    #: spread, covered by the ``base_time``/``volume_rate`` ranges).
    estimate_spread: tuple[float, float] = (1.3, 1.8)
    #: Volume per base-time slot, uniform; V_i = rate × best_time.
    volume_rate: tuple[float, float] = (5.0, 15.0)
    #: Data transfer base times, uniform ints.
    transfer_time: tuple[int, int] = (1, 3)
    #: Data transfer volumes, uniform.
    transfer_volume: tuple[float, float] = (1.0, 3.0)
    #: Deadline = slack × critical path on the fastest node.
    deadline_slack: tuple[float, float] = (1.8, 2.8)
    #: Pool size range (paper: 20 to 30 nodes).
    pool_size: tuple[int, int] = (20, 30)
    #: Share of fast / medium nodes (the rest are slow at 0.33).
    fast_share: float = 0.3
    medium_share: float = 0.4

    def __post_init__(self) -> None:
        for name in ("layers", "parallelism", "base_time", "estimate_spread",
                     "volume_rate", "transfer_time", "transfer_volume",
                     "deadline_slack", "pool_size"):
            low, high = getattr(self, name)
            if low > high:
                raise ValueError(f"{name}: min {low} exceeds max {high}")
        if self.layers[0] < 1:
            raise ValueError("jobs need at least one interior layer")
        if self.parallelism[0] < 1:
            raise ValueError("parallelism must be at least 1")
        if self.base_time[0] < 1:
            raise ValueError("base_time must be at least 1")
        if not 0 <= self.fast_share + self.medium_share <= 1:
            raise ValueError("group shares must sum to at most 1")


def _uniform_int(rng: np.random.Generator, bounds: tuple[int, int]) -> int:
    return int(rng.integers(bounds[0], bounds[1] + 1))


def _uniform(rng: np.random.Generator, bounds: tuple[float, float]) -> float:
    return float(rng.uniform(bounds[0], bounds[1]))


def generate_job(rng: np.random.Generator, index: int,
                 config: Optional[WorkloadConfig] = None,
                 owner: str = "user") -> Job:
    """One random compound job with a fixed completion time."""
    config = config or WorkloadConfig()

    layer_sizes = [1]
    for _ in range(_uniform_int(rng, config.layers)):
        layer_sizes.append(_uniform_int(rng, config.parallelism))
    layer_sizes.append(1)

    tasks: list[Task] = []
    layers: list[list[str]] = []
    counter = 0
    for size in layer_sizes:
        layer: list[str] = []
        for _ in range(size):
            counter += 1
            task_id = f"P{counter}"
            best = _uniform_int(rng, config.base_time)
            worst = ceil_units(best * _uniform(rng, config.estimate_spread))
            volume = round(best * _uniform(rng, config.volume_rate), 2)
            tasks.append(Task(task_id, volume=volume, best_time=best,
                              worst_time=worst))
            layer.append(task_id)
        layers.append(layer)

    transfers: list[DataTransfer] = []
    edge_count = 0

    def add_edge(src: str, dst: str) -> None:
        nonlocal edge_count
        edge_count += 1
        transfers.append(DataTransfer(
            f"D{edge_count}", src, dst,
            volume=round(_uniform(rng, config.transfer_volume), 2),
            base_time=_uniform_int(rng, config.transfer_time)))

    seen_edges: set[tuple[str, str]] = set()
    for upstream, downstream in zip(layers, layers[1:]):
        # Every downstream task consumes at least one upstream output.
        for dst in downstream:
            src = upstream[int(rng.integers(0, len(upstream)))]
            seen_edges.add((src, dst))
        # Every upstream task feeds at least one downstream task.
        for src in upstream:
            if not any((src, dst) in seen_edges for dst in downstream):
                dst = downstream[int(rng.integers(0, len(downstream)))]
                seen_edges.add((src, dst))
    for src, dst in sorted(seen_edges):
        add_edge(src, dst)

    job = Job(f"job{index}", tasks, transfers, deadline=0, owner=owner)
    slack = _uniform(rng, config.deadline_slack)
    deadline = max(1, ceil_units(job.minimal_makespan(1.0) * slack))
    return Job(job.job_id, tasks, transfers, deadline=deadline, owner=owner)


def generate_pool(rng: np.random.Generator,
                  config: Optional[WorkloadConfig] = None,
                  domains: int = 3) -> ResourcePool:
    """A heterogeneous pool matching the paper's three node groups."""
    config = config or WorkloadConfig()
    if domains < 1:
        raise ValueError(f"domains must be at least 1, got {domains}")
    size = _uniform_int(rng, config.pool_size)
    n_fast = max(1, round(size * config.fast_share))
    n_medium = max(1, round(size * config.medium_share))
    n_slow = max(1, size - n_fast - n_medium)

    performances: list[float] = []
    performances.extend(
        round(float(rng.uniform(0.66, 1.0)), 3) for _ in range(n_fast))
    performances.extend(
        round(float(rng.uniform(0.34, 0.66)), 3) for _ in range(n_medium))
    performances.extend(0.33 for _ in range(n_slow))

    order = sorted(range(len(performances)),
                   key=lambda j: (-performances[j], j))
    rank_of = {j: rank for rank, j in enumerate(order)}
    nodes = [
        ProcessorNode(node_id=i + 1, performance=performances[i],
                      type_index=rank_of[i] + 1,
                      domain=f"domain{i % domains + 1}")
        for i in range(len(performances))
    ]
    return ResourcePool(nodes)


class TemplateWorkload:
    """A skewed template workload: few job classes, many arrivals.

    A picklable ``job_factory(rng, index) -> Job`` for
    :class:`~repro.flow.simulation.OnlineSimulation` and the sharded
    batch lane (worker processes regenerate their jobs from indices, so
    the factory must cross process boundaries — the reason this is a
    class and not a closure).  Construction is deterministic in its
    arguments: every unpickled copy rebuilds the same templates,
    so parent and workers clone identical jobs.

    Each arrival picks a template with probability proportional to its
    weight and is cloned under its own ``job_id`` — so arrivals of the
    same template share a structural hash (and all templates of one DAG
    shape share a shape hash), the identity the flow layer's plan cache
    reuses plans across.  This is the flash-crowd profile of a
    production job flow: a handful of dominant pipelines submitted over
    and over.  Clones are made with :meth:`~repro.core.job.Job.clone`,
    which shares the immutable structure and the cached structural and
    shape hashes (both exclude the job id and owner), so each arrival
    costs O(1) instead of re-validating the DAG and re-running the WL
    refinement — the difference is measurable at 10^5-arrival scale.
    """

    def __init__(self, weights: tuple[float, ...], template_seed: int = 7,
                 config: Optional[WorkloadConfig] = None,
                 owner: str = "user") -> None:
        if not weights:
            raise ValueError("at least one template weight is required")
        if any(weight <= 0 for weight in weights):
            raise ValueError(f"weights must be positive, got {weights}")
        self.weights = tuple(weights)
        self.template_seed = template_seed
        self.config = config
        self.owner = owner
        streams = RandomStreams(template_seed)
        self.templates = [
            generate_job(streams.fork("template", t), t, config, owner)
            for t in range(len(weights))]
        # Materialize the hash caches once, so clones copy values
        # instead of each paying the WL refinement.
        for template in self.templates:
            template.structural_hash
            template.shape_hash
        total = sum(weights)
        self.cumulative: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self.cumulative.append(acc)

    def __reduce__(self):
        # Rebuild from the defining arguments on unpickle: Job objects
        # themselves are cheaper to regenerate than to serialize, and
        # determinism guarantees an identical reconstruction.
        return (type(self), (self.weights, self.template_seed, self.config,
                             self.owner))

    def __call__(self, rng: np.random.Generator, index: int) -> Job:
        draw = float(rng.random())
        chosen = self.templates[-1]
        for position, edge in enumerate(self.cumulative):
            if draw <= edge:
                chosen = self.templates[position]
                break
        return chosen.clone(f"job{index}", owner=self.owner)


def template_workload_factory(weights: tuple[float, ...],
                              template_seed: int = 7,
                              config: Optional[WorkloadConfig] = None,
                              owner: str = "user") -> TemplateWorkload:
    """The (picklable) template workload; see :class:`TemplateWorkload`."""
    return TemplateWorkload(weights, template_seed, config, owner)


def generate_workload(seed: int, n_jobs: int,
                      config: Optional[WorkloadConfig] = None,
                      owner: str = "user") -> Iterator[Job]:
    """Deterministic stream of ``n_jobs`` random jobs.

    Each job draws from its own forked stream, so job *k* is identical
    regardless of how many other jobs are consumed.
    """
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be non-negative, got {n_jobs}")
    streams = RandomStreams(seed)
    for index in range(n_jobs):
        yield generate_job(streams.fork("jobs", index), index, config, owner)
