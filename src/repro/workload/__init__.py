"""Workload generators: random compound jobs per Section 4, the exact
Fig. 2 worked example, and synthetic local batch traces."""

from .generator import (
    WorkloadConfig,
    generate_job,
    generate_pool,
    generate_workload,
)
from .paper_example import (
    FIG2_DEADLINE,
    FIG2_TASK_BASE_TIMES,
    FIG2_TASK_VOLUMES,
    fig2_estimate_table,
    fig2_job,
    fig2_pool,
)
from .traces import BatchJob, BatchTraceConfig, generate_batch_trace

__all__ = [
    "WorkloadConfig",
    "generate_job",
    "generate_pool",
    "generate_workload",
    "fig2_job",
    "fig2_pool",
    "fig2_estimate_table",
    "FIG2_DEADLINE",
    "FIG2_TASK_BASE_TIMES",
    "FIG2_TASK_VOLUMES",
    "BatchJob",
    "BatchTraceConfig",
    "generate_batch_trace",
]
