"""Synthetic traces for local batch-queue experiments.

Section 5 discusses local job-queue management (FCFS, LWF, backfilling,
advance reservations).  Those experiments need a stream of independent
batch jobs with arrival times, node requirements, runtimes, and — since
forecast error matters — *user runtime estimates* that may overshoot the
actual runtime (as real batch traces famously do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..sim.rng import RandomStreams

__all__ = ["BatchJob", "BatchTraceConfig", "generate_batch_trace"]


@dataclass(frozen=True)
class BatchJob:
    """One independent job submitted to a local batch system."""

    job_id: str
    arrival: int
    #: Number of nodes the job needs simultaneously.
    width: int
    #: True runtime (unknown to the scheduler until completion).
    runtime: int
    #: User-supplied wall-time estimate (the scheduler plans with this).
    estimate: int

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError(f"arrival must be non-negative, got {self.arrival}")
        if self.width < 1:
            raise ValueError(f"width must be positive, got {self.width}")
        if self.runtime < 1:
            raise ValueError(f"runtime must be positive, got {self.runtime}")
        if self.estimate < self.runtime:
            raise ValueError(
                f"estimate ({self.estimate}) must cover the runtime "
                f"({self.runtime}) — batch systems kill overruns")


@dataclass(frozen=True)
class BatchTraceConfig:
    """Knobs of the synthetic batch trace."""

    #: Mean inter-arrival gap (slots); arrivals are geometric.
    mean_interarrival: float = 4.0
    #: Job width (nodes), uniform ints.
    width: tuple[int, int] = (1, 4)
    #: True runtime, uniform ints.
    runtime: tuple[int, int] = (2, 20)
    #: Estimate = runtime × factor, uniform (≥ 1: users overestimate).
    overestimate: tuple[float, float] = (1.0, 3.0)

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        for name in ("width", "runtime", "overestimate"):
            low, high = getattr(self, name)
            if low > high:
                raise ValueError(f"{name}: min {low} exceeds max {high}")
        if self.width[0] < 1 or self.runtime[0] < 1:
            raise ValueError("width and runtime must be at least 1")
        if self.overestimate[0] < 1:
            raise ValueError("overestimate factor must be at least 1")


def generate_batch_trace(seed: int, n_jobs: int,
                         config: Optional[BatchTraceConfig] = None
                         ) -> Iterator[BatchJob]:
    """Deterministic stream of batch jobs in arrival order."""
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be non-negative, got {n_jobs}")
    config = config or BatchTraceConfig()
    streams = RandomStreams(seed)
    clock = 0
    for index in range(n_jobs):
        rng = streams.fork("batch", index)
        clock += int(rng.geometric(1.0 / config.mean_interarrival))
        runtime = int(rng.integers(config.runtime[0], config.runtime[1] + 1))
        factor = float(rng.uniform(*config.overestimate))
        estimate = max(runtime, int(round(runtime * factor)))
        yield BatchJob(
            job_id=f"batch{index}",
            arrival=clock,
            width=int(rng.integers(config.width[0], config.width[1] + 1)),
            runtime=runtime,
            estimate=estimate,
        )
