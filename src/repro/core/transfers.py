"""Transfer-time models: how long data dependencies take between nodes.

The strategy families of the paper differ in their data handling —
active replication (S1/MS1), remote data access (S2), static storage
(S3).  The scheduling core only needs two questions answered, captured
by the :class:`TransferModel` protocol; the concrete policy models live
in :mod:`repro.grid.data`.
"""

from __future__ import annotations

from typing import Callable, Protocol

from .job import DataTransfer
from .resources import ProcessorNode

__all__ = ["TransferModel", "NeutralTransferModel", "transfer_time_fn"]


class TransferModel(Protocol):
    """Timing model of data movement under one data policy.

    A model whose cross-node lag depends only on the transfer — not on
    *which* two distinct nodes move the data (true for every built-in
    policy: free co-located, one constant otherwise) — may additionally
    provide ``uniform_lag(transfer) -> int`` returning that constant.
    The batch DP engine then evaluates transfer lags with one masked
    array op instead of gathering from a materialized node × node
    matrix; models with genuinely pairwise timings (per-link topology,
    say) simply omit the method.
    """

    def time(self, transfer: DataTransfer, src_node: ProcessorNode,
             dst_node: ProcessorNode) -> int:
        """Slots between producer end and consumer start on concrete nodes."""
        ...  # pragma: no cover - protocol

    def estimate(self, transfer: DataTransfer) -> int:
        """Node-independent estimate used to rank critical works."""
        ...  # pragma: no cover - protocol


class NeutralTransferModel:
    """The baseline model: free on one node, base time across nodes.

    This is the model implied by the Fig. 2 worked example, where every
    transfer contributes its base time to a critical work's length.
    """

    def time(self, transfer: DataTransfer, src_node: ProcessorNode,
             dst_node: ProcessorNode) -> int:
        if src_node.node_id == dst_node.node_id:
            return 0
        return transfer.base_time

    def estimate(self, transfer: DataTransfer) -> int:
        return transfer.base_time

    def uniform_lag(self, transfer: DataTransfer) -> int:
        """The node-independent cross-node lag (see ``TransferModel``)."""
        return transfer.base_time


def transfer_time_fn(model: TransferModel
                     ) -> Callable[[DataTransfer, ProcessorNode,
                                    ProcessorNode], int]:
    """Adapt a :class:`TransferModel` to the plain-function signature
    expected by :func:`repro.core.schedule.check_distribution`."""

    def fn(transfer: DataTransfer, src_node: ProcessorNode,
           dst_node: ProcessorNode) -> int:
        return model.time(transfer, src_node, dst_node)

    return fn
