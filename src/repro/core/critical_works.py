"""The critical works method: application-level co-allocation of a job.

The method (Section 3, refined from the author's earlier papers) is a
multiphase procedure:

1. rank all source→sink chains of the job by estimated length on the
   fastest nodes, including data-transfer times — the longest chain of
   still-unassigned tasks is the next *critical work*;
2. allocate the critical work with the best combination of available
   resources via dynamic programming (:func:`repro.core.dp.allocate_chain`),
   respecting constraints from already-placed tasks;
3. detect *collisions* — tasks of different critical works competing for
   the same node/time — and resolve them by reallocating the later task
   to its next-best resource (possibly at a higher cost);
4. repeat until every task is placed, yielding one supporting schedule
   (:class:`~repro.core.schedule.Distribution`).

Collision mechanics: each critical work is first allocated against the
*base* resource snapshot (background load only), exactly like the paper's
independent per-chain optimization; overlaps with this job's previously
placed tasks are then genuine critical-works collisions, resolved by a
second DP pass against the fully-booked working calendars.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..perf import PERF
from .calendar import ReservationCalendar
from .collisions import Collision, CollisionStats
from .context import SchedulingContext
from .costs import CostModel, VolumeOverTimeCost, distribution_cost
from .dp import _BATCH_MIN_ROWS, allocate_chain
from .job import Job
from .resources import ResourcePool
from .schedule import Distribution, Placement
from .transfers import NeutralTransferModel, TransferModel

__all__ = ["SchedulingOutcome", "CriticalWorksScheduler",
           "ScheduleInvariantError"]


class ScheduleInvariantError(AssertionError):
    """A scheduler self-check found an invariant violation."""


@dataclass
class SchedulingOutcome:
    """Result of one critical-works run (one supporting schedule)."""

    job_id: str
    #: The complete schedule, or None when the job is inadmissible.
    distribution: Optional[Distribution]
    #: True when every task fit within the fixed completion time.
    admissible: bool
    collisions: list[Collision] = field(default_factory=list)
    #: DP state expansions — the generation-expense metric.
    evaluations: int = 0
    #: Estimation level the schedule was built for.
    level: float = 0.0
    cost: Optional[float] = None
    makespan: Optional[int] = None

    @property
    def collision_stats(self) -> CollisionStats:
        """Collision tally by node group (Fig. 3b input)."""
        return CollisionStats.of(self.collisions)


class CriticalWorksScheduler:
    """Builds supporting schedules for compound jobs.

    Parameters
    ----------
    pool:
        The processor nodes available to this job's flow.
    transfer_model:
        Data-policy timing model (default neutral).
    cost_model:
        Placement pricing (default: the paper's CF term).
    self_check:
        When True, every outcome is run through the static verifier
        (:func:`repro.analysis.verify_outcome`) before being returned,
        and a :class:`ScheduleInvariantError` is raised on the first
        violation.  Off by default — the test suite turns it on
        globally via ``tests/conftest.py``.
    context:
        The :class:`~repro.core.context.SchedulingContext` holding
        every cache the scheduler and its DP calls consult (fit memo,
        transfer lags and matrices, durations, rankings, job paths,
        gap tables).  Callers that schedule through several schedulers
        or across arrivals pass one shared context; by default the
        scheduler owns a private one.  All context caches are exact,
        so sharing never changes results.
    """

    def __init__(self, pool: ResourcePool,
                 transfer_model: Optional[TransferModel] = None,
                 cost_model: Optional[CostModel] = None,
                 objective: str = "cost",
                 monopolize: bool = False,
                 accounting_model: Optional[CostModel] = None,
                 self_check: bool = False,
                 engine: str = "auto",
                 context: Optional[SchedulingContext] = None):
        self.pool = pool
        if engine not in ("auto", "scalar", "batch"):
            raise ValueError(f"unknown engine {engine!r}")
        #: DP engine selection, forwarded to
        #: :func:`repro.core.dp.allocate_chain` — ``"auto"`` batches the
        #: phase-A (base snapshot) allocations and falls back to the
        #: scalar recursion for phase-B working calendars; the choice
        #: never affects results, only speed.
        self.engine = engine
        self.transfer_model = transfer_model or NeutralTransferModel()
        #: Selection criterion the DP minimizes (a family's objective).
        self.cost_model = cost_model or VolumeOverTimeCost()
        #: Economic pricing reported on outcomes (always CF by default,
        #: so costs are comparable across strategy families).
        self.accounting_model = accounting_model or VolumeOverTimeCost()
        if objective not in ("cost", "time"):
            raise ValueError(f"unknown objective {objective!r}")
        #: DP optimization criterion ("cost" = CF-first, "time" =
        #: finish-first; see :func:`repro.core.dp.allocate_chain`).
        self.objective = objective
        #: When True, restrict every job to the highest-performance
        #: nodes it can use concurrently — the S3 family's behaviour of
        #: monopolizing the best resources to minimize data exchanges.
        self.monopolize = monopolize
        #: Invariant hook: verify every outcome before returning it.
        self.self_check = self_check
        #: Session cache layer; see the class docstring.  Everything
        #: the pre-context scheduler owned privately — fit memo,
        #: rankings, transfer lags/matrices, durations — now lives
        #: here, scoped by (job, model, pool) keys so a shared context
        #: stays exact across schedulers.
        self.context = context if context is not None else SchedulingContext()

    def _allowed_nodes(self, job: Job) -> Optional[set[int]]:
        if not self.monopolize:
            return None
        # One node above the parallelism degree leaves room to resolve
        # collisions without leaving the top-performance set.
        width = max(2, job.max_width()) + 1
        ranked = self.pool.sorted_by_performance()
        return {node.node_id for node in ranked[:width]}

    # ------------------------------------------------------------------

    def critical_works(self, job: Job, level: float = 0.0,
                       context: Optional[SchedulingContext] = None
                       ) -> list[tuple[int, list[str]]]:
        """All chains ranked as critical works (longest first).

        Lengths are estimated on the fastest node of the pool, with
        transfer times from the data-policy model, matching "the longest
        chain ... along with the best combination of available resources".

        The ranking is cached in the context per (job, transfer model,
        pool, level); treat the returned list as read-only.
        """
        ctx = context if context is not None else self.context
        per_job = ctx.rankings(job, self.transfer_model, self.pool)
        cached = per_job.get(level)
        if cached is not None:
            if PERF.enabled:
                PERF.incr("critical_works.rank_cache_hits")
            return cached
        if PERF.enabled:
            PERF.incr("critical_works.rank_cache_misses")
        best_performance = self.pool.fastest().performance
        scored = [
            (job.chain_length(path, best_performance, level,
                              transfer_time=self.transfer_model.estimate),
             path)
            for path in ctx.job_paths(job)
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        per_job[level] = scored
        return scored

    def build_schedule(self, job: Job,
                       calendars: Mapping[int, ReservationCalendar],
                       level: float = 0.0, release: int = 0,
                       warm_hint: Optional[Mapping[str, int]] = None,
                       context: Optional[SchedulingContext] = None
                       ) -> SchedulingOutcome:
        """Run the critical works method once at one estimation level.

        ``calendars`` describe the environment load (background
        reservations of independent job flows); they are *not* mutated —
        booking the resulting distribution is the caller's decision.

        ``warm_hint`` optionally maps task ids to node ids from an
        adjacent estimation level's distribution; the DP uses it as a
        branch-and-bound incumbent.  The outcome is bit-identical with
        or without a hint — only ``evaluations`` (and the wall time)
        drops.  See :func:`repro.core.dp.allocate_chain`.

        ``context`` overrides the scheduler's own
        :class:`~repro.core.context.SchedulingContext` for this call.
        """
        ctx = context if context is not None else self.context
        outcome = SchedulingOutcome(job_id=job.job_id, distribution=None,
                                    admissible=False, level=level)
        if self.engine == "batch" or (
                self.engine == "auto"
                and len(calendars) >= _BATCH_MIN_ROWS):
            # Materialize (or reuse — versions are shared by COW copies)
            # gap tables for the base snapshot, so phase-A allocations
            # qualify for the batch DP engine.  Phase-B working copies
            # mutate into fresh untabled versions and deliberately fall
            # back to the scalar recursion.  Pools too small to pass the
            # batch row gate (domain subpools of online flows) skip the
            # tables — their calls always take the scalar path.
            for calendar in calendars.values():
                ctx.gap_table(calendar)
        deadline = release + job.deadline if job.deadline else None
        if deadline is None:
            # No fixed completion time: bound by a generous horizon so the
            # DP terminates; admissibility is then trivially true.
            deadline = release + 4 * max(
                1, job.minimal_makespan(self.pool.fastest().performance))

        allowed = self._allowed_nodes(job)
        placed = self._attempt(job, calendars, deadline, level, release,
                               outcome, allowed, warm_hint, ctx)
        if placed is None and allowed is not None:
            # The monopolized top-performance set could not host the job;
            # fall back to the whole pool (S3 keeps its coarse tasks and
            # static data policy but gives up the monopoly).
            placed = self._attempt(job, calendars, deadline, level,
                                   release, outcome, None, warm_hint, ctx)
        if placed is None:
            return outcome

        distribution = Distribution(job.job_id, placed.values(),
                                    scenario=f"level={level:g}")
        outcome.distribution = distribution
        outcome.makespan = distribution.makespan
        outcome.cost = distribution_cost(distribution, job, self.pool,
                                         self.accounting_model)
        outcome.admissible = (not job.deadline
                              or distribution.makespan <= deadline)
        if self.self_check:
            self._verify(job, outcome, release)
        return outcome

    def schedule(self, job: Job, pool: ResourcePool,
                 calendars: Mapping[int, ReservationCalendar], *,
                 context: Optional[SchedulingContext] = None,
                 level: float = 0.0,
                 release: int = 0) -> SchedulingOutcome:
        """:class:`~repro.core.context.Scheduler` protocol entry point.

        The scheduler's pool, models, and objective are construction
        state; the protocol's ``pool`` argument must match — passing a
        different pool is an error rather than a silent rebind, because
        the rankings and lag matrices are keyed to ``self.pool``.
        """
        if pool is not self.pool:
            raise ValueError(
                "CriticalWorksScheduler is bound to its construction "
                "pool; build a scheduler per pool")
        return self.build_schedule(job, calendars, level=level,
                                   release=release, context=context)

    def _verify(self, job: Job, outcome: SchedulingOutcome,
                release: int) -> None:
        """Invariant hook: fail loudly when an outcome breaks the rules.

        Imported lazily — :mod:`repro.analysis` depends on the core, so
        a module-level import would be circular.
        """
        from ..analysis import verify_outcome

        report = verify_outcome(job, outcome, self.pool,
                                transfer_model=self.transfer_model,
                                release=release,
                                accounting_model=self.accounting_model)
        if not report.ok:
            raise ScheduleInvariantError(
                f"self-check failed for job {job.job_id!r}:\n"
                f"{report.summary()}")

    # ------------------------------------------------------------------

    def _attempt(self, job: Job,
                 calendars: Mapping[int, ReservationCalendar],
                 deadline: int, level: float, release: int,
                 outcome: SchedulingOutcome,
                 allowed: Optional[set[int]],
                 warm_hint: Optional[Mapping[str, int]],
                 ctx: SchedulingContext
                 ) -> Optional[dict[str, Placement]]:
        """One full critical-works pass; None when the job cannot fit.

        When a segment cannot be placed because earlier critical works
        pinned its *descendants* too early (the sink of the first chain
        bounds every later chain), the method reallocates: the placed
        descendants are released and the path is retried, so the blocked
        segment extends over the released chain and co-allocates with it.
        """
        working = {node.node_id: calendars[node.node_id].copy()
                   for node in self.pool}
        placed: dict[str, Placement] = {}
        # Repairs release already-placed descendants; remembering their
        # nodes keeps the retried (extended) segment warm-startable even
        # where the adjacent level made different choices.
        hint = dict(warm_hint) if warm_hint else None
        paths = [path for _, path in self.critical_works(job, level,
                                                         context=ctx)]
        repairs = 0
        index = 0
        while index < len(paths):
            failed_segment: Optional[list[str]] = None
            for segment in _unassigned_segments(paths[index], placed):
                if not self._place_segment(job, segment, calendars, working,
                                           placed, deadline, level, release,
                                           outcome, allowed, hint, ctx):
                    failed_segment = segment
                    break
            if failed_segment is None:
                index += 1
                continue
            descendants = _placed_descendants(job, failed_segment, placed)
            if not descendants or repairs >= len(job.tasks):
                return None
            for task_id in descendants:
                placement = placed.pop(task_id)
                working[placement.node_id].release_tag(task_id)
                if hint is None:
                    hint = {}
                hint[task_id] = placement.node_id
            repairs += 1
            # Retry the same path: the blocked segment now extends over
            # the released chain-descendants and co-allocates with them.
        # Descendants released from side branches may belong to earlier
        # paths; a final sweep places whatever is left.
        if len(placed) != len(job.tasks):
            for path in paths:
                for segment in _unassigned_segments(path, placed):
                    if not self._place_segment(job, segment, calendars,
                                               working, placed, deadline,
                                               level, release, outcome,
                                               allowed, hint, ctx):
                        return None
        if len(placed) != len(job.tasks):  # pragma: no cover - safety net
            return None
        return placed

    def _place_segment(self, job: Job, segment: list[str],
                       base: Mapping[int, ReservationCalendar],
                       working: dict[int, ReservationCalendar],
                       placed: dict[str, Placement],
                       deadline: int, level: float, release: int,
                       outcome: SchedulingOutcome,
                       allowed: Optional[set[int]],
                       warm_hint: Optional[Mapping[str, int]],
                       ctx: SchedulingContext) -> bool:
        """Allocate one run of unassigned tasks; returns False on failure."""
        # Phase A: optimize the critical work against the base snapshot,
        # independently of this job's other critical works (this is what
        # makes collisions possible, as in the paper).
        tentative = allocate_chain(
            job, segment, self.pool, base, deadline, level,
            self.transfer_model, self.cost_model, fixed=placed,
            release=release, allowed_nodes=allowed,
            objective=self.objective, hint=warm_hint,
            engine=self.engine, context=ctx)
        if tentative is None:
            return False
        outcome.evaluations += tentative.evaluations

        # Phase A's own allocation is a far tighter incumbent for the
        # phase-B re-plans below than the adjacent level's hint: it was
        # optimized at *this* level and usually re-fits on the working
        # calendars with a small shift past the collision.
        segment_hint = dict(warm_hint) if warm_hint else {}
        for tentative_placement in tentative.placements:
            segment_hint[tentative_placement.task_id] = (
                tentative_placement.node_id)

        pending = deque(tentative.placements)
        while pending:
            placement = pending.popleft()
            calendar = working[placement.node_id]
            blockers = calendar.conflicts(placement.start, placement.end)
            if not blockers:
                calendar.reserve(placement.start, placement.end,
                                 tag=placement.task_id)
                placed[placement.task_id] = placement
                continue

            # Collision: a task of an earlier critical work holds the slot.
            node = self.pool.node(placement.node_id)
            collision = Collision(
                job_id=job.job_id, task_id=placement.task_id,
                holder=blockers[0].tag, node_id=node.node_id,
                node_group=node.group, time=placement.start)
            # Repair restarts replay the same contention; count each
            # distinct event once.
            if collision not in outcome.collisions:
                outcome.collisions.append(collision)

            # Phase B: re-plan this task and the rest of the segment
            # against the fully-booked working calendars.
            remainder = [placement.task_id] + [p.task_id for p in pending]
            resolved = allocate_chain(
                job, remainder, self.pool, working, deadline, level,
                self.transfer_model, self.cost_model, fixed=placed,
                release=release, allowed_nodes=allowed,
                objective=self.objective, hint=segment_hint,
                engine=self.engine, context=ctx)
            if resolved is None:
                return False
            outcome.evaluations += resolved.evaluations
            for resolved_placement in resolved.placements:
                segment_hint[resolved_placement.task_id] = (
                    resolved_placement.node_id)
            pending = deque(resolved.placements)
        return True


def _placed_descendants(job: Job, tasks: Sequence[str],
                        placed: Mapping[str, Placement]) -> list[str]:
    """Already-placed tasks downstream of any of ``tasks``."""
    frontier = list(tasks)
    seen: set[str] = set(frontier)
    found: list[str] = []
    while frontier:
        current = frontier.pop()
        for successor in job.successors(current):
            if successor in seen:
                continue
            seen.add(successor)
            frontier.append(successor)
            if successor in placed:
                found.append(successor)
    return found


def _unassigned_segments(path: Sequence[str],
                         placed: Mapping[str, Placement]) -> list[list[str]]:
    """Maximal runs of not-yet-placed tasks along a path."""
    segments: list[list[str]] = []
    current: list[str] = []
    for task_id in path:
        if task_id in placed:
            if current:
                segments.append(current)
                current = []
        else:
            current.append(task_id)
    if current:
        segments.append(current)
    return segments
