"""Dynamic-programming allocation of one critical work (task chain).

Section 2 of the paper: "The strategy is built by using methods of
dynamic programming in a way that allows optimizing scheduling and
resource allocation for a set of tasks comprising the compound job."

Given a chain of tasks that must run sequentially, the DP chooses, for
every task, a processor node and a start slot so that

* each task fits a free window of its node's reservation calendar;
* precedence holds, including data-transfer lags between the chosen
  nodes and constraints from already-placed neighbour tasks;
* the whole chain finishes by the job's fixed completion time;

while minimizing total cost (the paper's ``CF``), with earliest finish
as the tie-breaker.  The state is ``(chain position, data-ready time,
previous node)``; for a fixed node choice the earliest feasible start
dominates all later ones (it can only enlarge downstream feasibility),
so each transition considers one start per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..perf import PERF
from .calendar import ReservationCalendar
from .costs import CostModel, VolumeOverTimeCost
from .job import DataTransfer, Job
from .resources import ProcessorNode, ResourcePool
from .schedule import Placement
from .transfers import NeutralTransferModel, TransferModel

__all__ = ["ChainAllocation", "allocate_chain"]

_INFINITY = float("inf")


@dataclass
class ChainAllocation:
    """Optimal placements for one chain, with bookkeeping."""

    placements: list[Placement]
    cost: float
    finish: int
    #: Number of DP state expansions — the strategy generation expense
    #: metric (S1 vs MS1 comparison in Section 4).
    evaluations: int


def allocate_chain(job: Job, chain: Sequence[str], pool: ResourcePool,
                   calendars: Mapping[int, ReservationCalendar],
                   deadline: int,
                   level: float = 0.0,
                   transfer_model: Optional[TransferModel] = None,
                   cost_model: Optional[CostModel] = None,
                   fixed: Optional[Mapping[str, Placement]] = None,
                   release: int = 0,
                   allowed_nodes: Optional[set[int]] = None,
                   objective: str = "cost",
                   ) -> Optional[ChainAllocation]:
    """Allocate every task of ``chain`` or return None if infeasible.

    Parameters
    ----------
    job:
        The compound job the chain belongs to.
    chain:
        Task ids in precedence order; consecutive tasks must be joined
        by a transfer edge of the job.
    pool, calendars:
        Candidate nodes and their availability; tasks are *not* booked
        here — the caller owns calendar mutation.
    deadline:
        Absolute completion bound for every task of the chain.
    level:
        Estimation level in [0, 1] (0 = best case, 1 = worst case).
    transfer_model:
        Data-policy timing model (default: neutral).
    cost_model:
        Placement pricing (default: the paper's CF term).
    fixed:
        Placements of already-assigned tasks; they impose release times
        (placed predecessors) and latest-end bounds (placed successors)
        on chain tasks.
    release:
        Earliest slot any chain task may start (the job's arrival).
    allowed_nodes:
        Optional whitelist of node ids (used by flow-level policies and
        the S3 family's resource monopolization).
    objective:
        ``"cost"`` minimizes total CF with earliest finish as the
        tie-break (the economic strategies S1/MS1/S3); ``"time"``
        minimizes finish time with cost as the tie-break (the paper's
        "fastest, most expensive, most accurate" S2 family).
    """
    if not chain:
        return ChainAllocation([], 0.0, release, 0)
    transfer_model = transfer_model or NeutralTransferModel()
    cost_model = cost_model or VolumeOverTimeCost()
    fixed = fixed or {}
    if objective not in ("cost", "time"):
        raise ValueError(f"unknown objective {objective!r}")
    # Candidate ranking: (primary, secondary) per the chosen objective.
    if objective == "cost":
        rank = lambda cost, finish: (cost, finish)  # noqa: E731
    else:
        rank = lambda cost, finish: (finish, cost)  # noqa: E731

    for earlier, later in zip(chain, chain[1:]):
        if job.transfer_between(earlier, later) is None:
            raise ValueError(
                f"chain edge ({earlier!r}, {later!r}) is not in job "
                f"{job.job_id!r}")
    for task_id in chain:
        if task_id in fixed:
            raise ValueError(f"chain task {task_id!r} is already placed")

    nodes = [node for node in pool
             if allowed_nodes is None or node.node_id in allowed_nodes]
    if not nodes:
        return None

    # Per-(transfer, src, dst) transfer times: the DP asks for the same
    # lag once per state expansion, while the distinct combinations are
    # few (edges × node pairs).
    transfer_cache: dict[tuple[str, int, int], int] = {}

    def transfer_time(transfer: DataTransfer, src_node: ProcessorNode,
                      dst_node: ProcessorNode) -> int:
        key = (transfer.transfer_id, src_node.node_id, dst_node.node_id)
        lag = transfer_cache.get(key)
        if lag is None:
            if PERF.enabled:
                PERF.incr("dp.transfer_cache_misses")
            lag = transfer_model.time(transfer, src_node, dst_node)
            transfer_cache[key] = lag
        elif PERF.enabled:
            PERF.incr("dp.transfer_cache_hits")
        return lag

    # The external bounds (earliest start from already-placed
    # predecessors, latest end from the deadline and placed successors)
    # depend only on (task, node) — hoist them out of the DP inner
    # loop.  The placed neighbours are collected once per task; only
    # the transfer lags vary with the node.  Nodes that can never host
    # a task (`floor + duration > ceiling` regardless of the data-ready
    # time: the DP start bound is never below the external release) are
    # dropped up front.
    candidates: dict[str, list[tuple[ProcessorNode, int, int, int]]] = {}
    for task_id in chain:
        job_task = job.task(task_id)
        placed_preds = []
        for pred in job.predecessors(task_id):
            placed = fixed.get(pred)
            if placed is None:
                continue
            transfer = job.transfer_between(pred, task_id)
            if transfer is None:  # pragma: no cover - predecessors have edges
                continue
            placed_preds.append(
                (placed.end, transfer, pool.node(placed.node_id)))
        placed_succs = []
        for succ in job.successors(task_id):
            placed = fixed.get(succ)
            if placed is None:
                continue
            transfer = job.transfer_between(task_id, succ)
            if transfer is None:  # pragma: no cover - successors have edges
                continue
            placed_succs.append(
                (placed.start, transfer, pool.node(placed.node_id)))

        rows = []
        for node in nodes:
            duration = job_task.duration_on(node.performance, level)
            floor = release
            for pred_end, transfer, src_node in placed_preds:
                bound = pred_end + transfer_time(transfer, src_node, node)
                if bound > floor:
                    floor = bound
            ceiling = deadline
            for succ_start, transfer, dst_node in placed_succs:
                bound = succ_start - transfer_time(transfer, node, dst_node)
                if bound < ceiling:
                    ceiling = bound
            if floor + duration > ceiling:
                continue
            rows.append((node, duration, floor, ceiling))
        # An empty row set is kept (not short-circuited) so the DP
        # explores — and counts — exactly the states it always did.
        candidates[task_id] = rows

    evaluations = 0
    # memo[(index, prev_node_id, ready)] -> (cost, finish, choice placement,
    #                                        next state key)
    memo: dict[tuple[int, Optional[int], int], tuple] = {}

    def best_from(index: int, prev_node_id: Optional[int], ready: int
                  ) -> tuple[float, int]:
        """Min (cost, finish) for chain[index:] with data ready at `ready`."""
        nonlocal evaluations
        if index == len(chain):
            return (0.0, ready)
        key = (index, prev_node_id, ready)
        cached = memo.get(key)
        if cached is not None:
            return cached[0], cached[1]
        evaluations += 1
        if PERF.enabled:
            PERF.incr("dp.expansions")

        task_id = chain[index]
        task = job.task(task_id)
        incoming = (job.transfer_between(chain[index - 1], task_id)
                    if index > 0 else None)
        prev_node = pool.node(prev_node_id) if prev_node_id is not None else None
        no_incoming = incoming is None or prev_node is None
        lag_cache_get = transfer_cache.get

        best = (_INFINITY, _INFINITY, None, None)
        for node, duration, floor, end_bound in candidates[task_id]:
            if no_incoming:
                start_bound = ready
            else:
                # Inlined transfer_time: this is the hottest lookup in
                # the kernel, worth skipping the call overhead for.
                lag_key = (incoming.transfer_id, prev_node_id, node.node_id)
                lag = lag_cache_get(lag_key)
                if lag is None:
                    if PERF.enabled:
                        PERF.incr("dp.transfer_cache_misses")
                    lag = transfer_model.time(incoming, prev_node, node)
                    transfer_cache[lag_key] = lag
                elif PERF.enabled:
                    PERF.incr("dp.transfer_cache_hits")
                start_bound = ready + lag
            if floor > start_bound:
                start_bound = floor
            if start_bound + duration > end_bound:
                continue
            start = calendars[node.node_id].earliest_fit(
                duration, earliest=start_bound, deadline=end_bound)
            if start is None:
                continue
            end = start + duration
            placement = Placement(task_id, node.node_id, start, end)
            own_cost = cost_model.task_cost(task, placement, node)
            tail_cost, tail_finish = best_from(index + 1, node.node_id, end)
            if tail_cost == _INFINITY:
                continue
            candidate = (own_cost + tail_cost, max(end, tail_finish),
                         placement, (index + 1, node.node_id, end))
            if rank(candidate[0], candidate[1]) < rank(best[0], best[1]):
                best = candidate

        memo[key] = best
        return best[0], best[1]

    start_key = (0, None, release)
    total_cost, finish = best_from(*start_key)
    if total_cost == _INFINITY:
        return None

    placements: list[Placement] = []
    key = start_key
    while key is not None and key[0] < len(chain):
        _, _, placement, next_key = memo[key]
        placements.append(placement)
        key = next_key
    return ChainAllocation(placements, total_cost, int(finish), evaluations)
