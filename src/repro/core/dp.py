"""Dynamic-programming allocation of one critical work (task chain).

Section 2 of the paper: "The strategy is built by using methods of
dynamic programming in a way that allows optimizing scheduling and
resource allocation for a set of tasks comprising the compound job."

Given a chain of tasks that must run sequentially, the DP chooses, for
every task, a processor node and a start slot so that

* each task fits a free window of its node's reservation calendar;
* precedence holds, including data-transfer lags between the chosen
  nodes and constraints from already-placed neighbour tasks;
* the whole chain finishes by the job's fixed completion time;

while minimizing total cost (the paper's ``CF``), with earliest finish
as the tie-breaker.  The state is ``(chain position, data-ready time,
previous node)``; for a fixed node choice the earliest feasible start
dominates all later ones (it can only enlarge downstream feasibility),
so each transition considers one start per node.

Incremental generation (two orthogonal mechanisms, both exact):

* the ``context`` fit cache — a shared memo of ``earliest_fit``
  answers keyed on the owning calendar's content *version* (see
  :attr:`~repro.core.calendar.ReservationCalendar.version`), owned by
  the caller's :class:`~repro.core.context.SchedulingContext`.  Each
  ``(node, version, duration, deadline)`` bucket holds *interval
  witnesses*: one computed fit at ``e1`` answering ``s1`` covers every
  query in ``[e1, s1]``, and one failure covers every query at or past
  its probe — both consequences of ``earliest_fit``'s monotonicity in
  ``earliest``.  Entries written by earlier calls — previous estimation
  levels, previous arrivals — stay valid exactly as long as the node is
  untouched, so invalidation is O(nodes touched): a mutated node simply
  stops matching its old keys.

* ``hint`` — a warm start: the adjacent estimation level's allocation,
  re-evaluated on the current calendars to obtain a feasible
  *incumbent*, which then drives branch-and-bound pruning of dominated
  partial chains.  Pruning is strict (``lower bound > incumbent``) with
  admissible bounds, and memo entries track whether they are exact or
  merely bound proofs, so the returned placements, cost, finish, and
  feasibility are **bit-identical** to the cold path — only the number
  of state expansions (``evaluations`` / the ``dp.expansions`` counter)
  shrinks.  For the ``"cost"`` objective pruning additionally requires
  a start-time-invariant cost model (``time_invariant`` attribute, true
  for every built-in model); otherwise the hint is ignored and the run
  is simply cold.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from ..perf import PERF
from . import placement as _placement
from .calendar import ReservationCalendar
from .context import SchedulingContext
from .costs import CostModel, VolumeOverTimeCost
from .job import DataTransfer, Job
from .resources import ProcessorNode, ResourcePool
from .schedule import Placement
from .transfers import NeutralTransferModel, TransferModel

__all__ = ["ChainAllocation", "allocate_chain"]

_INFINITY = float("inf")

#: Shortest chain the ``auto`` engine routes to the batch kernel.  A
#: single-task chain touches each candidate row exactly once — array
#: setup costs more than the loop it replaces.
_BATCH_MIN_CHAIN = 2

#: Widest candidate row set required before the ``auto`` engine
#: batches.  Small pools (e.g. per-domain subpools of a metascheduler)
#: spawn so few states per level that the scalar recursion beats the
#: fixed per-level cost of the array ops; measured crossover on the
#: bench scenarios sits around a dozen rows.
_BATCH_MIN_ROWS = 12

#: Stride packing a DP state ``(pool position, data-ready slot)`` into
#: one int64 key for deduplication; must exceed every slot value (see
#: :data:`repro.core.calendar.GAP_HORIZON`).
_STATE_STRIDE = 1 << 41

#: Shared empty columns for degenerate batch positions (no states or
#: no candidate rows); read-only by convention.
_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


@dataclass
class ChainAllocation:
    """Optimal placements for one chain, with bookkeeping."""

    placements: list[Placement]
    cost: float
    finish: int
    #: Number of DP state expansions actually performed — the strategy
    #: generation expense metric (S1 vs MS1 comparison in Section 4).
    #: Warm-started runs perform (and report) fewer expansions while
    #: returning bit-identical placements.
    evaluations: int


def allocate_chain(job: Job, chain: Sequence[str], pool: ResourcePool,
                   calendars: Mapping[int, ReservationCalendar],
                   deadline: int,
                   level: float = 0.0,
                   transfer_model: Optional[TransferModel] = None,
                   cost_model: Optional[CostModel] = None,
                   fixed: Optional[Mapping[str, Placement]] = None,
                   release: int = 0,
                   allowed_nodes: Optional[set[int]] = None,
                   objective: str = "cost",
                   hint: Optional[Mapping[str, int]] = None,
                   engine: str = "auto",
                   context: Optional[SchedulingContext] = None,
                   ) -> Optional[ChainAllocation]:
    """Allocate every task of ``chain`` or return None if infeasible.

    Parameters
    ----------
    job:
        The compound job the chain belongs to.
    chain:
        Task ids in precedence order; consecutive tasks must be joined
        by a transfer edge of the job.
    pool, calendars:
        Candidate nodes and their availability; tasks are *not* booked
        here — the caller owns calendar mutation.
    deadline:
        Absolute completion bound for every task of the chain.
    level:
        Estimation level in [0, 1] (0 = best case, 1 = worst case).
    transfer_model:
        Data-policy timing model (default: neutral).
    cost_model:
        Placement pricing (default: the paper's CF term).
    fixed:
        Placements of already-assigned tasks; they impose release times
        (placed predecessors) and latest-end bounds (placed successors)
        on chain tasks.
    release:
        Earliest slot any chain task may start (the job's arrival).
    allowed_nodes:
        Optional whitelist of node ids (used by flow-level policies and
        the S3 family's resource monopolization).
    objective:
        ``"cost"`` minimizes total CF with earliest finish as the
        tie-break (the economic strategies S1/MS1/S3); ``"time"``
        minimizes finish time with cost as the tie-break (the paper's
        "fastest, most expensive, most accurate" S2 family).
    hint:
        Optional warm start: a ``task id -> node id`` mapping (e.g. the
        adjacent estimation level's allocation) used to seed an
        incumbent for branch-and-bound pruning.  Results are identical
        to ``hint=None``; only the expansion count drops.
    engine:
        ``"auto"`` (default) routes eligible calls — start-invariant
        cost model, chain length ≥ 2, gap tables already materialized
        for every candidate calendar — to the batched numpy engine and
        everything else to the scalar recursion.  ``"scalar"`` forces
        the recursion; ``"batch"`` forces the batch engine (building
        missing gap tables) where eligible — both paths are
        bit-identical, so the choice is purely about speed.
    context:
        The caller's :class:`~repro.core.context.SchedulingContext`,
        which owns every cache this function consults: the
        interval-witness fit cache, the per-(job, model) transfer-lag
        memo, the per-job duration memo, the per-(job, model, pool)
        lag matrices of the batch engine, and the gap-table/stack
        caches.  All exact, so sharing a context across calls, levels,
        and jobs never changes results — only speed.  ``None`` runs
        the call cacheless (and, in ``auto`` mode, scalar: no
        materialized gap tables exist to batch over).

        .. versionchanged:: PR 5
           replaces the removed ``fit_cache`` / ``transfer_cache`` /
           ``duration_cache`` / ``transfer_matrices`` keyword
           arguments; construct a context instead of threading dicts.
    """
    if engine not in ("auto", "scalar", "batch"):
        raise ValueError(f"unknown engine {engine!r}")
    if not chain:
        return ChainAllocation([], 0.0, release, 0)
    transfer_model = transfer_model or NeutralTransferModel()
    cost_model = cost_model or VolumeOverTimeCost()
    fixed = fixed or {}
    if objective not in ("cost", "time"):
        raise ValueError(f"unknown objective {objective!r}")
    # Candidate rank is (cost, finish) or (finish, cost) per the chosen
    # objective; the comparison is branch-specialized in the DP loop.
    cost_mode = objective == "cost"
    #: Start-time-invariant pricing (true for every built-in model)
    #: makes per-(task, node) costs constants — the soundness
    #: requirement for cost-objective lower bounds, and an opportunity
    #: to price rows once instead of once per expansion.
    invariant_cost = bool(getattr(cost_model, "time_invariant", False))

    for earlier, later in zip(chain, chain[1:]):
        if job.transfer_between(earlier, later) is None:
            raise ValueError(
                f"chain edge ({earlier!r}, {later!r}) is not in job "
                f"{job.job_id!r}")
    for task_id in chain:
        if task_id in fixed:
            raise ValueError(f"chain task {task_id!r} is already placed")

    nodes = [node for node in pool
             if allowed_nodes is None or node.node_id in allowed_nodes]
    if not nodes:
        return None

    # Every cache below lives in the caller's context, scoped wide
    # enough to be exact: lags per (job, transfer model), durations per
    # job (pure value keys), lag matrices per (job, model, pool) — the
    # batch engine indexes them by pool position.  Without a context
    # the call runs cacheless: a private per-call lag dict (the DP asks
    # for the same lag once per state expansion), no fit memo, no
    # batched tables.
    if context is not None:
        fit_cache = context.fit_cache
        transfer_cache = context.transfer_lags(job, transfer_model)
        duration_cache = context.durations(job)
        transfer_matrices = context.transfer_matrices(
            job, transfer_model, pool)
    else:
        fit_cache = None
        transfer_cache = {}
        duration_cache = None
        transfer_matrices = None

    def transfer_time(transfer: DataTransfer, src_node: ProcessorNode,
                      dst_node: ProcessorNode) -> int:
        key = (transfer.transfer_id, src_node.node_id, dst_node.node_id)
        lag = transfer_cache.get(key)
        if lag is None:
            if PERF.enabled:
                PERF.incr("dp.transfer_cache_misses")
            lag = transfer_model.time(transfer, src_node, dst_node)
            transfer_cache[key] = lag
        elif PERF.enabled:
            PERF.incr("dp.transfer_cache_hits")
        return lag

    def find_fit(row: list, earliest: int) -> Optional[int]:
        """``earliest_fit`` through the row's interval-witness memo.

        Witnesses exploit the monotone structure of ``earliest_fit``
        for a fixed (calendar version, duration, deadline): an answer
        ``(e1, s1)`` also answers every query in ``[e1, s1]`` with
        ``s1`` (no earlier slot exists past ``e1``, and ``s1`` still
        fits), and a failed probe at ``e1`` proves failure for every
        query at or past ``e1`` (shrinking the search window never
        creates slots).  One computed fit therefore covers a whole
        interval of ``earliest`` values — exact, never heuristic.

        The row's bucket of the shared cache is attached on first use;
        rows never queried through the scalar path (batch-engine rows,
        pruned rows) skip the bucket lookup entirely.
        """
        fits = row[8]
        if fits is None:
            if fit_cache is None:
                return row[2].earliest_fit(row[4], earliest=earliest,
                                           deadline=row[6])
            calendar_version = row[3]
            fit_key = (row[1], calendar_version, row[4], row[6])
            fits = fit_cache.get(fit_key)
            if fits is None:
                fits = ([], [])
                fit_cache[fit_key] = fits
            row[8] = fits
        keys, starts = fits
        position = bisect_right(keys, earliest) - 1
        if position >= 0:
            cached = starts[position]
            if cached is None or earliest <= cached:
                if PERF.enabled:
                    PERF.incr("dp.fit_cache_hits")
                return cached
        if PERF.enabled:
            PERF.incr("dp.fit_cache_misses")
        start = row[2].earliest_fit(row[4], earliest=earliest,
                                    deadline=row[6])
        keys.insert(position + 1, earliest)
        starts.insert(position + 1, start)
        return start

    # The external bounds (earliest start from already-placed
    # predecessors, latest end from the deadline and placed successors)
    # depend only on (task, node) — hoist them out of the DP inner
    # loop.  The placed neighbours are collected once per task; only
    # the transfer lags vary with the node.  Nodes that can never host
    # a task (`floor + duration > ceiling` regardless of the data-ready
    # time: the DP start bound is never below the external release) are
    # dropped up front.  Rows also carry the node's calendar and its
    # content version (constant for the whole call — the DP never
    # mutates calendars) so the inner loop touches no dicts or
    # properties to query availability.
    # Row layout: [node, node_id, calendar, version, duration, floor,
    #             ceiling, row_cost, fits] — a list, because row_cost is
    #             filled lazily: start-time-invariant cost models price
    #             a row once on first touch (or eagerly when warm-start
    #             pruning needs every row for its lower bounds), so
    #             rows the DP never visits are never priced.  ``fits``
    #             is the row's interval-witness bucket of the shared
    #             fit cache — a (keys, starts) pair of parallel sorted
    #             lists.  Node, calendar version, duration, and ceiling
    #             are all fixed per row, so they live in the bucket key
    #             once instead of in every lookup.
    node_info = [(node, calendars[node.node_id]) for node in nodes]
    uniform_lag_fn = getattr(transfer_model, "uniform_lag", None)
    if context is not None and allowed_nodes is None:
        # ``nodes`` is the whole pool in pool order — the performance
        # vector is then a constant of the pool, served from the
        # session context instead of rebuilt per chain.
        performances = context.pool_performances(pool)
    else:
        performances = np.fromiter((node.performance for node in nodes),
                                   dtype=np.float64, count=len(nodes))
    candidates: dict[str, list[tuple]] = {}
    for task_id in chain:
        job_task = job.task(task_id)
        placed_preds = []
        for pred in job.predecessors(task_id):
            placed = fixed.get(pred)
            if placed is None:
                continue
            transfer = job.transfer_between(pred, task_id)
            if transfer is None:  # pragma: no cover - predecessors have edges
                continue
            placed_preds.append(
                (placed.end, transfer, pool.node(placed.node_id)))
        placed_succs = []
        for succ in job.successors(task_id):
            placed = fixed.get(succ)
            if placed is None:
                continue
            transfer = job.transfer_between(task_id, succ)
            if transfer is None:  # pragma: no cover - successors have edges
                continue
            placed_succs.append(
                (placed.start, transfer, pool.node(placed.node_id)))

        # Uniform-lag models (every built-in policy) make the external
        # bounds node-independent except on the placed neighbours' own
        # nodes: floor = max(pred end + lag) everywhere but on a
        # producer's node, where that producer's lag drops to zero.
        # Precomputing the shared bound (and the handful of neighbour
        # node ids needing the exact loop) turns the per-node work from
        # |preds| transfer lookups into one dict-free comparison.
        pred_lags = succ_lags = None
        if uniform_lag_fn is not None:
            pred_lags = [(pred_end, uniform_lag_fn(transfer),
                          src_node.node_id)
                         for pred_end, transfer, src_node in placed_preds]
            shared_floor = release
            for pred_end, lag, _ in pred_lags:
                bound = pred_end + lag
                if bound > shared_floor:
                    shared_floor = bound
            pred_ids = {src_id for _, _, src_id in pred_lags}
            succ_lags = [(succ_start, uniform_lag_fn(transfer),
                          dst_node.node_id)
                         for succ_start, transfer, dst_node in placed_succs]
            shared_ceiling = deadline
            for succ_start, lag, _ in succ_lags:
                bound = succ_start - lag
                if bound < shared_ceiling:
                    shared_ceiling = bound
            succ_ids = {dst_id for _, _, dst_id in succ_lags}

        # Durations are computed for all nodes in one vectorized sweep
        # the first time a (task, level) misses the shared cache —
        # online flows see every job cold, so misses arrive in whole
        # per-task batches.  ``duration_array`` runs the same float ops
        # as ``duration_on``, so cached and fresh values agree exactly.
        task_durations: Optional[list[int]] = None
        rows = []
        for position, (node, calendar) in enumerate(node_info):
            if duration_cache is None:
                if task_durations is None:
                    task_durations = job_task.duration_array(
                        performances, level).tolist()
                duration = task_durations[position]
            else:
                dur_key = (task_id, node.node_id, level)
                duration = duration_cache.get(dur_key)
                if duration is None:
                    if PERF.enabled:
                        PERF.incr("dp.duration_cache_misses")
                    if task_durations is None:
                        task_durations = job_task.duration_array(
                            performances, level).tolist()
                    duration = task_durations[position]
                    duration_cache[dur_key] = duration
                elif PERF.enabled:
                    PERF.incr("dp.duration_cache_hits")
            if pred_lags is None:
                floor = release
                for pred_end, transfer, src_node in placed_preds:
                    bound = pred_end + transfer_time(transfer, src_node,
                                                     node)
                    if bound > floor:
                        floor = bound
            elif node.node_id in pred_ids:
                floor = release
                for pred_end, lag, src_id in pred_lags:
                    bound = (pred_end if src_id == node.node_id
                             else pred_end + lag)
                    if bound > floor:
                        floor = bound
            else:
                floor = shared_floor
            if succ_lags is None:
                ceiling = deadline
                for succ_start, transfer, dst_node in placed_succs:
                    bound = succ_start - transfer_time(transfer, node,
                                                       dst_node)
                    if bound < ceiling:
                        ceiling = bound
            elif node.node_id in succ_ids:
                ceiling = deadline
                for succ_start, lag, dst_id in succ_lags:
                    bound = (succ_start if dst_id == node.node_id
                             else succ_start - lag)
                    if bound < ceiling:
                        ceiling = bound
            else:
                ceiling = shared_ceiling
            if floor + duration > ceiling:
                continue
            # The fit-cache bucket (row[8]) is attached lazily by
            # ``find_fit`` on the row's first scalar query: rows served
            # by the batch kernel — and rows the scalar DP prunes away —
            # never pay the bucket lookup.
            rows.append([node, node.node_id, calendar, calendar.version,
                         duration, floor, ceiling, None, None])
        # An empty row set is kept (not short-circuited) so the DP
        # explores — and counts — exactly the states it always did.
        candidates[task_id] = rows

    # Models declaring a ``price_key`` are pure functions of
    # (volume, duration, node), so their row prices memo across calls
    # in the session context — template siblings re-price the same
    # triples on every replan otherwise.
    price_key = getattr(cost_model, "price_key", None)
    price_memo = (context.price_memo
                  if context is not None and price_key is not None
                  else None)

    def price_row(task_id: str, row: list) -> float:
        """The row's (start-invariant) cost, cached on the row."""
        if price_memo is not None:
            memo_key = (price_key, job.task(task_id).volume, row[4],
                        row[1])
            row_cost = price_memo.get(memo_key)
            if row_cost is None:
                row_cost = cost_model.task_cost(
                    job.task(task_id),
                    Placement(task_id, row[1], row[5], row[5] + row[4]),
                    row[0])
                price_memo[memo_key] = row_cost
        else:
            row_cost = cost_model.task_cost(
                job.task(task_id),
                Placement(task_id, row[1], row[5], row[5] + row[4]),
                row[0])
        row[7] = row_cost
        return row_cost

    def hint_incumbent() -> Optional[float]:
        """Primary value of the hinted assignment on these calendars.

        Returns None when the hint does not re-fit (different level,
        drifted node, disallowed node) — the run is then simply cold.
        """
        assert hint is not None
        prev_node: Optional[ProcessorNode] = None
        ready = release
        total_cost = 0.0
        finish = release
        for index, task_id in enumerate(chain):
            hinted = hint.get(task_id)
            if hinted is None:
                return None
            row = next((r for r in candidates[task_id]
                        if r[1] == hinted), None)
            if row is None:
                return None
            node = row[0]
            duration, floor, ceiling, row_cost = row[4:8]
            incoming = (job.transfer_between(chain[index - 1], task_id)
                        if index > 0 else None)
            if incoming is None or prev_node is None:
                start_bound = ready
            else:
                start_bound = ready + transfer_time(incoming, prev_node, node)
            if floor > start_bound:
                start_bound = floor
            if start_bound + duration > ceiling:
                return None
            start = find_fit(row, start_bound)
            if start is None:
                return None
            end = start + duration
            if cost_mode:
                # Only reached when the cost model is start-invariant
                # (pruning is gated on it), so the row price applies.
                total_cost += (row_cost if row_cost is not None
                               else price_row(task_id, row))
            ready = end
            finish = end
            prev_node = node
        return total_cost if cost_mode else float(finish)

    def greedy_incumbent(by_finish: bool = False) -> Optional[float]:
        """Primary value of a hint-preferring greedy descent.

        A fallback incumbent for hinted runs whose hint no longer
        re-fits *as a whole*: each step first re-tries the task's own
        hinted row — tasks whose nodes kept their slots keep their
        assignment, so only the drifted remainder is re-chosen — and
        otherwise takes the cheapest (cost mode) or earliest-finishing
        (time mode) feasible row.  This is what makes plan repair
        incremental: a stale plan with one stolen slot re-derives an
        incumbent that differs from the hint in exactly the patched
        tasks.  ``by_finish`` forces the earliest-finish choice even in
        cost mode — a second descent for deadline-tight chains where
        cheapest-first painted itself past the ceiling; the returned
        value is still that chain's exact cost, so it remains a sound
        upper bound.  No backtracking — a dead end returns None and the
        run is simply cold.  Incumbents only prune (exact bounds), so
        the returned allocation is bit-identical to a cold run's; only
        ``evaluations`` (the pruned state count, and with it the
        study's ``generation_expense``) shrinks.
        """
        prev_node: Optional[ProcessorNode] = None
        ready = release
        total_cost = 0.0
        finish = release
        for index, task_id in enumerate(chain):
            rows = candidates[task_id]
            incoming = (job.transfer_between(chain[index - 1], task_id)
                        if index > 0 else None)
            hinted = hint.get(task_id) if hint is not None else None
            if hinted is not None:
                hinted_row = next((r for r in rows if r[1] == hinted),
                                  None)
                if hinted_row is not None:
                    node = hinted_row[0]
                    duration, floor, ceiling = hinted_row[4:7]
                    if incoming is None or prev_node is None:
                        start_bound = ready
                    else:
                        start_bound = ready + transfer_time(
                            incoming, prev_node, node)
                    if floor > start_bound:
                        start_bound = floor
                    if start_bound + duration <= ceiling:
                        start = find_fit(hinted_row, start_bound)
                        if start is not None:
                            if cost_mode:
                                row_cost = hinted_row[7]
                                total_cost += (
                                    row_cost if row_cost is not None
                                    else price_row(task_id, hinted_row))
                            prev_node = node
                            ready = start + duration
                            finish = ready
                            continue
            if cost_mode and not by_finish:
                # Start-invariant prices: cheapest-first order, first
                # feasible row wins the step.
                rows = sorted(rows, key=lambda row: (
                    row[7] if row[7] is not None
                    else price_row(task_id, row)))
            chosen_row = None
            chosen_end = 0
            for row in rows:
                node = row[0]
                duration, floor, ceiling = row[4], row[5], row[6]
                if incoming is None or prev_node is None:
                    start_bound = ready
                else:
                    start_bound = ready + transfer_time(incoming,
                                                        prev_node, node)
                if floor > start_bound:
                    start_bound = floor
                if start_bound + duration > ceiling:
                    continue
                start = find_fit(row, start_bound)
                if start is None:
                    continue
                end = start + duration
                if cost_mode and not by_finish:
                    chosen_row, chosen_end = row, end
                    break
                if chosen_row is None or end < chosen_end:
                    chosen_row, chosen_end = row, end
            if chosen_row is None:
                return None
            if cost_mode:
                row_cost = chosen_row[7]
                total_cost += (row_cost if row_cost is not None
                               else price_row(task_id, chosen_row))
            prev_node = chosen_row[0]
            ready = chosen_end
            finish = chosen_end
        return total_cost if cost_mode else float(finish)

    # Warm start: re-fit the hinted allocation to obtain a feasible
    # incumbent, then prune partial chains whose admissible lower bound
    # is *strictly* worse.  tail_lb[i] bounds the primary criterion of
    # chain[i:] from below (per-task minimum over candidate rows;
    # transfer lags, being non-negative, are soundly dropped).
    pruning = False
    allowance_top = _INFINITY
    tail_lb: list[float] = []
    # Single-task chains cannot profit: the cold DP touches each row
    # exactly once, which is no more work than building the incumbent
    # and the lower bounds would be.
    if hint is not None and len(chain) > 1 and (invariant_cost
                                                or not cost_mode):
        if cost_mode:
            # The incumbent and lower bounds below touch every row's
            # price; models with a vectorized pricer fill them in one
            # sweep per task instead of one Placement-building call per
            # row (tolist() round-trips float64 exactly, so the values
            # match price_row bit for bit).
            cost_array_fn = getattr(cost_model, "task_cost_array", None)
            if cost_array_fn is not None:
                for task_id in chain:
                    rows = candidates[task_id]
                    if len(rows) < _BATCH_MIN_ROWS:
                        # Below the batching crossover the array
                        # round-trip costs more than pricing the few
                        # rows on demand (``price_row`` fills them).
                        continue
                    priced = cost_array_fn(
                        job.task(task_id),
                        np.fromiter((row[4] for row in rows),
                                    dtype=np.int64, count=len(rows)),
                        [row[0] for row in rows])
                    for row, value in zip(rows, priced.tolist()):
                        row[7] = value
        incumbent = hint_incumbent()
        if incumbent is None:
            # The hint no longer re-fits (drifted calendars, collision
            # on a hinted node) — a greedy descent still recovers an
            # incumbent most of the time.
            incumbent = greedy_incumbent()
            if incumbent is None and cost_mode:
                # Cheapest-first can paint itself past a tight ceiling;
                # an earliest-finish descent maximizes slack and often
                # still completes the chain.
                incumbent = greedy_incumbent(by_finish=True)
            if incumbent is not None and PERF.enabled:
                PERF.incr("dp.greedy_incumbents")
        if incumbent is not None:
            pruning = True
            allowance_top = incumbent
            tail_lb = [0.0] * (len(chain) + 1)
            for position in range(len(chain) - 1, -1, -1):
                step_task = chain[position]
                rows = candidates[step_task]
                if cost_mode:
                    # The lower bound needs every row priced (min over
                    # the task's candidates).
                    step = min((r[7] if r[7] is not None
                                else price_row(step_task, r)
                                for r in rows), default=_INFINITY)
                else:
                    step = min((r[4] for r in rows), default=_INFINITY)
                tail_lb[position] = step + tail_lb[position + 1]
            if PERF.enabled:
                PERF.incr("dp.incumbents_warm")
        elif PERF.enabled:
            PERF.incr("dp.incumbents_cold")

    chain_length = len(chain)
    # Per-position constants, hoisted so each state expansion touches
    # lists instead of re-querying the job graph.
    incoming_by_index: list[Optional[DataTransfer]] = [None] * chain_length
    for position in range(1, chain_length):
        incoming_by_index[position] = job.transfer_between(
            chain[position - 1], chain[position])
    tasks_by_index = [job.task(task_id) for task_id in chain]
    # Uniform-lag models collapse each edge's lag to one constant (zero
    # co-located): the scalar inner loop then compares node ids instead
    # of consulting the transfer cache at all.
    uniform_by_index: list[Optional[int]] = [None] * chain_length
    if uniform_lag_fn is not None:
        for position in range(1, chain_length):
            uniform_by_index[position] = uniform_lag_fn(
                incoming_by_index[position])

    def lag_matrix(transfer: DataTransfer) -> np.ndarray:
        """The transfer's (pool src × pool dst) lag matrix, memoized in
        the context so the batch engine pays one build per (job, model,
        pool, edge) instead of per call."""
        matrix = (transfer_matrices.get(transfer.transfer_id)
                  if transfer_matrices is not None else None)
        if matrix is not None:
            return matrix
        pool_nodes = list(pool)
        size = len(pool_nodes)
        matrix = np.empty((size, size), dtype=np.int64)
        for src_at, src in enumerate(pool_nodes):
            for dst_at, dst in enumerate(pool_nodes):
                matrix[src_at, dst_at] = transfer_model.time(
                    transfer, src, dst)
        if PERF.enabled:
            PERF.incr("dp.transfer_matrix_builds")
        if transfer_matrices is not None:
            transfer_matrices[transfer.transfer_id] = matrix
        return matrix

    # Engine dispatch.  The batch engine needs start-invariant row
    # prices (both objectives rank on cost) and a materialized gap
    # table per candidate calendar; in ``auto`` mode a missing table —
    # the signature of a freshly mutated what-if copy — routes the call
    # to the scalar recursion instead of paying a rebuild.  Both
    # engines share the incumbent machinery above and return
    # bit-identical allocations (see ``_allocate_batch``).
    if (engine != "scalar" and invariant_cost
            and chain_length >= (_BATCH_MIN_CHAIN if engine == "auto"
                                 else 1)
            and (engine == "batch"
                 or max(len(candidates[task_id]) for task_id in chain)
                 >= _BATCH_MIN_ROWS)):
        stacks = _stacked_tables(chain, candidates,
                                 build=engine == "batch", context=context)
        if stacks is not None:
            allocation, spent = _allocate_batch(
                job, chain, pool, candidates, stacks, incoming_by_index,
                release, cost_mode, transfer_model, lag_matrix,
                cost_model, price_row, pruning, allowance_top, tail_lb)
            if allocation is None and pruning:
                # Mirrors the scalar defensive fallback: the incumbent
                # proved feasibility, so rerun cold rather than ever
                # returning a divergent answer.
                if PERF.enabled:  # pragma: no cover - defensive
                    PERF.incr("dp.warm_fallbacks")
                allocation, extra = _allocate_batch(
                    job, chain, pool, candidates, stacks, incoming_by_index,
                    release, cost_mode, transfer_model, lag_matrix,
                    cost_model, price_row, False, _INFINITY, tail_lb)
                spent += extra
            if allocation is None:
                return None
            allocation.evaluations = spent
            return allocation

    evaluations = 0
    # memo[(index, prev_node_id, ready)] ->
    #   (cost, finish, chosen node, start, end, next state key,
    #    exact, allowance the entry was computed under)
    # Exact entries equal the cold DP's value for the state.  Inexact
    # entries are bound proofs: the state's true primary criterion
    # exceeds the recorded allowance (they are reused to prune when the
    # caller's allowance is no larger, and recomputed otherwise).
    # Placements are only materialized during reconstruction — the DP
    # itself works on plain ints.
    memo: dict[tuple[int, Optional[int], int], tuple] = {}
    lag_cache_get = transfer_cache.get

    def best_from(index: int, prev_node_id: Optional[int], ready: int,
                  allowance: float) -> tuple[float, int, bool]:
        """Min (cost, finish, exact) for chain[index:], data-ready at
        ``ready``, exploring only solutions with primary ≤ allowance."""
        nonlocal evaluations
        if index == chain_length:
            return 0.0, ready, True
        key = (index, prev_node_id, ready)
        entry = memo.get(key)
        if entry is not None:
            if entry[6]:
                return entry[0], entry[1], True
            if allowance <= entry[7]:
                # Proven: true primary > entry[7] >= allowance.
                return entry[0], entry[1], False
            # Stale bound proof — recompute under the larger allowance.
        evaluations += 1
        if PERF.enabled:
            PERF.incr("dp.expansions")

        task_id = chain[index]
        incoming = incoming_by_index[index]
        no_incoming = incoming is None or prev_node_id is None
        uniform = None if no_incoming else uniform_by_index[index]
        # The previous node object is only needed to price an uncached
        # transfer lag — resolved lazily on the first cache miss.
        prev_node: Optional[ProcessorNode] = None
        next_lb = tail_lb[index + 1] if pruning else 0.0
        perf_on = PERF.enabled

        complete = True
        best_cost = best_finish = _INFINITY
        best_node = best_start = best_end = None
        for row in candidates[task_id]:
            (node, node_id, calendar, version, duration, floor, end_bound,
             row_cost, fits) = row
            if no_incoming:
                start_bound = ready
            elif uniform is not None:
                # Uniform-lag model: free co-located, one constant
                # across nodes — no cache, no model call.
                start_bound = (ready if prev_node_id == node_id
                               else ready + uniform)
            else:
                # Inlined transfer_time: this is the hottest lookup in
                # the kernel, worth skipping the call overhead for.
                lag_key = (incoming.transfer_id, prev_node_id, node_id)
                lag = lag_cache_get(lag_key)
                if lag is None:
                    if perf_on:
                        PERF.incr("dp.transfer_cache_misses")
                    if prev_node is None:
                        prev_node = pool.node(prev_node_id)
                    lag = transfer_model.time(incoming, prev_node, node)
                    transfer_cache[lag_key] = lag
                elif perf_on:
                    PERF.incr("dp.transfer_cache_hits")
                start_bound = ready + lag
            if floor > start_bound:
                start_bound = floor
            if start_bound + duration > end_bound:
                continue
            if pruning:
                bound = (row_cost + next_lb if cost_mode
                         else start_bound + duration + next_lb)
                if bound > allowance:
                    # Admissible lower bound strictly beats the
                    # incumbent-backed allowance: no solution through
                    # this candidate can match the optimum.
                    complete = False
                    if perf_on:
                        PERF.incr("dp.pruned")
                    continue
            # Inlined find_fit (see above): the fit query dominates the
            # inner loop, so the interval-witness lookup avoids a call.
            # Buckets attach lazily on the row's first query — rows the
            # DP never reaches stay bucket-free.
            if fits is None and fit_cache is not None:
                fit_key = (node_id, version, duration, end_bound)
                fits = fit_cache.get(fit_key)
                if fits is None:
                    fits = ([], [])
                    fit_cache[fit_key] = fits
                row[8] = fits
            if fits is None:
                # lint: scalar-fallback (no fit cache: bare query)
                start = calendar.earliest_fit(
                    duration, earliest=start_bound, deadline=end_bound)
            else:
                keys, starts = fits
                position = bisect_right(keys, start_bound) - 1
                if position >= 0 and (
                        (cached := starts[position]) is None
                        or start_bound <= cached):
                    start = cached
                    if perf_on:
                        PERF.incr("dp.fit_cache_hits")
                else:
                    if perf_on:
                        PERF.incr("dp.fit_cache_misses")
                    # lint: scalar-fallback (witness miss; answer cached)
                    start = calendar.earliest_fit(
                        duration, earliest=start_bound, deadline=end_bound)
                    keys.insert(position + 1, start_bound)
                    starts.insert(position + 1, start)
            if start is None:
                continue
            end = start + duration
            if row_cost is not None:
                own_cost = row_cost
            elif invariant_cost:
                own_cost = price_row(task_id, row)
            else:
                own_cost = cost_model.task_cost(
                    tasks_by_index[index],
                    Placement(task_id, node_id, start, end), node)
            child_allowance = (allowance - own_cost if cost_mode
                               else allowance)
            tail_cost, tail_finish, tail_exact = best_from(
                index + 1, node_id, end, child_allowance)
            if tail_cost == _INFINITY:
                if not tail_exact:
                    complete = False
                continue
            candidate_cost = own_cost + tail_cost
            candidate_finish = tail_finish if tail_finish > end else end
            if pruning:
                primary = candidate_cost if cost_mode else candidate_finish
                if primary > allowance:
                    complete = False
                    if perf_on:
                        PERF.incr("dp.pruned")
                    continue
            # Strict rank comparison, branch-specialized per objective:
            # the first candidate achieving the best rank wins ties (the
            # node iteration order is the pool order, as always).
            if cost_mode:
                better = (candidate_cost < best_cost
                          or (candidate_cost == best_cost
                              and candidate_finish < best_finish))
            else:
                better = (candidate_finish < best_finish
                          or (candidate_finish == best_finish
                              and candidate_cost < best_cost))
            if better:
                best_cost = candidate_cost
                best_finish = candidate_finish
                best_node = node_id
                best_start = start
                best_end = end
                if pruning:
                    # Every found solution is itself an incumbent:
                    # anything strictly worse on the primary criterion
                    # cannot win the rank comparison, so the remaining
                    # rows explore under the tightened allowance.  The
                    # inequality stays strict, so primary ties survive
                    # to be ranked on the secondary criterion exactly
                    # as in the cold pass.
                    allowance = best_cost if cost_mode else best_finish

        best_primary = best_cost if cost_mode else best_finish
        exact = complete or best_primary <= allowance
        next_key = ((index + 1, best_node, best_end)
                    if best_node is not None else None)
        memo[key] = (best_cost, best_finish, best_node, best_start,
                     best_end, next_key, exact, allowance)
        return best_cost, best_finish, exact

    start_key = (0, None, release)
    total_cost, finish, _ = best_from(0, None, release, allowance_top)
    if total_cost == _INFINITY and pruning:
        # The incumbent proved a feasible solution exists, so an
        # infeasible answer would mean the bounds misfired; fall back
        # to an exact cold pass rather than ever diverging from it.
        if PERF.enabled:  # pragma: no cover - defensive
            PERF.incr("dp.warm_fallbacks")
        memo.clear()
        pruning = False
        total_cost, finish, _ = best_from(0, None, release, _INFINITY)
    if total_cost == _INFINITY:
        return None

    placements: list[Placement] = []
    key = start_key
    while key is not None and key[0] < chain_length:
        entry = memo[key]
        placements.append(
            Placement(chain[key[0]], entry[2], entry[3], entry[4]))
        key = entry[5]
    return ChainAllocation(placements, total_cost, int(finish), evaluations)


def _stacked_tables(chain: Sequence[str],
                    candidates: Mapping[str, list],
                    build: bool,
                    context: Optional[SchedulingContext]) -> Optional[list]:
    """Stacked gap tables per chain position, or None to force scalar.

    With ``build=False`` (the ``auto`` engine) any candidate calendar
    without a materialized gap table vetoes the batch path — exactly
    the freshly mutated what-if copies the scalar fallback exists for.
    Positions with no candidate rows stack as None (the batch engine
    never queries them).  Without a context there is nothing to probe
    or memoize: ``build=False`` always vetoes, ``build=True`` stacks
    fresh tables per call.
    """
    stacks: list = []
    for task_id in chain:
        rows = candidates[task_id]
        if not rows:
            stacks.append(None)
            continue
        if context is None:
            if not build:
                return None
            stacks.append(_placement.StackedGaps(
                [row[2].gap_table() for row in rows]))
            continue
        # The rows carry their calendar versions (row[3]), so a cached
        # stack is found without touching the per-calendar tables — the
        # stacked arrays are self-contained copies of the gap data.
        stacked = context.cached_stack(tuple(row[3] for row in rows))
        if stacked is None:
            tables = []
            for row in rows:
                table = context.gap_table(row[2], build=build)
                if table is None:
                    return None
                tables.append(table)
            stacked = context.stack_gap_tables(tables)
        stacks.append(stacked)
    return stacks


def _allocate_batch(job: Job, chain: Sequence[str], pool: ResourcePool,
                    candidates: Mapping[str, list], stacks: list,
                    incoming_by_index: Sequence[Optional[DataTransfer]],
                    release: int, cost_mode: bool,
                    transfer_model: TransferModel,
                    lag_matrix: Callable[[DataTransfer], np.ndarray],
                    cost_model: CostModel,
                    price_row: Callable[[str, list], float],
                    pruning: bool, allowance: float,
                    tail_lb: Sequence[float]
                    ) -> tuple[Optional[ChainAllocation], int]:
    """Level-synchronous batched DP over the candidate rows.

    The scalar recursion explores states ``(position, previous node,
    data-ready slot)`` one at a time; this engine sweeps the whole
    state *level* of each chain position at once: an ``states × rows``
    start-bound matrix (one lag-matrix gather + floor clamp), a
    feasibility/pruning mask, one :func:`~repro.core.placement.
    batch_earliest_fit` call for every surviving pair, and an
    ``np.unique`` dedup of ``(node, end)`` successor states.  The
    backward pass then ranks each state's candidates with vectorized
    lexicographic argmins.

    Bit-identical to the recursion by construction:

    * candidate values use the same float operations in the same
      association — ``row_cost + tail_cost`` right to left, finishes as
      ``max(tail_finish, end)``;
    * ties on the primary criterion break to the secondary, then to the
      *first row in pool order* (the reversed-index scatter below);
    * pruning drops a pair only when ``min prefix cost + row cost +
      tail lower bound`` (cost mode) or ``start bound + duration +
      tail lower bound`` (time mode) strictly exceeds the incumbent —
      every state on an optimal path keeps its full tie set, so values,
      winners, and placements match the cold recursion exactly (the
      same argument as the scalar warm start, with the forward-minimum
      prefix cost standing in for the recursion's running allowance);
    * the expansion count is the number of states entering each
      position — exactly the states the cold recursion would expand.

    Returns ``(allocation or None, evaluations)``; the caller owns the
    defensive cold rerun when pruning yields None.
    """
    pool_nodes = list(pool)
    pool_position = {node.node_id: index
                     for index, node in enumerate(pool_nodes)}
    chain_length = len(chain)
    cost_array_fn = getattr(cost_model, "task_cost_array", None)
    uniform_fn = getattr(transfer_model, "uniform_lag", None)

    # Candidate rows as per-position SoA columns.
    col_pos: list[np.ndarray] = []
    col_dur: list[np.ndarray] = []
    col_floor: list[np.ndarray] = []
    col_ceiling: list[np.ndarray] = []
    col_cost: list[np.ndarray] = []
    for task_id in chain:
        rows = candidates[task_id]
        count = len(rows)
        col_pos.append(np.fromiter((pool_position[row[1]] for row in rows),
                                   dtype=np.int64, count=count))
        durations = np.fromiter((row[4] for row in rows), dtype=np.int64,
                                count=count)
        col_dur.append(durations)
        col_floor.append(np.fromiter((row[5] for row in rows),
                                     dtype=np.int64, count=count))
        col_ceiling.append(np.fromiter((row[6] for row in rows),
                                       dtype=np.int64, count=count))
        if count and cost_array_fn is not None:
            # Vectorized row pricing — elementwise the same float ops
            # as CostModel.task_cost, so the values are bit-identical.
            costs = np.asarray(
                cost_array_fn(job.task(task_id), durations,
                              [row[0] for row in rows]), dtype=np.float64)
        else:
            costs = np.fromiter(
                (row[7] if row[7] is not None else price_row(task_id, row)
                 for row in rows), dtype=np.float64, count=count)
        col_cost.append(costs)

    # Forward sweep: enumerate the reachable state level of every
    # position (ready slots per pool position), recording the feasible
    # (state, row) pairs and their fitted start/end slots.
    states_ready = np.full(1, release, dtype=np.int64)
    states_pos = np.full(1, -1, dtype=np.int64)
    # Minimum prefix cost per state — the pruning bound's g-value.
    states_cost = np.zeros(1, dtype=np.float64)
    evaluations = 0
    perf_on = PERF.enabled
    pairs: list[tuple] = []
    for index in range(chain_length):
        state_count = states_ready.shape[0]
        row_count = col_dur[index].shape[0]
        if state_count:
            evaluations += state_count
            if perf_on:
                PERF.incr("dp.expansions", state_count)
        if state_count == 0 or row_count == 0:
            pairs.append((_EMPTY_I, _EMPTY_I, _EMPTY_I, _EMPTY_I, _EMPTY_I,
                          state_count))
            states_ready = states_pos = _EMPTY_I
            states_cost = _EMPTY_F
            continue
        durations = col_dur[index]
        ceilings = col_ceiling[index]
        incoming = incoming_by_index[index]
        if incoming is None:
            start_bound = np.maximum(states_ready[:, None],
                                     col_floor[index][None, :])
        else:
            uniform = (uniform_fn(incoming) if uniform_fn is not None
                       else None)
            if uniform is not None:
                # Constant cross-node lag: one masked add replaces the
                # node × node matrix gather.
                start_bound = np.where(
                    states_pos[:, None] == col_pos[index][None, :],
                    states_ready[:, None],
                    states_ready[:, None] + uniform)
            else:
                start_bound = states_ready[:, None] + lag_matrix(incoming)[
                    states_pos[:, None], col_pos[index][None, :]]
            np.maximum(start_bound, col_floor[index][None, :],
                       out=start_bound)
        feasible = start_bound + durations[None, :] <= ceilings[None, :]
        if pruning:
            if cost_mode:
                bound = (states_cost[:, None] + col_cost[index][None, :]
                         + tail_lb[index + 1])
            else:
                bound = (start_bound + durations[None, :]
                         + tail_lb[index + 1])
            feasible &= bound <= allowance
        state_at, row_at = np.nonzero(feasible)
        starts = _placement.batch_earliest_fit(
            stacks[index], row_at, start_bound[state_at, row_at],
            durations, ceilings)
        placed = starts >= 0
        state_at, row_at, starts = (state_at[placed], row_at[placed],
                                    starts[placed])
        ends = starts + durations[row_at]
        keys = col_pos[index][row_at] * _STATE_STRIDE + ends
        unique_keys, successor = np.unique(keys, return_inverse=True)
        pairs.append((state_at, row_at, starts, ends, successor,
                      state_count))
        states_pos = unique_keys // _STATE_STRIDE
        states_ready = unique_keys - states_pos * _STATE_STRIDE
        if pruning and cost_mode:
            accumulated = np.full(unique_keys.shape[0], _INFINITY)
            np.minimum.at(accumulated, successor,
                          states_cost[state_at] + col_cost[index][row_at])
            states_cost = accumulated

    # Backward value pass: per-state lexicographic argmin over pairs,
    # ties to the first pair (pool order × monotone unique keys — the
    # pair order within a state matches the scalar row order).
    next_cost = next_finish = _EMPTY_F
    picks: list[np.ndarray] = []
    for index in range(chain_length - 1, -1, -1):
        state_at, row_at, _, ends, successor, state_count = pairs[index]
        cand_cost = col_cost[index][row_at]
        if index == chain_length - 1:
            cand_finish = ends.astype(np.float64)
        else:
            cand_cost = cand_cost + next_cost[successor]
            cand_finish = np.maximum(next_finish[successor],
                                     ends.astype(np.float64))
        primary = cand_cost if cost_mode else cand_finish
        secondary = cand_finish if cost_mode else cand_cost
        best_primary = np.full(state_count, _INFINITY)
        np.minimum.at(best_primary, state_at, primary)
        tie = primary == best_primary[state_at]
        best_secondary = np.full(state_count, _INFINITY)
        np.minimum.at(best_secondary, state_at[tie], secondary[tie])
        winners = np.nonzero(tie & (secondary == best_secondary[state_at]))[0]
        pick = np.full(state_count, -1, dtype=np.int64)
        pick[state_at[winners[::-1]]] = winners[::-1]
        value_cost = np.full(state_count, _INFINITY)
        value_finish = np.full(state_count, _INFINITY)
        chosen = pick >= 0
        value_cost[chosen] = cand_cost[pick[chosen]]
        value_finish[chosen] = cand_finish[pick[chosen]]
        picks.append(pick)
        next_cost, next_finish = value_cost, value_finish
    picks.reverse()

    root_primary = next_cost[0] if cost_mode else next_finish[0]
    if root_primary == _INFINITY:
        return None, evaluations

    placements: list[Placement] = []
    state = 0
    for index in range(chain_length):
        pair = int(picks[index][state])
        _, row_at, starts, ends, successor, _ = pairs[index]
        row = candidates[chain[index]][int(row_at[pair])]
        placements.append(Placement(
            chain[index], row[1], int(starts[pair]), int(ends[pair])))
        state = int(successor[pair])
    return (ChainAllocation(placements, float(next_cost[0]),
                            int(next_finish[0]), evaluations),
            evaluations)
