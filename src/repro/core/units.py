"""Small numeric helpers shared across the scheduling core.

The scheduling core works in integer time slots (wall-time reservations in
a local batch system are integral), while node performance factors are
floats such as 1/3.  Naive ``ceil(a / b)`` on floats produces off-by-one
errors (``2 / (1/3)`` is ``6.000000000000001``), so all slot arithmetic
goes through the tolerant helpers here.
"""

from __future__ import annotations

import math

__all__ = ["EPSILON", "ceil_div", "ceil_units", "scale_duration", "interpolate"]

#: Tolerance absorbing float representation noise in slot arithmetic.
EPSILON = 1e-9


def ceil_units(value: float) -> int:
    """Round ``value`` up to an integer slot count, tolerating float noise.

    >>> ceil_units(6.000000000000001)
    6
    >>> ceil_units(6.2)
    7
    """
    return int(math.ceil(value - EPSILON))


def ceil_div(numerator: float, denominator: float) -> int:
    """``ceil(numerator / denominator)`` with float-noise tolerance.

    Used for the paper's cost function ``CF = Σ ceil(V_ij / T_i)``
    ("rounded to nearest not-smaller integer").
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return ceil_units(numerator / denominator)


def scale_duration(base: float, performance: float) -> int:
    """Execution slots of a task with ``base`` reference time on a node.

    ``performance`` is relative to the reference (fastest) node, so a node
    with performance 1/2 takes twice the base time.

    >>> scale_duration(2, 0.5)
    4
    >>> scale_duration(2, 1/3)
    6
    """
    if performance <= 0:
        raise ValueError(f"performance must be positive, got {performance}")
    if base < 0:
        raise ValueError(f"base duration must be non-negative, got {base}")
    return ceil_units(base / performance)


def interpolate(best: float, worst: float, level: float) -> float:
    """Linear interpolation between best- and worst-case estimates.

    ``level`` 0 selects the optimistic estimate, 1 the pessimistic one.
    """
    if not 0.0 <= level <= 1.0:
        raise ValueError(f"level must lie in [0, 1], got {level}")
    if best > worst:
        raise ValueError(f"best ({best}) must not exceed worst ({worst})")
    return best + (worst - best) * level
