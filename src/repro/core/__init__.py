"""The paper's primary contribution: application-level scheduling with
the critical works method, and strategies as sets of supporting schedules.
"""

from .calendar import Reservation, ReservationCalendar, ReservationConflict
from .collisions import Collision, CollisionStats
from .costs import (
    CostModel,
    PricedTimeCost,
    VolumeOverTimeCost,
    cheapest_possible_cost,
    distribution_cost,
    relative_cost,
)
from .critical_works import CriticalWorksScheduler, SchedulingOutcome
from .dp import ChainAllocation, allocate_chain
from .granularity import coarsen, merge_linear_sections, serialize
from .job import DataTransfer, Job, JobValidationError, Task
from .resources import (
    FIG2_TYPE_PERFORMANCES,
    NodeGroup,
    ProcessorNode,
    ResourcePool,
    classify_performance,
)
from .schedule import (
    Distribution,
    Placement,
    ScheduleViolation,
    check_distribution,
)
from .strategy import (
    STRATEGY_SPECS,
    DataPolicyKind,
    Strategy,
    StrategyGenerator,
    StrategySpec,
    StrategyType,
    SupportingSchedule,
)
from .transfers import NeutralTransferModel, TransferModel, transfer_time_fn

__all__ = [
    "Task",
    "DataTransfer",
    "Job",
    "JobValidationError",
    "ProcessorNode",
    "ResourcePool",
    "NodeGroup",
    "classify_performance",
    "FIG2_TYPE_PERFORMANCES",
    "Reservation",
    "ReservationCalendar",
    "ReservationConflict",
    "Placement",
    "Distribution",
    "ScheduleViolation",
    "check_distribution",
    "CostModel",
    "VolumeOverTimeCost",
    "PricedTimeCost",
    "distribution_cost",
    "relative_cost",
    "cheapest_possible_cost",
    "TransferModel",
    "NeutralTransferModel",
    "transfer_time_fn",
    "ChainAllocation",
    "allocate_chain",
    "CriticalWorksScheduler",
    "SchedulingOutcome",
    "Collision",
    "CollisionStats",
    "coarsen",
    "merge_linear_sections",
    "serialize",
    "StrategyType",
    "StrategySpec",
    "STRATEGY_SPECS",
    "DataPolicyKind",
    "Strategy",
    "StrategyGenerator",
    "SupportingSchedule",
]
