"""Cost functions over distributions.

The paper's cost function (Section 3) is::

    CF = Σ_i ceil(V_ij / T_i)

where ``V_ij`` is task *i*'s relative computation volume and ``T_i`` the
real load time of the chosen node (the reserved wall time), rounded "to
the nearest not-smaller integer".  A shorter reservation — a faster node,
or an earlier finish — therefore costs more, implementing the economic
principle that the user pays extra for more powerful resources.

Costs are in conventional quota units, not real money, matching the
paper's corporate non-commercial virtual organizations.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from .job import Job, Task
from .resources import ProcessorNode, ResourcePool
from .schedule import Distribution, Placement
from .units import EPSILON, ceil_div

__all__ = [
    "CostModel",
    "VolumeOverTimeCost",
    "BalancedTimeCost",
    "PricedTimeCost",
    "distribution_cost",
    "relative_cost",
]


class CostModel(Protocol):
    """Anything that can price a single task placement.

    A model may additionally declare ``time_invariant = True`` to state
    that :meth:`task_cost` depends only on the placement's *duration*,
    never its start slot.  The DP kernel uses the declaration to price
    candidate rows once and to bound partial chains during warm-started
    search (:func:`repro.core.dp.allocate_chain`); models that price by
    wall-clock position (peak-hour tariffs, say) must leave it unset.

    Time-invariant models may also provide ``task_cost_array(task,
    durations, nodes) -> np.ndarray`` — a vectorized :meth:`task_cost`
    over per-node reservation lengths.  The batch DP engine uses it to
    price a task's whole candidate row set in one sweep; the values
    must be **bit-identical** to elementwise ``task_cost`` (same float
    operations in the same order), because warm-started pruning mixes
    the two.  Models without it are priced through the scalar method.

    Finally, a model may expose ``price_key`` — a hashable value that,
    together with ``(task.volume, reservation duration, node id)``,
    fully determines :meth:`task_cost`.  Declaring it lets the DP memo
    row prices *across* calls in the session context (template-derived
    siblings re-price the same (volume, duration, node) triples on
    every replan); the key must change whenever a pricing parameter
    does, so stateful models expose it as a property over their state.
    Models without the attribute are priced per call.
    """

    def task_cost(self, task: Task, placement: Placement,
                  node: ProcessorNode) -> float:
        """Cost of running ``task`` under ``placement`` on ``node``."""
        ...  # pragma: no cover - protocol


class VolumeOverTimeCost:
    """The paper's ``CF`` term: ``ceil(V_i / T_i)``."""

    #: ``ceil(V_i / T_i)`` reads only the reservation length.
    time_invariant = True
    #: Stateless: the cost is a pure function of (volume, duration).
    price_key = ("cf",)

    def task_cost(self, task: Task, placement: Placement,
                  node: ProcessorNode) -> float:
        """``ceil(V_i / T_i)`` — the paper's per-task CF term."""
        return ceil_div(task.volume, placement.duration)

    def task_cost_array(self, task: Task, durations: np.ndarray,
                        nodes: Sequence[ProcessorNode]) -> np.ndarray:
        """Vectorized :meth:`task_cost` — same float ops as ``ceil_div``."""
        return np.ceil(task.volume / durations - EPSILON)


class BalancedTimeCost:
    """The S2 family's multicriteria objective: occupancy plus CF.

    S2 is the paper's "fastest, most expensive and most accurate"
    family: its users optimize execution speed but still operate inside
    the VO economy.  The criterion charges the reserved wall time (so
    fast nodes with tight reservations win) plus ``cf_weight`` times the
    economic CF term (so the cheapest of equally fast options wins).
    The default weight was calibrated so the Fig. 3b collision split
    lands near the paper's 56/44 (see EXPERIMENTS.md).
    """

    #: Wall time plus CF — both functions of the duration alone.
    time_invariant = True

    def __init__(self, cf_weight: float = 2.5):
        if cf_weight < 0:
            raise ValueError(
                f"cf_weight must be non-negative, got {cf_weight}")
        self.cf_weight = cf_weight

    @property
    def price_key(self) -> tuple:
        """Cross-call price-memo scope: tracks the live weight."""
        return ("balanced", self.cf_weight)

    def task_cost(self, task: Task, placement: Placement,
                  node: ProcessorNode) -> float:
        """Reserved wall time plus the weighted CF term."""
        return (placement.duration
                + self.cf_weight * ceil_div(task.volume, placement.duration))

    def task_cost_array(self, task: Task, durations: np.ndarray,
                        nodes: Sequence[ProcessorNode]) -> np.ndarray:
        """Vectorized :meth:`task_cost` (durations + weighted CF term)."""
        return (durations
                + self.cf_weight * np.ceil(task.volume / durations - EPSILON))


class PricedTimeCost:
    """Economic alternative: node price rate × reserved wall time.

    Used by the VO economics module where resource owners publish per-slot
    prices (possibly adjusted dynamically).
    """

    #: Rate × duration × surge — no dependence on the start slot.
    time_invariant = True

    def __init__(self, surge: float = 1.0):
        if surge <= 0:
            raise ValueError(f"surge must be positive, got {surge}")
        #: Multiplier applied on top of node price rates (dynamic pricing).
        self.surge = surge

    @property
    def price_key(self) -> tuple:
        """Cross-call price-memo scope: tracks the live surge factor."""
        return ("priced", self.surge)

    def task_cost(self, task: Task, placement: Placement,
                  node: ProcessorNode) -> float:
        """Published node price × reserved wall time × surge."""
        # __post_init__ guarantees a rate; the fallback narrows the
        # Optional for type checkers.
        rate = node.price_rate if node.price_rate is not None \
            else node.performance
        return rate * placement.duration * self.surge

    def task_cost_array(self, task: Task, durations: np.ndarray,
                        nodes: Sequence[ProcessorNode]) -> np.ndarray:
        """Vectorized :meth:`task_cost` (rate × duration × surge)."""
        rates = np.fromiter(
            (node.price_rate if node.price_rate is not None
             else node.performance for node in nodes),
            dtype=np.float64, count=len(nodes))
        return rates * durations * self.surge


def distribution_cost(distribution: Distribution, job: Job,
                      pool: ResourcePool,
                      model: CostModel | None = None) -> float:
    """Total cost of a distribution under a cost model (default: CF)."""
    if model is None:
        model = VolumeOverTimeCost()
    total = 0.0
    for placement in distribution:
        task = job.task(placement.task_id)
        node = pool.node(placement.node_id)
        total += model.task_cost(task, placement, node)
    return total


def relative_cost(distribution: Distribution, job: Job,
                  pool: ResourcePool,
                  model: CostModel | None = None) -> float:
    """Cost normalized by the job's cheapest conceivable cost.

    The floor books every task on the slowest node for its longest
    feasible reservation (the whole deadline window), so the ratio is
    ≥ 1 and comparable across jobs of different sizes — used for the
    relative job completion cost bars of Fig. 4b.
    """
    if model is None:
        model = VolumeOverTimeCost()
    actual = distribution_cost(distribution, job, pool, model)
    floor = cheapest_possible_cost(job, pool, model)
    if floor <= 0:
        return actual if actual > 0 else 1.0
    return actual / floor


def cheapest_possible_cost(job: Job, pool: ResourcePool,
                           model: CostModel | None = None) -> float:
    """Lower bound: every task on its cheapest node at its longest time.

    With the CF model the cheapest configuration stretches each task's
    reservation to the full deadline (larger ``T_i`` ⇒ lower cost); when
    the job has no deadline we use the task's worst-case time on the
    slowest node.
    """
    if model is None:
        model = VolumeOverTimeCost()
    total = 0.0
    slowest = min(pool, key=lambda n: n.performance)
    for task in job.tasks.values():
        longest = task.duration_on(slowest.performance, level=1.0)
        if job.deadline:
            longest = max(longest, job.deadline)
        placement = Placement(task.task_id, slowest.node_id, 0, longest)
        best = min(
            model.task_cost(task, placement, node) for node in pool)
        total += best
    return total
