"""Scheduling strategies: sets of supporting schedules.

A *strategy* (Section 3) is a set of possible resource allocations and
schedules — *supporting schedules* — for a compound job, one per
anticipated environment event.  Here an event is an estimation level:
the degree to which actual task durations approach the user's worst-case
estimates.  The metascheduler later activates the supporting schedule
matching the observed environment and switches between them when
resources change (the reallocation mechanism).

The paper's strategy families:

* **S1** — fine-grain computations, active data replication, full
  estimation coverage;
* **S2** — fine-grain computations, remote data access, full coverage;
* **S3** — coarse-grain computations, static data storage, full coverage;
* **MS1** — S1 restricted to the best- and worst-case estimates only
  (cheaper to generate, less complete coverage of events).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Mapping, Optional

from ..perf import PERF
from .calendar import ReservationCalendar
from .collisions import Collision
from .context import SchedulingContext
from .costs import BalancedTimeCost, CostModel
from .critical_works import CriticalWorksScheduler, SchedulingOutcome
from .granularity import coarsen, serialize
from .units import ceil_units
from .job import Job
from .resources import ResourcePool
from .schedule import Distribution
from .transfers import TransferModel

__all__ = [
    "DataPolicyKind",
    "StrategyType",
    "StrategySpec",
    "STRATEGY_SPECS",
    "LEVEL_EPS",
    "SupportingSchedule",
    "Strategy",
    "StrategyGenerator",
]

#: Tolerance for comparing estimation levels.  Levels are thirds
#: (0, 1/3, 2/3, 1), so equality checks between a planning level and an
#: observed level must absorb float representation error; a variant
#: covers a level when ``variant.level >= level - LEVEL_EPS``.
LEVEL_EPS = 1e-9


class DataPolicyKind(enum.Enum):
    """Data handling regimes distinguishing the strategy families."""

    REPLICATION = "replication"    # active data replication (S1, MS1)
    REMOTE_ACCESS = "remote"       # data read remotely on demand (S2)
    STATIC = "static"              # data stays where produced (S3)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class StrategyType(enum.Enum):
    """The strategy families evaluated in Section 4."""

    S1 = "S1"
    S2 = "S2"
    S3 = "S3"
    MS1 = "MS1"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Full estimation coverage: four levels from best to worst case
#: (mirroring the four estimate rows of the Fig. 2 table).
FULL_LEVELS: tuple[float, ...] = (0.0, 1 / 3, 2 / 3, 1.0)
#: MS1 coverage: best and worst case only.
EXTREME_LEVELS: tuple[float, ...] = (0.0, 1.0)


@dataclass(frozen=True)
class StrategySpec:
    """Static description of one strategy family.

    Beyond granularity and data policy, a family fixes its optimization
    criterion — the paper stresses that strategies are *multicriteria*:
    S1/MS1 minimize cost (and therefore drift toward cheap slow nodes),
    S2 is "the fastest, most expensive and most accurate" family
    (finish-time first), and S3 "tries to monopolize processor
    resources with the highest performance and to minimize data
    exchanges" (cost-first on a restricted top-performance node set).
    """

    stype: StrategyType
    policy: DataPolicyKind
    levels: tuple[float, ...]
    #: 1.0 keeps the job fine-grain; larger factors merge linear
    #: sections; ``inf`` serializes the whole job into one task.
    granularity_factor: float = 1.0
    #: DP criterion: "cost" (criterion-first) or "time" (finish-first).
    objective: str = "cost"
    #: Restrict jobs to the top-performance nodes they can use at once.
    monopolize: bool = False
    #: Selection pricing: "cf" (the economic CF term; cheap slow nodes
    #: win) or "balanced" (occupancy + CF; fast nodes win — S2).
    pricing: str = "cf"

    @property
    def coarse(self) -> bool:
        """True when this family aggregates tasks (S3)."""
        return self.granularity_factor > 1.0


STRATEGY_SPECS: dict[StrategyType, StrategySpec] = {
    StrategyType.S1: StrategySpec(
        StrategyType.S1, DataPolicyKind.REPLICATION, FULL_LEVELS),
    StrategyType.S2: StrategySpec(
        StrategyType.S2, DataPolicyKind.REMOTE_ACCESS, FULL_LEVELS,
        pricing="balanced"),
    StrategyType.S3: StrategySpec(
        StrategyType.S3, DataPolicyKind.STATIC, FULL_LEVELS,
        granularity_factor=2.0, monopolize=True),
    StrategyType.MS1: StrategySpec(
        StrategyType.MS1, DataPolicyKind.REPLICATION, EXTREME_LEVELS),
}


@dataclass
class SupportingSchedule:
    """One schedule variant of a strategy, for one estimation level."""

    level: float
    outcome: SchedulingOutcome

    @property
    def admissible(self) -> bool:
        """True when this variant meets the job's completion time."""
        return self.outcome.admissible

    @property
    def distribution(self) -> Optional[Distribution]:
        """The schedule itself (None when inadmissible)."""
        return self.outcome.distribution


@dataclass
class Strategy:
    """A generated strategy: the job's set of supporting schedules."""

    job: Job
    #: The job as scheduled (coarsened for S3; identical to job otherwise).
    scheduled_job: Job
    stype: StrategyType
    schedules: list[SupportingSchedule]
    #: Total DP state expansions over all supporting schedules.
    generation_expense: int

    @property
    def spec(self) -> StrategySpec:
        """The family description this strategy was generated from."""
        return STRATEGY_SPECS[self.stype]

    @property
    def admissible(self) -> bool:
        """True when at least one supporting schedule is admissible."""
        return any(schedule.admissible for schedule in self.schedules)

    @property
    def coverage(self) -> float:
        """How much of the best..worst event range the strategy covers.

        A supporting schedule planned at level ``L`` covers every actual
        level up to ``L`` (its reservations are long enough), so the
        covered range is the highest admissible planning level.  MS1,
        restricted to the extreme estimates, covers either everything
        (worst case admissible) or only the best-case point — "less
        complete ... in the sense of coverage of events".
        """
        admissible = self.admissible_schedules()
        if not admissible:
            return 0.0
        return max(schedule.level for schedule in admissible)

    def admissible_schedules(self) -> list[SupportingSchedule]:
        """All variants meeting the completion time, in level order."""
        return [s for s in self.schedules if s.admissible]

    def covering_schedules(self, level: float) -> list[SupportingSchedule]:
        """All admissible variants covering ``level``, in level order.

        A variant covers an observed level when its planning level is at
        least the observed one (within :data:`LEVEL_EPS`) — the
        reservations it made are then long enough for the actual
        durations.
        """
        return [s for s in self.admissible_schedules()
                if s.level >= level - LEVEL_EPS]

    def schedule_for_level(self, level: float
                           ) -> Optional[SupportingSchedule]:
        """The tightest admissible variant covering ``level``, if any."""
        candidates = self.covering_schedules(level)
        if not candidates:
            return None
        return min(candidates, key=lambda s: s.level)

    def best_schedule(self) -> Optional[SupportingSchedule]:
        """The cheapest admissible variant (ties: earliest finish)."""
        candidates = self.admissible_schedules()
        if not candidates:
            return None
        return min(candidates,
                   key=lambda s: (s.outcome.cost, s.outcome.makespan))

    def cheapest_covering(self, level: float
                          ) -> Optional[SupportingSchedule]:
        """The cheapest admissible variant whose planning level covers
        an observed (or forecast) level — the variant the metascheduler
        activates: safe against the forecast, minimal in cost."""
        candidates = self.covering_schedules(level)
        if not candidates:
            return None
        return min(candidates,
                   key=lambda s: (s.outcome.cost, s.outcome.makespan))

    def all_collisions(self) -> list[Collision]:
        """Collisions across every supporting schedule."""
        collected: list[Collision] = []
        for schedule in self.schedules:
            collected.extend(schedule.outcome.collisions)
        return collected

    def level_hints(self) -> dict[float, dict[str, int]]:
        """Per-level task→node assignments, as warm-start seed hints.

        The repair path feeds these to :meth:`StrategyGenerator.
        generate` so a regeneration against drifted calendars starts
        from this (stale) strategy's placements: tasks whose nodes kept
        their slots re-fit as the branch-and-bound incumbent and only
        the drifted remainder is re-searched.  Hints never change
        results (exact pruning) — a hint that no longer fits merely
        costs the search it would have saved.
        """
        return {s.level: {p.task_id: p.node_id
                          for p in s.outcome.distribution}
                for s in self.schedules
                if s.outcome.distribution is not None}

    def rebind(self, job: Job) -> "Strategy":
        """This strategy re-addressed to a structurally identical job.

        Serving a cached plan across template-derived siblings must
        rewrite the job identity everywhere it is recorded — the
        distributions, outcomes, and collision records — while the
        frozen placements themselves are shared.  Only sound for jobs
        with equal :attr:`~repro.core.job.Job.structural_hash`:
        generation is deterministic in the labelled structure, so the
        rebound strategy is exactly what generating for ``job`` against
        the same calendars would have produced.
        """
        if job is self.job:
            return self
        if self.scheduled_job is self.job:
            scheduled_job = job
        else:
            # Coarse families (S3) schedule an aggregated job; rebuild
            # it under the new identity from the shared task objects.
            scheduled_job = Job(job.job_id,
                                self.scheduled_job.tasks.values(),
                                self.scheduled_job.transfers,
                                deadline=self.scheduled_job.deadline,
                                owner=job.owner)
        schedules = [
            SupportingSchedule(level=s.level,
                               outcome=_rebind_outcome(s.outcome,
                                                       job.job_id))
            for s in self.schedules
        ]
        return Strategy(job=job, scheduled_job=scheduled_job,
                        stype=self.stype, schedules=schedules,
                        generation_expense=self.generation_expense)


def _rebind_outcome(outcome: SchedulingOutcome,
                    job_id: str) -> SchedulingOutcome:
    """An outcome's copy under a new job id (placements shared)."""
    distribution = outcome.distribution
    if distribution is not None:
        distribution = Distribution(job_id, distribution,
                                    scenario=distribution.scenario)
    return SchedulingOutcome(
        job_id=job_id,
        distribution=distribution,
        admissible=outcome.admissible,
        collisions=[replace(collision, job_id=job_id)
                    for collision in outcome.collisions],
        evaluations=outcome.evaluations,
        level=outcome.level,
        cost=outcome.cost,
        makespan=outcome.makespan)


class StrategyGenerator:
    """Generates strategies of every family for compound jobs.

    Parameters
    ----------
    pool:
        Processor nodes visible to the generating job manager.
    policy_models:
        Mapping from :class:`DataPolicyKind` to a transfer model; when
        omitted, the Grid substrate's default models are used.
    cost_model:
        Placement pricing shared by all families (default: CF).
    warm_start:
        Seed each estimation level's DP with the previous level's
        node assignment as a branch-and-bound incumbent.  Generated
        strategies are bit-identical either way (the pruning is exact;
        see :func:`repro.core.dp.allocate_chain`); warm starts only
        reduce ``generation_expense`` and wall time.  On by default.
    engine:
        DP engine selection forwarded to the per-family schedulers
        (``"auto"``, ``"scalar"``, or ``"batch"``; see
        :func:`repro.core.dp.allocate_chain`).  Bit-identical either
        way — strictly a speed knob, and the differential tests' lever.
    context:
        The :class:`~repro.core.context.SchedulingContext` shared by
        every per-family scheduler the generator builds (one private
        context by default).  Metaschedulers pass their own so fit
        memos and gap tables carry across managers and arrivals.
    """

    def __init__(self, pool: ResourcePool,
                 policy_models: Optional[Mapping[DataPolicyKind,
                                                 TransferModel]] = None,
                 cost_model: Optional[CostModel] = None,
                 balanced_cf_weight: Optional[float] = None,
                 warm_start: bool = True,
                 engine: str = "auto",
                 context: Optional[SchedulingContext] = None):
        self.pool = pool
        if policy_models is None:
            policy_models = _default_policy_models()
        self.policy_models = dict(policy_models)
        self.cost_model = cost_model
        #: CF weight of the S2 family's balanced criterion (None: the
        #: calibrated default of :class:`~repro.core.costs.BalancedTimeCost`).
        self.balanced_cf_weight = balanced_cf_weight
        self.warm_start = warm_start
        self.engine = engine
        #: Session cache layer shared by all family schedulers.
        self.context = context if context is not None else SchedulingContext()
        self._schedulers: dict[StrategyType, CriticalWorksScheduler] = {}

    def scheduler_for(self, stype: StrategyType) -> CriticalWorksScheduler:
        """The (cached) critical-works scheduler for one family."""
        if stype not in self._schedulers:
            spec = STRATEGY_SPECS[stype]
            try:
                model = self.policy_models[spec.policy]
            except KeyError:
                raise KeyError(
                    f"no transfer model registered for policy {spec.policy}"
                ) from None
            if spec.pricing == "balanced":
                criterion = (BalancedTimeCost(self.balanced_cf_weight)
                             if self.balanced_cf_weight is not None
                             else BalancedTimeCost())
            else:
                criterion = self.cost_model
            self._schedulers[stype] = CriticalWorksScheduler(
                self.pool, model, criterion,
                objective=spec.objective, monopolize=spec.monopolize,
                accounting_model=self.cost_model, engine=self.engine,
                context=self.context)
        return self._schedulers[stype]

    def generate(self, job: Job,
                 calendars: Mapping[int, ReservationCalendar],
                 stype: StrategyType, release: int = 0,
                 seed_hints: Optional[Mapping[float, Mapping[str, int]]]
                 = None) -> Strategy:
        """Build the strategy of family ``stype`` for ``job``.

        ``calendars`` snapshot the environment load; they are not
        mutated.  One supporting schedule is produced per estimation
        level of the family.

        ``seed_hints`` (per-level task→node maps, typically a stale
        sibling strategy's :meth:`Strategy.level_hints`) warm-start the
        *repair* path: a level with no fresh previous-level hint seeds
        its DP from the stale assignment instead of starting cold.
        Hints only prune — exact branch-and-bound bounds keep the
        result bit-identical to a cold generation.
        """
        spec = STRATEGY_SPECS[stype]
        if not spec.coarse:
            scheduled_job = job
        elif spec.granularity_factor == float("inf"):
            scheduled_job = serialize(job)
        else:
            # Aggressive coarsening down to the job's parallelism degree:
            # serial sections collapse but the parallel branches remain
            # (those branches are what collides on the monopolized top
            # nodes in Fig. 3b).
            target = max(2, job.max_width(),
                         ceil_units(len(job) / spec.granularity_factor))
            scheduled_job = coarsen(job, target_tasks=target,
                                    aggressive=True)
        scheduler = self.scheduler_for(stype)

        schedules: list[SupportingSchedule] = []
        expense = 0
        # One ranking cache services all levels below: the scheduler
        # re-ranks critical works per level but enumerates the DAG once.
        # With warm starts, each level additionally seeds its DP with
        # the previous level's node assignment — adjacent levels mostly
        # agree on nodes, so the incumbent prunes hard while leaving the
        # outcomes bit-identical.
        warm_hint: Optional[Mapping[str, int]] = None
        with PERF.timer("strategy.generate"):
            for level in spec.levels:
                hint = warm_hint
                if hint is None and seed_hints is not None and self.warm_start:
                    # Repair seed: the stale sibling's assignment for
                    # this same level (adjacent-level hints from *this*
                    # run always take precedence — they saw the current
                    # calendars).
                    hint = seed_hints.get(level)
                outcome = scheduler.build_schedule(
                    scheduled_job, calendars, level=level, release=release,
                    warm_hint=hint)
                expense += outcome.evaluations
                schedules.append(
                    SupportingSchedule(level=level, outcome=outcome))
                if self.warm_start and outcome.distribution is not None:
                    warm_hint = {p.task_id: p.node_id
                                 for p in outcome.distribution}

        return Strategy(job=job, scheduled_job=scheduled_job, stype=stype,
                        schedules=schedules, generation_expense=expense)


def _default_policy_models() -> dict[DataPolicyKind, TransferModel]:
    """The Grid substrate's standard policy timings (lazy import keeps
    the scheduling core importable without the grid package)."""
    from ..grid.data import default_policy_models

    return default_policy_models()
