"""Reservation calendars: per-node busy intervals and advance reservations.

A local batch-job management system interprets each task as a job with a
wall-time resource reservation ``[Start, End)``.  The calendar tracks those
reservations, answers availability queries, and supports the what-if
copies the application-level scheduler uses while building supporting
schedules.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

__all__ = ["Reservation", "ReservationConflict", "ReservationCalendar"]


class ReservationConflict(RuntimeError):
    """Attempted to reserve a slot overlapping an existing reservation."""


@dataclass(frozen=True)
class Reservation:
    """One wall-time reservation ``[start, end)`` on a node.

    ``tag`` identifies the owner (job id, task id, "background", ...).
    """

    start: int
    end: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"empty or inverted interval [{self.start}, {self.end})")

    @property
    def duration(self) -> int:
        """Reserved wall time (the paper's real load time ``T_i``)."""
        return self.end - self.start

    def overlaps(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` intersects this reservation."""
        return self.start < end and start < self.end


class ReservationCalendar:
    """Sorted, non-overlapping reservations for a single node."""

    def __init__(self, reservations: Iterable[Reservation] = ()):
        self._reservations: list[Reservation] = []
        self._starts: list[int] = []
        for reservation in sorted(reservations, key=lambda r: r.start):
            self.reserve(reservation.start, reservation.end, reservation.tag)

    def __len__(self) -> int:
        return len(self._reservations)

    def __iter__(self) -> Iterator[Reservation]:
        return iter(self._reservations)

    @property
    def reservations(self) -> list[Reservation]:
        """A copy of the reservations in start order."""
        return list(self._reservations)

    def copy(self) -> "ReservationCalendar":
        """An independent what-if copy of this calendar."""
        clone = ReservationCalendar()
        clone._reservations = list(self._reservations)
        clone._starts = list(self._starts)
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def conflicts(self, start: int, end: int) -> list[Reservation]:
        """All reservations intersecting ``[start, end)``."""
        if end <= start:
            raise ValueError(f"empty or inverted interval [{start}, {end})")
        # Candidates start before `end`; scan left while overlap possible.
        index = bisect.bisect_left(self._starts, end)
        found = []
        for reservation in reversed(self._reservations[:index]):
            if reservation.end > start:
                found.append(reservation)
            # Reservations are disjoint and sorted: once one ends at or
            # before `start`, all earlier ones do too.
            elif reservation.end <= start:
                break
        found.reverse()
        return found

    def is_free(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` overlaps no reservation."""
        return not self.conflicts(start, end)

    def free_windows(self, earliest: int, horizon: int
                     ) -> list[tuple[int, int]]:
        """Maximal free intervals within ``[earliest, horizon)``."""
        if horizon <= earliest:
            return []
        windows: list[tuple[int, int]] = []
        cursor = earliest
        for reservation in self._reservations:
            if reservation.end <= earliest:
                continue
            if reservation.start >= horizon:
                break
            if reservation.start > cursor:
                windows.append((cursor, min(reservation.start, horizon)))
            cursor = max(cursor, reservation.end)
            if cursor >= horizon:
                break
        if cursor < horizon:
            windows.append((cursor, horizon))
        return windows

    def earliest_fit(self, duration: int, earliest: int = 0,
                     deadline: Optional[int] = None) -> Optional[int]:
        """Earliest start of a free slot of ``duration`` before ``deadline``.

        Returns None when no such slot exists.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        horizon = deadline if deadline is not None else self._implied_horizon(
            earliest, duration)
        for window_start, window_end in self.free_windows(earliest, horizon):
            if window_end - window_start >= duration:
                return window_start
        return None

    def _implied_horizon(self, earliest: int, duration: int) -> int:
        """A horizon guaranteed to contain a fit when no deadline is given."""
        last_end = self._reservations[-1].end if self._reservations else 0
        return max(earliest, last_end) + duration

    def utilization(self, start: int, end: int) -> float:
        """Fraction of ``[start, end)`` covered by reservations."""
        if end <= start:
            raise ValueError(f"empty or inverted interval [{start}, {end})")
        busy = 0
        for reservation in self.conflicts(start, end):
            busy += min(reservation.end, end) - max(reservation.start, start)
        return busy / (end - start)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def reserve(self, start: int, end: int, tag: str = "") -> Reservation:
        """Book ``[start, end)``; raises ReservationConflict on overlap."""
        blockers = self.conflicts(start, end)
        if blockers:
            raise ReservationConflict(
                f"[{start}, {end}) overlaps {blockers[0].tag!r} "
                f"[{blockers[0].start}, {blockers[0].end})")
        reservation = Reservation(start, end, tag)
        index = bisect.bisect_left(self._starts, start)
        self._reservations.insert(index, reservation)
        self._starts.insert(index, start)
        return reservation

    def release(self, reservation: Reservation) -> None:
        """Remove a reservation previously returned by :meth:`reserve`."""
        try:
            index = self._reservations.index(reservation)
        except ValueError:
            raise KeyError(f"{reservation} is not booked") from None
        del self._reservations[index]
        del self._starts[index]

    def release_tag(self, tag: str) -> int:
        """Remove every reservation with the given tag; returns the count."""
        keep = [r for r in self._reservations if r.tag != tag]
        removed = len(self._reservations) - len(keep)
        self._reservations = keep
        self._starts = [r.start for r in keep]
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        spans = ", ".join(
            f"[{r.start},{r.end}){'/' + r.tag if r.tag else ''}"
            for r in self._reservations[:6])
        suffix = ", ..." if len(self._reservations) > 6 else ""
        return f"<ReservationCalendar {spans}{suffix}>"
