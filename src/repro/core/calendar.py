"""Reservation calendars: per-node busy intervals and advance reservations.

A local batch-job management system interprets each task as a job with a
wall-time resource reservation ``[Start, End)``.  The calendar tracks those
reservations, answers availability queries, and supports the what-if
copies the application-level scheduler uses while building supporting
schedules.
"""

from __future__ import annotations

import bisect
import itertools
import operator
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

from ..perf import PERF

__all__ = ["Reservation", "ReservationConflict", "ReservationCalendar",
           "GapTable", "GAP_HORIZON"]

#: Sentinel end of a calendar's last (unbounded) gap.  Far beyond any
#: realistic slot value, yet small enough that gap ends offset by a
#: per-row stride (see :mod:`repro.core.placement`) stay inside int64.
GAP_HORIZON = 1 << 40

#: Process-global version clock shared by every calendar.  Each mutation
#: draws a fresh tick, so a version value identifies one concrete
#: reservation content: two calendars reporting the same ``version`` are
#: guaranteed to hold identical reservations (they share an unmutated
#: copy-on-write lineage).  Cached query results keyed on
#: ``(node, version, ...)`` are therefore exact and invalidate in
#: O(nodes touched) — a mutated node simply stops matching its old keys.
_VERSION_CLOCK = itertools.count(1)

#: Sort key for end-based bisection (ends are sorted too: reservations
#: are disjoint and start-sorted, so ``end_i <= start_{i+1} < end_{i+1}``).
_BY_END = operator.attrgetter("end")


class ReservationConflict(RuntimeError):
    """Attempted to reserve a slot overlapping an existing reservation."""


@dataclass(frozen=True)
class GapTable:
    """Structure-of-arrays view of one calendar's free gaps.

    Gap ``k`` is the half-open free interval ``[gap_start[k],
    gap_start[k] + gap_len[k])``; gaps are sorted and cover everything
    the reservations do not.  The first gap opens at ``-GAP_HORIZON``
    (a query never starts earlier) and the last gap ends at
    :data:`GAP_HORIZON` (the calendar is free forever past its last
    reservation), so every probe lands in exactly one gap.  Adjacent
    reservations produce zero-length gaps — kept, so gap index
    arithmetic stays aligned with the reservation list.

    The table is immutable and tagged with the calendar's content
    ``version``: equal versions guarantee identical reservations, so a
    table can be cached per version and shared by every copy-on-write
    clone of the calendar (see :mod:`repro.core.placement`).
    """

    version: int
    #: Sorted gap starts (int64); ``gap_start[0] == -GAP_HORIZON``.
    gap_start: np.ndarray
    #: Gap lengths (int64); zero for back-to-back reservations.
    gap_len: np.ndarray
    #: ``gap_start + gap_len``, precomputed (the batch kernel bisects
    #: on gap ends); ``gap_end[-1] == GAP_HORIZON``.
    gap_end: np.ndarray
    #: End of the last reservation (0 when empty) — lets callers
    #: reproduce the scalar API's implied horizon for open deadlines.
    last_end: int


@dataclass(frozen=True)
class Reservation:
    """One wall-time reservation ``[start, end)`` on a node.

    ``tag`` identifies the owner (job id, task id, "background", ...).
    """

    start: int
    end: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"empty or inverted interval [{self.start}, {self.end})")

    @property
    def duration(self) -> int:
        """Reserved wall time (the paper's real load time ``T_i``)."""
        return self.end - self.start

    def overlaps(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` intersects this reservation."""
        return self.start < end and start < self.end


class ReservationCalendar:
    """Sorted, non-overlapping reservations for a single node.

    What-if copies (:meth:`copy`) are copy-on-write: the clone shares
    the underlying lists until either side mutates, so snapshotting a
    large calendar that is then only queried costs O(1).
    """

    def __init__(self, reservations: Iterable[Reservation] = ()):
        self._reservations: list[Reservation] = []
        self._starts: list[int] = []
        self._shared = False
        # lint: shared-state — process-local identity tokens, never shared
        self._version = next(_VERSION_CLOCK)
        for reservation in sorted(reservations, key=lambda r: r.start):
            self.reserve(reservation.start, reservation.end, reservation.tag)

    @classmethod
    def from_busy(cls, starts: Iterable[int], ends: Iterable[int],
                  tag: str = "") -> "ReservationCalendar":
        """Bulk-load a calendar from sorted, disjoint busy intervals.

        ``starts``/``ends`` are parallel sequences (for example the
        busy spans recovered from a :class:`GapTable`: reservation *k*
        spans ``[gap_end[k], gap_start[k+1])``).  Builds the internal
        lists in one pass — O(n) instead of the O(n log n) bisect
        inserts (plus per-insert ``is_free`` checks) that feeding
        :meth:`reserve` would cost — which is what makes worker-side
        replica reconstruction affordable at shard-sync time.  The
        intervals must already be start-sorted and non-overlapping;
        a violated precondition raises :class:`ReservationConflict`.
        """
        reservations: list[Reservation] = []
        previous_end: Optional[int] = None
        for start, end in zip(starts, ends):
            reservation = Reservation(int(start), int(end), tag)
            if previous_end is not None and reservation.start < previous_end:
                raise ReservationConflict(
                    f"bulk intervals out of order or overlapping at "
                    f"[{reservation.start}, {reservation.end})")
            previous_end = reservation.end
            reservations.append(reservation)
        calendar = cls.__new__(cls)
        calendar._reservations = reservations
        calendar._starts = [r.start for r in reservations]
        calendar._shared = False
        # lint: shared-state — process-local version source (see __init__)
        calendar._version = next(_VERSION_CLOCK)
        return calendar

    @property
    def version(self) -> int:
        """Monotonic content epoch; equal versions ⇒ identical contents.

        Bumped (to a process-globally fresh value) by every mutation.
        Copy-on-write clones share their parent's version until either
        side mutates, so an unchanged node keeps one stable version
        across what-if snapshots — the anchor for exact caching with
        O(nodes touched) invalidation.
        """
        return self._version

    def __len__(self) -> int:
        return len(self._reservations)

    def __iter__(self) -> Iterator[Reservation]:
        return iter(self._reservations)

    @property
    def reservations(self) -> list[Reservation]:
        """A copy of the reservations in start order."""
        return list(self._reservations)

    def copy(self) -> "ReservationCalendar":
        """An independent what-if copy of this calendar (copy-on-write).

        Both calendars share the reservation storage until one of them
        mutates; the mutating side then pays the list copy.  Queries on
        either side are unaffected.
        """
        if PERF.enabled:
            PERF.incr("calendar.cow_copies")
        clone = ReservationCalendar.__new__(ReservationCalendar)
        clone._reservations = self._reservations
        clone._starts = self._starts
        clone._shared = True
        clone._version = self._version
        self._shared = True
        return clone

    def _materialize(self) -> None:
        """Detach shared storage before the first mutation after a copy."""
        if self._shared:
            if PERF.enabled:
                PERF.incr("calendar.materializations")
            self._reservations = list(self._reservations)
            self._starts = list(self._starts)
            self._shared = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def conflicts(self, start: int, end: int) -> list[Reservation]:
        """All reservations intersecting ``[start, end)``."""
        if end <= start:
            raise ValueError(f"empty or inverted interval [{start}, {end})")
        if PERF.enabled:
            PERF.incr("calendar.conflicts")
        # Candidates start before `end`; the overlapping run is
        # contiguous and ends at `index - 1` (reservations are disjoint
        # and sorted, so once one ends at or before `start`, all
        # earlier ones do too).  Walking indices avoids copying the
        # whole prefix the way `self._reservations[:index]` would.
        reservations = self._reservations
        index = bisect.bisect_left(self._starts, end)
        first = index
        while first > 0 and reservations[first - 1].end > start:
            first -= 1
        return reservations[first:index]

    def is_free(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` overlaps no reservation."""
        if end <= start:
            raise ValueError(f"empty or inverted interval [{start}, {end})")
        if PERF.enabled:
            PERF.incr("calendar.is_free")
        # Only the last reservation starting before `end` can overlap.
        index = bisect.bisect_left(self._starts, end)
        return index == 0 or self._reservations[index - 1].end <= start

    def free_windows(self, earliest: int, horizon: int
                     ) -> list[tuple[int, int]]:
        """Maximal free intervals within ``[earliest, horizon)``."""
        if horizon <= earliest:
            return []
        windows: list[tuple[int, int]] = []
        cursor = earliest
        for reservation in self._reservations:
            if reservation.end <= earliest:
                continue
            if reservation.start >= horizon:
                break
            if reservation.start > cursor:
                windows.append((cursor, min(reservation.start, horizon)))
            cursor = max(cursor, reservation.end)
            if cursor >= horizon:
                break
        if cursor < horizon:
            windows.append((cursor, horizon))
        return windows

    def earliest_fit(self, duration: int, earliest: int = 0,
                     deadline: Optional[int] = None) -> Optional[int]:
        """Earliest start of a free slot of ``duration`` before ``deadline``.

        Returns None when no such slot exists.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if PERF.enabled:
            PERF.incr("calendar.earliest_fit")
        horizon = deadline if deadline is not None else self._implied_horizon(
            earliest, duration)
        if horizon <= earliest:
            return None
        # Walk windows lazily from the first reservation still alive at
        # `earliest` instead of materializing every free window up to
        # the horizon; ends are sorted (disjoint intervals), so the
        # entry point is a bisection.
        reservations = self._reservations
        index = bisect.bisect_right(reservations, earliest, key=_BY_END)
        cursor = earliest
        for position in range(index, len(reservations)):
            reservation = reservations[position]
            if reservation.start >= horizon:
                break
            if reservation.start - cursor >= duration:
                return cursor
            if reservation.end > cursor:
                cursor = reservation.end
            if cursor >= horizon:
                return None
        if horizon - cursor >= duration:
            return cursor
        return None

    def _implied_horizon(self, earliest: int, duration: int) -> int:
        """A horizon guaranteed to contain a fit when no deadline is given."""
        last_end = self._reservations[-1].end if self._reservations else 0
        return max(earliest, last_end) + duration

    def gap_table(self) -> GapTable:
        """The free-gap structure-of-arrays for the current version.

        Derived once per content version from the sorted reservation
        list; with ``n`` reservations the table has ``n + 1`` gaps
        (possibly zero-length, for back-to-back reservations).  Callers
        wanting amortized reuse should go through
        :func:`repro.core.placement.gap_table`, which caches tables by
        version across copy-on-write clones.
        """
        count = len(self._reservations)
        gap_start = np.empty(count + 1, dtype=np.int64)
        gap_end = np.empty(count + 1, dtype=np.int64)
        gap_start[0] = -GAP_HORIZON
        gap_end[count] = GAP_HORIZON
        if count:
            ends = np.fromiter((r.end for r in self._reservations),
                               dtype=np.int64, count=count)
            gap_start[1:] = ends
            gap_end[:count] = np.fromiter(self._starts, dtype=np.int64,
                                          count=count)
            last_end = int(ends[-1])
        else:
            last_end = 0
        return GapTable(version=self._version, gap_start=gap_start,
                        gap_len=gap_end - gap_start, gap_end=gap_end,
                        last_end=last_end)

    def utilization(self, start: int, end: int) -> float:
        """Fraction of ``[start, end)`` covered by reservations."""
        if end <= start:
            raise ValueError(f"empty or inverted interval [{start}, {end})")
        busy = 0
        for reservation in self.conflicts(start, end):
            busy += min(reservation.end, end) - max(reservation.start, start)
        return busy / (end - start)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def reserve(self, start: int, end: int, tag: str = "") -> Reservation:
        """Book ``[start, end)``; raises ReservationConflict on overlap."""
        if not self.is_free(start, end):
            blocker = self.conflicts(start, end)[0]
            raise ReservationConflict(
                f"[{start}, {end}) overlaps {blocker.tag!r} "
                f"[{blocker.start}, {blocker.end})")
        self._materialize()
        reservation = Reservation(start, end, tag)
        index = bisect.bisect_left(self._starts, start)
        self._reservations.insert(index, reservation)
        self._starts.insert(index, start)
        # lint: shared-state — process-local version source (see __init__)
        self._version = next(_VERSION_CLOCK)
        return reservation

    def release(self, reservation: Reservation) -> None:
        """Remove a reservation previously returned by :meth:`reserve`."""
        try:
            index = self._reservations.index(reservation)
        except ValueError:
            raise KeyError(f"{reservation} is not booked") from None
        self._materialize()
        del self._reservations[index]
        del self._starts[index]
        # lint: shared-state — process-local version source (see __init__)
        self._version = next(_VERSION_CLOCK)

    def release_tag(self, tag: str) -> int:
        """Remove every reservation with the given tag; returns the count."""
        keep = [r for r in self._reservations if r.tag != tag]
        removed = len(self._reservations) - len(keep)
        if removed:
            self._reservations = keep
            self._starts = [r.start for r in keep]
            self._shared = False
            # lint: shared-state — process-local version source (see __init__)
            self._version = next(_VERSION_CLOCK)
        return removed

    def release_prefix(self, prefix: str) -> int:
        """Remove every reservation whose tag starts with ``prefix``.

        One pass over the calendar, however many reservations match —
        the bulk-release primitive behind
        :meth:`~repro.grid.environment.GridEnvironment.release_job`
        (job reservations are tagged ``"<job_id>:<task_id>"``), which
        would otherwise pay a linear :meth:`release` per placement.
        Returns the number removed.
        """
        keep = [r for r in self._reservations if not r.tag.startswith(prefix)]
        removed = len(self._reservations) - len(keep)
        if removed:
            self._reservations = keep
            self._starts = [r.start for r in keep]
            self._shared = False
            # lint: shared-state — process-local version source (see __init__)
            self._version = next(_VERSION_CLOCK)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        spans = ", ".join(
            f"[{r.start},{r.end}){'/' + r.tag if r.tag else ''}"
            for r in self._reservations[:6])
        suffix = ", ..." if len(self._reservations) > 6 else ""
        return f"<ReservationCalendar {spans}{suffix}>"
