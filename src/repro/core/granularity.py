"""Computation granularity control: coarsening compound jobs.

Strategy S3 of the paper works with *coarse-grain computations*: tasks
are aggregated so there are fewer, bigger tasks and fewer data exchanges.
Coarsening merges a task into its sole predecessor whenever that
predecessor has it as its only successor (a linear section of the DAG);
the internal data transfer disappears (the data never leaves the node),
volumes and base times add up, and external edges are re-attached.
"""

from __future__ import annotations

from typing import Optional

from .job import DataTransfer, Job, Task
from .units import ceil_units

__all__ = ["coarsen", "merge_linear_sections", "serialize"]


def serialize(job: Job) -> Job:
    """Collapse the whole job into a single sequential task.

    The coarsest granularity: every task runs back-to-back on one node,
    so no data ever leaves it — static data storage taken to its logical
    end ("minimize data exchanges").  Volumes and base times add up; all
    internal parallelism (and all transfers) disappear.
    """
    if len(job) == 1:
        return job
    order = job.topological_order()
    merged = Task(
        "+".join(order),
        volume=sum(task.volume for task in job.tasks.values()),
        best_time=sum(task.best_time for task in job.tasks.values()),
        worst_time=sum(task.worst_time for task in job.tasks.values()),
    )
    return Job(job.job_id, [merged], (), deadline=job.deadline,
               owner=job.owner)


def merge_linear_sections(job: Job) -> Job:
    """Merge every linear DAG section into a single task (full coarsening)."""
    return coarsen(job, target_tasks=1)


def coarsen(job: Job, factor: float = 2.0,
            target_tasks: Optional[int] = None,
            aggressive: bool = False) -> Job:
    """Return a coarser version of ``job``.

    Parameters
    ----------
    factor:
        Desired reduction ratio; merging stops once the task count drops
        to ``ceil(len(job) / factor)`` or no merge remains.
    target_tasks:
        Explicit task-count target overriding ``factor``.
    aggressive:
        When False only strictly linear sections merge (src's sole
        successor, dst's sole predecessor).  When True any edge whose
        contraction keeps the graph acyclic may merge — linear sections
        first — so fork/join structures coarsen too (tasks absorbed into
        a neighbour simply serialize on its node; a conservative
        abstraction for "coarse-grain computations").

    The result is a new job (the input is untouched) whose task ids are
    ``+``-joined chains of the merged originals, e.g. ``"P1+P2"``.
    """
    if target_tasks is None:
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        target_tasks = max(1, ceil_units(len(job) / factor))
    if target_tasks < 1:
        raise ValueError(f"target_tasks must be >= 1, got {target_tasks}")

    # Mutable mirror of the DAG.
    tasks: dict[str, Task] = dict(job.tasks)
    succ: dict[str, list[str]] = {t: job.successors(t) for t in job.tasks}
    pred: dict[str, list[str]] = {t: job.predecessors(t) for t in job.tasks}
    edges: dict[tuple[str, str], DataTransfer] = {
        (t.src, t.dst): t for t in job.transfers}

    def has_indirect_path(source: str, target: str) -> bool:
        """True when target is reachable from source avoiding the direct
        edge — contracting such an edge would create a cycle."""
        stack = [s for s in succ[source] if s != target]
        seen = set(stack)
        while stack:
            current = stack.pop()
            if current == target:
                return True
            for nxt in succ[current]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def mergeable_edge() -> Optional[tuple[str, str]]:
        """The next edge to contract: linear sections first, then (in
        aggressive mode) any acyclicity-preserving edge."""
        fallback: Optional[tuple[str, str]] = None
        for head_id in tasks:
            for tail_id in succ[head_id]:
                linear = (len(succ[head_id]) == 1
                          and pred[tail_id] == [head_id])
                if linear:
                    return (head_id, tail_id)
                if (aggressive and fallback is None
                        and not has_indirect_path(head_id, tail_id)):
                    fallback = (head_id, tail_id)
        return fallback

    while len(tasks) > target_tasks:
        edge = mergeable_edge()
        if edge is None:
            break
        head_id, tail_id = edge
        head, tail = tasks[head_id], tasks[tail_id]
        merged_id = f"{head_id}+{tail_id}"
        merged = Task(
            merged_id,
            volume=head.volume + tail.volume,
            best_time=head.best_time + tail.best_time,
            worst_time=head.worst_time + tail.worst_time,
        )

        del tasks[head_id], tasks[tail_id]
        tasks[merged_id] = merged
        del edges[(head_id, tail_id)]

        def repoint(old_id: str, incoming: bool) -> list[str]:
            """Re-attach old_id's external edges onto the merged task."""
            attached: list[str] = []
            others = pred[old_id] if incoming else succ[old_id]
            for other in list(others):
                if other in (head_id, tail_id):
                    continue
                old_edge = (other, old_id) if incoming else (old_id, other)
                transfer = edges.pop(old_edge)
                new_edge = ((other, merged_id) if incoming
                            else (merged_id, other))
                if new_edge in edges:
                    # Parallel edges collapse: keep the slower transfer.
                    existing = edges[new_edge]
                    transfer = DataTransfer(
                        existing.transfer_id, new_edge[0], new_edge[1],
                        existing.volume + transfer.volume,
                        max(existing.base_time, transfer.base_time))
                else:
                    transfer = DataTransfer(
                        transfer.transfer_id, new_edge[0], new_edge[1],
                        transfer.volume, transfer.base_time)
                edges[new_edge] = transfer
                mirror = succ[other] if incoming else pred[other]
                mirror[:] = [m for m in mirror
                             if m not in (head_id, tail_id)]
                if merged_id not in mirror:
                    mirror.append(merged_id)
                if other not in attached:
                    attached.append(other)
            return attached

        new_pred = repoint(head_id, incoming=True)
        for other in repoint(tail_id, incoming=True):
            if other not in new_pred:
                new_pred.append(other)
        new_succ = repoint(head_id, incoming=False)
        for other in repoint(tail_id, incoming=False):
            if other not in new_succ:
                new_succ.append(other)

        del succ[head_id], succ[tail_id]
        del pred[head_id], pred[tail_id]
        succ[merged_id] = new_succ
        pred[merged_id] = new_pred

    coarse = Job(job.job_id, tasks.values(), edges.values(),
                 deadline=job.deadline, owner=job.owner)
    return coarse
