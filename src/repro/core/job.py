"""Compound jobs: DAGs of heterogeneous tasks joined by data transfers.

The paper's information graph (Fig. 2a) has task vertices ``P1..P6`` and
data-transfer vertices ``D1..D8``.  We model tasks as graph vertices and
data transfers as labelled edges, which is equivalent: a transfer always
connects exactly one producer task to one consumer task.

Every task carries *user estimations*: a relative computation volume
``V`` and best/worst base execution times on the reference (fastest)
node.  Actual durations on a concrete node follow from the node's
relative performance (see :meth:`Task.duration_on`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from .units import EPSILON, ceil_units, interpolate, scale_duration

__all__ = ["Task", "DataTransfer", "Job", "JobValidationError"]


def _sha(payload: str) -> str:
    """Process-independent digest of a canonical string (not ``hash()``,
    whose salt changes per interpreter run)."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class JobValidationError(ValueError):
    """The job structure violates a DAG or referential invariant."""


@dataclass(frozen=True)
class Task:
    """One task of a compound job.

    Parameters
    ----------
    task_id:
        Unique name within the job (e.g. ``"P1"``).
    volume:
        Relative computation volume ``V_i`` used by the cost function.
    best_time:
        Optimistic base execution time (slots on the reference node).
    worst_time:
        Pessimistic base execution time; defaults to ``best_time``.
    """

    task_id: str
    volume: float
    best_time: int
    worst_time: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if self.volume < 0:
            raise ValueError(f"volume must be non-negative, got {self.volume}")
        if self.best_time <= 0:
            raise ValueError(
                f"best_time must be positive, got {self.best_time}")
        if self.worst_time is None:
            object.__setattr__(self, "worst_time", self.best_time)
        elif self.worst_time < self.best_time:
            raise ValueError(
                f"worst_time ({self.worst_time}) must be >= best_time "
                f"({self.best_time})")
        # Durations are pure functions of the (frozen) estimates, and
        # the DP asks for the same (performance, level) combinations on
        # every state expansion — memoize them (not a dataclass field,
        # so equality and repr are untouched).  Sanctioned outside the
        # SchedulingContext: the memo is pure value-keyed state of an
        # immutable object, with no invalidation to coordinate.
        object.__setattr__(self, "_duration_cache", {})  # lint: context-cache

    def base_time(self, level: float = 0.0) -> int:
        """Base execution time at estimation ``level`` (0 = best, 1 = worst)."""
        # __post_init__ guarantees worst_time; the fallback narrows the
        # Optional for type checkers.
        worst = self.worst_time if self.worst_time is not None \
            else self.best_time
        return ceil_units(interpolate(self.best_time, worst, level))

    def duration_on(self, performance: float, level: float = 0.0) -> int:
        """Execution slots on a node of the given relative performance."""
        cache: dict = self._duration_cache  # type: ignore[attr-defined]
        key = (performance, level)
        duration = cache.get(key)
        if duration is None:
            duration = scale_duration(self.base_time(level), performance)
            cache[key] = duration
        return duration

    def duration_array(self, performances, level: float = 0.0):
        """Vectorized :meth:`duration_on` over many performances.

        ``performances`` is a float64 numpy array; the result is the
        int64 array of per-node durations.  Elementwise the same float
        operations as :func:`~repro.core.units.scale_duration`
        (division, epsilon-tolerant ceil), so the values are
        bit-identical to the scalar path.
        """
        base = self.base_time(level)
        return np.ceil(base / performances - EPSILON).astype(np.int64)


@dataclass(frozen=True)
class DataTransfer:
    """A data dependency between two tasks.

    ``base_time`` is the transfer time between *distinct* nodes under the
    neutral data policy; concrete policies scale it (see
    :mod:`repro.grid.data`).  Transfers between tasks co-located on one
    node take no time.
    """

    transfer_id: str
    src: str
    dst: str
    volume: float = 1.0
    base_time: int = 1

    def __post_init__(self) -> None:
        if not self.transfer_id:
            raise ValueError("transfer_id must be non-empty")
        if self.src == self.dst:
            raise ValueError(f"self-transfer on task {self.src!r}")
        if self.volume < 0:
            raise ValueError(f"volume must be non-negative, got {self.volume}")
        if self.base_time < 0:
            raise ValueError(
                f"base_time must be non-negative, got {self.base_time}")


class Job:
    """A compound (multiprocessor) job: a DAG of tasks plus a deadline.

    Parameters
    ----------
    job_id:
        Unique job name.
    tasks:
        The job's tasks; ids must be unique.
    transfers:
        Data transfers; endpoints must name existing tasks, at most one
        transfer per (src, dst) pair, and the graph must be acyclic.
    deadline:
        The fixed completion time of the job (slots from its start).
    owner:
        The submitting VO user (used by the economic model).
    """

    def __init__(self, job_id: str, tasks: Iterable[Task],
                 transfers: Iterable[DataTransfer] = (),
                 deadline: int = 0, owner: str = "anonymous"):
        self.job_id = job_id
        self.tasks: dict[str, Task] = {}
        for task in tasks:
            if task.task_id in self.tasks:
                raise JobValidationError(
                    f"duplicate task id {task.task_id!r} in job {job_id!r}")
            self.tasks[task.task_id] = task
        self.transfers: list[DataTransfer] = list(transfers)
        self.deadline = deadline
        self.owner = owner

        if not self.tasks:
            raise JobValidationError(f"job {job_id!r} has no tasks")
        if deadline < 0:
            raise JobValidationError(
                f"deadline must be non-negative, got {deadline}")

        self._succ: dict[str, list[str]] = {tid: [] for tid in self.tasks}
        self._pred: dict[str, list[str]] = {tid: [] for tid in self.tasks}
        self._transfer_by_edge: dict[tuple[str, str], DataTransfer] = {}
        seen_ids: set[str] = set()
        for transfer in self.transfers:
            if transfer.transfer_id in seen_ids:
                raise JobValidationError(
                    f"duplicate transfer id {transfer.transfer_id!r}")
            seen_ids.add(transfer.transfer_id)
            for endpoint in (transfer.src, transfer.dst):
                if endpoint not in self.tasks:
                    raise JobValidationError(
                        f"transfer {transfer.transfer_id!r} references "
                        f"unknown task {endpoint!r}")
            edge = (transfer.src, transfer.dst)
            if edge in self._transfer_by_edge:
                raise JobValidationError(
                    f"parallel transfers on edge {edge!r}")
            self._transfer_by_edge[edge] = transfer
            self._succ[transfer.src].append(transfer.dst)
            self._pred[transfer.dst].append(transfer.src)

        self._topo_order = self._compute_topo_order()
        # Semantic keys, computed on first use: pure functions of the
        # job structure, which is immutable once construction succeeds.
        self._structural_hash: Optional[str] = None
        self._shape_hash: Optional[str] = None

    # ------------------------------------------------------------------
    # Semantic keys (plan-cache identity)
    # ------------------------------------------------------------------

    @property
    def structural_hash(self) -> str:
        """Labelled-structure digest: everything generation reads.

        Covers the tasks in insertion order with all user estimations,
        the transfers in insertion order with their endpoints and
        timings, and the deadline — but **not** ``job_id`` or ``owner``
        (generation never consults either; they only tag the finished
        distributions and the economic charge).  Two jobs with equal
        structural hashes are identical up to renaming the job, so a
        deterministic generator produces placement-identical strategies
        for them: the exact-reuse key of the plan cache's concrete tier.
        """
        value = self._structural_hash
        if value is None:
            value = _sha(repr((
                [(task.task_id, task.volume, task.best_time,
                  task.worst_time) for task in self.tasks.values()],
                [(t.transfer_id, t.src, t.dst, t.volume, t.base_time)
                 for t in self.transfers],
                self.deadline)))
            self._structural_hash = value
        return value

    @property
    def shape_hash(self) -> str:
        """Canonical job-shape digest: the DAG's isomorphism class.

        Order-independent and label-free — relabelling tasks and
        transfers or permuting sibling insertion order leaves it
        unchanged, while any change to the DAG shape, a task's
        estimations, a transfer's timing, or the deadline changes it.
        Computed by Weisfeiler–Leman color refinement: each task starts
        from its estimation signature and iteratively absorbs the
        sorted multisets of its (edge label, neighbor color) pairs,
        predecessors and successors kept apart so orientation counts.
        Jobs sharing a shape but not a structural hash cannot reuse
        concrete plans bit-identically (tie-breaks in chain ranking and
        topological order read the labels), so the shape keys the plan
        cache's *skeleton* tier, grouping template-derived variants.
        """
        value = self._shape_hash
        if value is None:
            colors = {
                task.task_id: _sha(repr((task.volume, task.best_time,
                                         task.worst_time)))
                for task in self.tasks.values()
            }

            def edge_label(src: str, dst: str) -> tuple[float, int]:
                transfer = self._transfer_by_edge[(src, dst)]
                return (transfer.volume, transfer.base_time)

            partition = len(set(colors.values()))
            for _ in range(len(self.tasks)):
                colors = {
                    tid: _sha(repr((
                        colors[tid],
                        sorted((edge_label(pred, tid), colors[pred])
                               for pred in self._pred[tid]),
                        sorted((edge_label(tid, succ), colors[succ])
                               for succ in self._succ[tid]))))
                    for tid in self.tasks
                }
                refined = len(set(colors.values()))
                if refined == partition:
                    break  # the partition is stable; more rounds only
                partition = refined  # relabel within the same classes
            value = _sha(repr((sorted(colors.values()), self.deadline)))
            self._shape_hash = value
        return value

    def clone(self, job_id: str, owner: Optional[str] = None) -> "Job":
        """An O(1) copy of this job under a new identity.

        The task set, transfer list, dependency maps, topological order
        and cached semantic keys are all immutable once construction
        succeeded, so the clone *shares* them instead of re-validating
        the DAG — the template-workload path clones one job per arrival
        and must not pay O(tasks + edges) each time.  Only ``job_id``
        and (optionally) ``owner`` differ; neither is covered by the
        structural or shape hash, so sharing the cached hashes is
        sound.
        """
        other = object.__new__(type(self))
        other.job_id = job_id
        other.tasks = self.tasks
        other.transfers = self.transfers
        other.deadline = self.deadline
        other.owner = self.owner if owner is None else owner
        other._succ = self._succ
        other._pred = self._pred
        other._transfer_by_edge = self._transfer_by_edge
        other._topo_order = self._topo_order
        other._structural_hash = self._structural_hash
        other._shape_hash = self._shape_hash
        return other

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self.tasks

    def task(self, task_id: str) -> Task:
        """Return the task with the given id."""
        try:
            return self.tasks[task_id]
        except KeyError:
            raise KeyError(
                f"job {self.job_id!r} has no task {task_id!r}") from None

    def successors(self, task_id: str) -> list[str]:
        """Tasks that directly consume the output of ``task_id``."""
        return list(self._succ[task_id])

    def predecessors(self, task_id: str) -> list[str]:
        """Tasks whose output ``task_id`` directly consumes."""
        return list(self._pred[task_id])

    def transfer_between(self, src: str, dst: str) -> Optional[DataTransfer]:
        """The transfer on edge (src, dst), or None if no such edge."""
        return self._transfer_by_edge.get((src, dst))

    def sources(self) -> list[str]:
        """Tasks with no predecessors, in insertion order."""
        return [tid for tid in self.tasks if not self._pred[tid]]

    def sinks(self) -> list[str]:
        """Tasks with no successors, in insertion order."""
        return [tid for tid in self.tasks if not self._succ[tid]]

    def topological_order(self) -> list[str]:
        """A deterministic topological ordering of task ids."""
        return list(self._topo_order)

    def _compute_topo_order(self) -> list[str]:
        in_degree = {tid: len(self._pred[tid]) for tid in self.tasks}
        # Deterministic Kahn: always pick the first ready task in
        # insertion order.
        order: list[str] = []
        ready = [tid for tid in self.tasks if in_degree[tid] == 0]
        while ready:
            current = ready.pop(0)
            order.append(current)
            newly_ready = []
            for succ in self._succ[current]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    newly_ready.append(succ)
            # Keep insertion order among the newly ready tasks.
            ready.extend(sorted(newly_ready,
                                key=list(self.tasks).index))
        if len(order) != len(self.tasks):
            raise JobValidationError(
                f"job {self.job_id!r} contains a dependency cycle")
        return order

    # ------------------------------------------------------------------
    # Path / chain utilities for the critical works method
    # ------------------------------------------------------------------

    def all_paths(self, limit: int = 10000) -> list[list[str]]:
        """All source→sink task chains, in DFS order.

        ``limit`` bounds the enumeration on pathological graphs; the jobs
        in the paper's experiments have a handful of paths.

        Pure enumeration — repeated callers should go through
        :meth:`repro.core.context.SchedulingContext.job_paths`, which
        memoizes per job (the DAG is immutable once built).
        """
        paths: list[list[str]] = []

        def descend(task_id: str, prefix: list[str]) -> None:
            if len(paths) >= limit:
                return
            prefix = prefix + [task_id]
            successors = self._succ[task_id]
            if not successors:
                paths.append(prefix)
                return
            for succ in successors:
                descend(succ, prefix)

        for source in self.sources():
            descend(source, [])
        return paths

    def chain_length(self, chain: Sequence[str], performance: float = 1.0,
                     level: float = 0.0,
                     transfer_time: Optional[Callable[[DataTransfer], int]]
                     = None) -> int:
        """Estimated length of a task chain on nodes of one performance.

        Includes the data-transfer times along the chain, matching the
        paper's "longest (in terms of estimated execution time) chain ...
        including data transfer time" definition of a critical work.
        """
        if transfer_time is None:
            transfer_time = lambda t: t.base_time  # noqa: E731
        total = 0
        for index, task_id in enumerate(chain):
            total += self.task(task_id).duration_on(performance, level)
            if index + 1 < len(chain):
                transfer = self.transfer_between(task_id, chain[index + 1])
                if transfer is None:
                    raise ValueError(
                        f"chain edge ({task_id!r}, {chain[index + 1]!r}) "
                        f"is not in job {self.job_id!r}")
                total += transfer_time(transfer)
        return total

    def critical_chains(self, performance: float = 1.0, level: float = 0.0
                        ) -> list[tuple[int, list[str]]]:
        """All source→sink chains sorted by decreasing estimated length.

        Ties break on the chain's task ids so the order is deterministic.
        Returns ``(length, chain)`` pairs; the head is the critical work
        of the whole job.
        """
        scored = [
            (self.chain_length(path, performance, level), path)
            for path in self.all_paths()
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return scored

    def total_volume(self) -> float:
        """Sum of task volumes (used by relative-cost metrics)."""
        return sum(task.volume for task in self.tasks.values())

    def max_width(self) -> int:
        """The task parallelism degree: the largest set of tasks at one
        precedence depth (how many nodes the job can use at once)."""
        depth: dict[str, int] = {}
        for task_id in self._topo_order:
            preds = self._pred[task_id]
            depth[task_id] = (max(depth[p] for p in preds) + 1
                              if preds else 0)
        counts: dict[int, int] = {}
        for level in depth.values():
            counts[level] = counts.get(level, 0) + 1
        return max(counts.values())

    def minimal_makespan(self, best_performance: float = 1.0) -> int:
        """Lower bound on completion time: the critical path at best perf."""
        chains = self.critical_chains(best_performance)
        return chains[0][0] if chains else 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Job {self.job_id!r}: {len(self.tasks)} tasks, "
                f"{len(self.transfers)} transfers, deadline={self.deadline}>")
