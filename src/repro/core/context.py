"""One epoch-aware session layer for every cache in the kernel.

After three optimization passes the kernel had grown seven independent
caches — ``earliest_fit`` interval witnesses, per-job transfer lags and
durations, gap tables and their stacked concatenations, critical-works
rankings, source→sink path enumerations, and the metascheduler's
epoch-keyed plan cache — each with its own plumbing (module globals,
scheduler attributes, optional keyword arguments threaded through the
DP) and its own ad-hoc eviction (wholesale ``clear()`` at a size
limit).  :class:`SchedulingContext` owns all of them behind one object:

* every cache keyed on data that pins its inputs exactly — calendar
  *content versions* (process-globally unique, shared by copy-on-write
  clones; see :attr:`~repro.core.calendar.ReservationCalendar.version`)
  for placement state, :meth:`~repro.grid.environment.GridEnvironment.
  epoch_slice` vectors for whole-domain plans, and pure value keys
  (task, node, level) for durations — so invalidation is never a
  heuristic: a mutated node simply stops matching its old keys;
* bounded caches evict **per entry, least-recently-used** instead of
  clearing wholesale (the plan-cache thrash fix: a hot key survives a
  flood of unrelated keys);
* per-*job* caches are weakly keyed on the job object and scoped by
  the identity of the transfer model (lags differ across strategy
  families) and the pool (matrices and rankings are pool-indexed), so
  one context is safe to share across families, domains, and a whole
  online run;
* one :meth:`stats` surface reports every cache's hit rate, size, and
  eviction count for ``repro perf --json``.

The module also defines the :class:`Scheduler` protocol —
``schedule(job, pool, calendars, context=...) -> SchedulingOutcome`` —
implemented by :class:`~repro.core.critical_works.
CriticalWorksScheduler` and the :mod:`repro.baselines` adapters, so
experiments, the metascheduler, and the benchmark dispatch through one
interface.

Sharing a context never changes results: every cache is exact (pure
value keys or content-version keys), so a warm context returns
bit-identical schedules to a cold one — asserted by the differential
tests in ``tests/core/test_context_differential.py`` and the stale-
entry property tests in ``tests/property/test_context_invalidation.py``.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import (TYPE_CHECKING, Any, Dict, Generic, Iterator, List,
                    Mapping, Optional, Protocol, Sequence, Tuple, TypeVar,
                    runtime_checkable)

from ..perf import PERF
from .calendar import GapTable, ReservationCalendar
from .placement import StackedGaps

if TYPE_CHECKING:  # imports that would be circular at runtime
    from ..flow.metascheduler import Metascheduler  # noqa: F401
    from .critical_works import SchedulingOutcome
    from .job import Job
    from .resources import ResourcePool
    from .strategy import Strategy, StrategyType

__all__ = ["LruCache", "SchedulingContext", "Scheduler",
           "CONTEXT_CACHE_NAMES"]

K = TypeVar("K")
V = TypeVar("V")

#: Interval-witness fit buckets retained before LRU eviction; buckets
#: hold a handful of (earliest, start) witnesses each, so this caps the
#: memo in the tens of MB.
DEFAULT_FIT_CAPACITY = 1 << 16
#: Gap tables retained (one per live calendar content version).
DEFAULT_GAP_TABLE_CAPACITY = 8192
#: Stacked gap-table array sets retained (one per version sequence).
DEFAULT_STACK_CAPACITY = 1024
#: Epoch-tagged strategies retained by the flow layer.
DEFAULT_PLAN_CAPACITY = 4096

#: Every cache (or counter pair) the context owns, as reported by
#: :meth:`SchedulingContext.stats`.  The orphan audit in
#: ``tests/perf/test_counter_audit.py`` asserts that each
#: ``*_hits``/``*_misses`` pair of the :mod:`repro.perf` registry maps
#: onto exactly one of these names.
CONTEXT_CACHE_NAMES: Tuple[str, ...] = (
    "dp.fit_cache",
    "dp.transfer_cache",
    "dp.duration_cache",
    "placement.gap_table",
    "placement.stack",
    "critical_works.rank_cache",
    "job.paths_cache",
    "flow.plan_cache",
)


class LruCache(Generic[K, V]):
    """A bounded mapping with per-entry least-recently-used eviction.

    ``get`` refreshes recency; inserting past ``capacity`` evicts the
    least recently used entry (never the whole cache — the wholesale
    ``clear()`` the kernel's caches used before this layer existed).
    Evictions are counted locally (always) and mirrored to the perf
    registry as ``<name>_evictions`` when it is collecting.
    """

    __slots__ = ("name", "capacity", "evictions", "_data")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.evictions = 0
        self._data: "OrderedDict[K, V]" = OrderedDict()

    def get(self, key: K) -> Optional[V]:
        """The cached value (refreshing its recency), or None."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def __setitem__(self, key: K, value: V) -> None:
        data = self._data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1
            if PERF.enabled:
                # lint: counter-ok — fixed per-cache name, pairs registered
                PERF.incr(f"{self.name}_evictions")

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def clear(self) -> None:
        """Drop every entry (evictions are not counted as LRU churn)."""
        self._data.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<LruCache {self.name}: {len(self._data)}"
                f"/{self.capacity}, {self.evictions} evicted>")


#: Interval-witness bucket: parallel sorted (earliest, start) lists
#: (see ``find_fit`` in :func:`repro.core.dp.allocate_chain`).
_FitBucket = Tuple[List[int], List[Optional[int]]]
#: Fit-cache key: (node id, calendar version, duration, deadline).
_FitKey = Tuple[int, int, int, int]
#: Plan-cache key: (job id, strategy family, domain).
_PlanKey = Tuple[str, "StrategyType", str]
#: Plan-cache entry: (release, domain epoch slice, strategy).
_PlanEntry = Tuple[int, Tuple[int, ...], "Strategy"]


class SchedulingContext:
    """Session state shared by every scheduler touching one environment.

    Create one per logical scheduling session — a strategy generator, a
    metascheduler and all its domain managers, a whole online run — and
    pass it down; every component then shares the same placement
    knowledge.  A default-constructed context is always safe: sharing
    only ever changes speed, never results.
    """

    def __init__(self, fit_capacity: int = DEFAULT_FIT_CAPACITY,
                 gap_table_capacity: int = DEFAULT_GAP_TABLE_CAPACITY,
                 stack_capacity: int = DEFAULT_STACK_CAPACITY,
                 plan_capacity: int = DEFAULT_PLAN_CAPACITY) -> None:
        #: Interval-witness ``earliest_fit`` memo, bucketed on (node,
        #: calendar version, duration, deadline); consumed directly by
        #: the DP inner loop (:func:`repro.core.dp.allocate_chain`).
        self.fit_cache: LruCache[_FitKey, _FitBucket] = LruCache(
            "dp.fit_cache", fit_capacity)
        #: Epoch-tagged strategies of the flow layer, consumed by
        #: :class:`~repro.flow.metascheduler.Metascheduler`.
        self.plans: LruCache[_PlanKey, _PlanEntry] = LruCache(
            "flow.plan_cache", plan_capacity)
        self._gap_tables: LruCache[int, GapTable] = LruCache(
            "placement.gap_table", gap_table_capacity)
        self._stacks: LruCache[Tuple[int, ...], StackedGaps] = LruCache(
            "placement.stack", stack_capacity)
        #: Per-job caches, weakly keyed so retired jobs free their
        #: state; the inner mapping is keyed on (kind, *scope tokens).
        self._job_caches: "weakref.WeakKeyDictionary[Job, Dict[Tuple[object, ...], Dict[Any, Any]]]" \
            = weakref.WeakKeyDictionary()
        #: Identity tokens for scope objects (transfer models, pools):
        #: id -> (token, weak ref).  Tokens are monotonic and never
        #: reused, so an address recycled by the allocator can never
        #: alias a dead object's cache scope.
        self._tokens: Dict[int, Tuple[int, "weakref.ref[object]"]] = {}
        self._next_token = 0

    # ------------------------------------------------------------------
    # Identity scoping
    # ------------------------------------------------------------------

    def token(self, obj: object) -> int:
        """A stable identity token for a scope object.

        Distinct live objects always get distinct tokens (unlike raw
        ``id()``, which the allocator recycles); the same object always
        gets the same token.  Used to scope per-job caches by transfer
        model and pool identity without requiring those objects to be
        hashable.
        """
        entry = self._tokens.get(id(obj))
        if entry is not None and entry[1]() is obj:
            return entry[0]
        token = self._next_token
        self._next_token += 1
        self._tokens[id(obj)] = (token, weakref.ref(obj))
        if len(self._tokens) > 4096:
            self._prune_tokens()
        return token

    def _prune_tokens(self) -> None:
        dead = [key for key, (_, ref) in self._tokens.items()
                if ref() is None]
        for key in dead:
            del self._tokens[key]

    def job_cache(self, job: "Job", kind: str,
                  *scope: object) -> Dict[Any, Any]:
        """The per-job cache dict of one kind, scoped by identities.

        ``scope`` objects (transfer models, pools) are resolved to
        identity tokens: lags depend on the transfer model, matrices
        and rankings additionally on the pool's node order, so caches
        of different scopes must never alias.  The dict lives exactly
        as long as the job object does.
        """
        per_job = self._job_caches.get(job)
        if per_job is None:
            per_job = {}
            self._job_caches[job] = per_job
        key: Tuple[object, ...] = (kind,) + tuple(
            self.token(item) for item in scope)
        cache = per_job.get(key)
        if cache is None:
            cache = {}
            per_job[key] = cache
        return cache

    # ------------------------------------------------------------------
    # Per-job caches consumed by the DP and the critical-works method
    # ------------------------------------------------------------------

    def transfer_lags(self, job: "Job",
                      model: object) -> Dict[Tuple[str, int, int], int]:
        """``(transfer id, src node, dst node) -> lag`` memo.

        Scoped per transfer model: the strategy families time the same
        edge differently (replication vs remote access vs static), so a
        shared context must never serve one family another's lags.
        """
        return self.job_cache(job, "transfer", model)

    def durations(self, job: "Job"
                  ) -> Dict[Tuple[str, int, float], int]:
        """``(task id, node id, level) -> duration`` memo (pure keys)."""
        return self.job_cache(job, "duration")

    def transfer_matrices(self, job: "Job", model: object,
                          pool: object) -> Dict[str, Any]:
        """``transfer id -> (src × dst)`` lag-matrix memo for the batch
        engine; indexed by *pool position*, hence scoped per pool."""
        return self.job_cache(job, "matrix", model, pool)

    def rankings(self, job: "Job", model: object, pool: object
                 ) -> Dict[float, List[Tuple[int, List[str]]]]:
        """``level -> ranked critical works`` memo.

        Chain-length estimates use the pool's fastest node and the
        transfer model's timing, hence the (model, pool) scope.
        """
        return self.job_cache(job, "rank", model, pool)

    def job_paths(self, job: "Job",
                  limit: int = 10000) -> List[List[str]]:
        """The job's source→sink chains, memoized per enumeration limit.

        Jobs are immutable once built, so the enumeration is pure;
        treat the returned list as read-only.
        """
        cache = self.job_cache(job, "paths")
        paths: Optional[List[List[str]]] = cache.get(limit)
        if paths is None:
            if PERF.enabled:
                PERF.incr("job.paths_cache_misses")
            paths = job.all_paths(limit)
            cache[limit] = paths
        elif PERF.enabled:
            PERF.incr("job.paths_cache_hits")
        return paths

    # ------------------------------------------------------------------
    # Placement caches (content-version keyed)
    # ------------------------------------------------------------------

    def gap_table(self, calendar: ReservationCalendar,
                  build: bool = True) -> Optional[GapTable]:
        """The calendar's gap table, cached by content version.

        With ``build=False`` only a previously materialized table is
        returned (None otherwise) — the probe the DP uses to decide
        between the batch kernel and the scalar fallback: freshly
        mutated what-if copies have fresh versions and no table, so
        they take the scalar path without ever paying a rebuild.
        Stale versions of mutated calendars can never be queried again,
        so LRU eviction only ever retires dead or cold entries.
        """
        table = self._gap_tables.get(calendar.version)
        if table is not None:
            if PERF.enabled:
                PERF.incr("placement.gap_table_hits")
            return table
        if not build:
            return None
        if PERF.enabled:
            PERF.incr("placement.gap_table_misses")
        table = calendar.gap_table()
        self._gap_tables[table.version] = table
        return table

    def cached_stack(self, versions: Tuple[int, ...]
                     ) -> Optional[StackedGaps]:
        """A previously stacked array set for this exact version
        sequence (the stacked arrays are self-contained, so a hit is
        exact even after the per-calendar tables were evicted)."""
        stacked = self._stacks.get(versions)
        if stacked is not None and PERF.enabled:
            PERF.incr("placement.stack_hits")
        return stacked

    def stack_gap_tables(self, tables: Sequence[GapTable]) -> StackedGaps:
        """Stack tables for :func:`~repro.core.placement.
        batch_earliest_fit`, cached by the version sequence."""
        key = tuple(table.version for table in tables)
        stacked = self._stacks.get(key)
        if stacked is not None:
            if PERF.enabled:
                PERF.incr("placement.stack_hits")
            return stacked
        if PERF.enabled:
            PERF.incr("placement.stack_misses")
        stacked = StackedGaps(tables)
        self._stacks[key] = stacked
        return stacked

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self, counters: Optional[Mapping[str, int]] = None
              ) -> Dict[str, Dict[str, object]]:
        """Per-cache statistics for ``repro perf --json``.

        Structural numbers (entries, capacity, evictions) are tracked
        by the context itself; hit/miss counts come from the perf
        registry (pass a counter snapshot, or the live ``PERF.counters``
        is read), so hit rates are only meaningful for runs collected
        under :meth:`~repro.perf.registry.PerfRegistry.collecting`.
        """
        if counters is None:
            counters = PERF.counters

        def pair(name: str, **extra: object) -> Dict[str, object]:
            hits = int(counters.get(f"{name}_hits", 0))
            misses = int(counters.get(f"{name}_misses", 0))
            total = hits + misses
            entry: Dict[str, object] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / total, 4) if total else 0.0,
            }
            entry.update(extra)
            return entry

        out: Dict[str, Dict[str, object]] = {}
        for lru in (self.fit_cache, self._gap_tables, self._stacks,
                    self.plans):
            out[lru.name] = pair(lru.name, policy="lru",
                                 entries=len(lru), capacity=lru.capacity,
                                 evictions=lru.evictions)

        sizes = {"transfer": 0, "duration": 0, "matrix": 0, "rank": 0,
                 "paths": 0}
        jobs = 0
        for per_job in self._job_caches.values():
            jobs += 1
            for key, cache in per_job.items():
                kind = key[0]
                if isinstance(kind, str) and kind in sizes:
                    sizes[kind] += len(cache)
        weak = {"dp.transfer_cache": "transfer",
                "dp.duration_cache": "duration",
                "critical_works.rank_cache": "rank",
                "job.paths_cache": "paths"}
        for name, kind in weak.items():
            out[name] = pair(name, policy="weak-per-job",
                             entries=sizes[kind], jobs=jobs)
        out["dp.transfer_matrices"] = {
            "policy": "weak-per-job", "entries": sizes["matrix"],
            "jobs": jobs,
            "builds": int(counters.get("dp.transfer_matrix_builds", 0)),
        }
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SchedulingContext fit={len(self.fit_cache)} "
                f"gaps={len(self._gap_tables)} stacks={len(self._stacks)} "
                f"plans={len(self.plans)} jobs={len(self._job_caches)}>")


@runtime_checkable
class Scheduler(Protocol):
    """One interface for every application-level scheduler.

    Implemented by :class:`~repro.core.critical_works.
    CriticalWorksScheduler` and the :mod:`repro.baselines.adapters`
    wrappers (greedy, HEFT, independent-task heuristics), so the
    experiments, the metascheduler, and the benchmark dispatch through
    a single shape instead of three.
    """

    def schedule(self, job: "Job", pool: "ResourcePool",
                 calendars: Mapping[int, ReservationCalendar], *,
                 context: Optional[SchedulingContext] = None,
                 level: float = 0.0,
                 release: int = 0) -> "SchedulingOutcome":
        """Build one schedule for ``job`` on ``pool`` against
        ``calendars`` (not mutated), optionally through a shared
        ``context``."""
        ...  # pragma: no cover - protocol


def _iter_caches(context: SchedulingContext) -> Iterator[str]:
    """Names of the caches a context reports (testing helper)."""
    yield from context.stats()
