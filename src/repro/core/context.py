"""One epoch-aware session layer for every cache in the kernel.

After three optimization passes the kernel had grown seven independent
caches — ``earliest_fit`` interval witnesses, per-job transfer lags and
durations, gap tables and their stacked concatenations, critical-works
rankings, source→sink path enumerations, and the metascheduler's
epoch-keyed plan cache — each with its own plumbing (module globals,
scheduler attributes, optional keyword arguments threaded through the
DP) and its own ad-hoc eviction (wholesale ``clear()`` at a size
limit).  :class:`SchedulingContext` owns all of them behind one object:

* every cache keyed on data that pins its inputs exactly — calendar
  *content versions* (process-globally unique, shared by copy-on-write
  clones; see :attr:`~repro.core.calendar.ReservationCalendar.version`)
  for placement state, :meth:`~repro.grid.environment.GridEnvironment.
  epoch_slice` vectors for whole-domain plans, and pure value keys
  (task, node, level) for durations — so invalidation is never a
  heuristic: a mutated node simply stops matching its old keys;
* bounded caches evict **per entry, least-recently-used** instead of
  clearing wholesale (the plan-cache thrash fix: a hot key survives a
  flood of unrelated keys);
* per-*job* caches are keyed on the job's **structural hash** (its
  labelled task/transfer/deadline content, excluding the job id and
  owner; see :attr:`~repro.core.job.Job.structural_hash`) and scoped
  by the identity of the transfer model (lags differ across strategy
  families) and the pool (matrices and rankings are pool-indexed) —
  template-derived jobs that share a structure share durations, lags,
  rankings, and path enumerations, and one context stays safe to
  share across families, domains, and a whole online run;
* the flow layer's plan cache is **two-tier** (:class:`PlanCache`):
  an outer LRU of *plan skeletons* keyed on the job's order- and
  label-independent :attr:`~repro.core.job.Job.shape_hash` plus the
  strategy family and domain, each holding a handful of concrete
  strategies keyed on (structural hash, release, domain epoch slice).
  An exact variant hit is a free plan; a same-structure sibling with
  drifted epochs seeds an incremental *repair* (warm-started
  regeneration, bit-identical to a cold replan);
* one :meth:`stats` surface reports every cache's hit rate, size, and
  eviction count for ``repro perf --json``.

The module also defines the :class:`Scheduler` protocol —
``schedule(job, pool, calendars, context=...) -> SchedulingOutcome`` —
implemented by :class:`~repro.core.critical_works.
CriticalWorksScheduler` and the :mod:`repro.baselines` adapters, so
experiments, the metascheduler, and the benchmark dispatch through one
interface.

Sharing a context never changes results: every cache is exact (pure
value keys or content-version keys), so a warm context returns
bit-identical schedules to a cold one — asserted by the differential
tests in ``tests/core/test_context_differential.py`` and the stale-
entry property tests in ``tests/property/test_context_invalidation.py``.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import (TYPE_CHECKING, Any, Dict, Generic, Iterator, List,
                    Mapping, Optional, Protocol, Sequence, Tuple, TypeVar,
                    ValuesView, runtime_checkable)

from ..perf import PERF
from .calendar import GapTable, ReservationCalendar
from .placement import StackedGaps

if TYPE_CHECKING:  # imports that would be circular at runtime
    from ..flow.metascheduler import Metascheduler  # noqa: F401
    from .critical_works import SchedulingOutcome
    from .job import Job
    from .resources import ResourcePool
    from .strategy import Strategy, StrategyType

__all__ = ["LruCache", "PlanCache", "SchedulingContext", "Scheduler",
           "CONTEXT_CACHE_NAMES", "merged_context_stats"]

K = TypeVar("K")
V = TypeVar("V")

#: Interval-witness fit buckets retained before LRU eviction; buckets
#: hold a handful of (earliest, start) witnesses each, so this caps the
#: memo in the tens of MB.
DEFAULT_FIT_CAPACITY = 1 << 16
#: Gap tables retained (one per live calendar content version).
DEFAULT_GAP_TABLE_CAPACITY = 8192
#: Stacked gap-table array sets retained (one per version sequence).
DEFAULT_STACK_CAPACITY = 1024
#: Plan skeletons (shape × family × domain) retained by the flow layer.
DEFAULT_PLAN_CAPACITY = 4096
#: Concrete strategy variants retained per plan skeleton.
DEFAULT_PLAN_VARIANTS = 8
#: Distinct job structures whose per-job caches are retained.
DEFAULT_STRUCT_CAPACITY = 4096
#: Coarse warm-start seeds retained by the plan cache — one freshest
#: strategy per (family, domain, pool signature), so the footprint is
#: tiny even with generous headroom.
DEFAULT_COARSE_CAPACITY = 512

#: Every cache (or counter pair) the context owns, as reported by
#: :meth:`SchedulingContext.stats`.  The orphan audit in
#: ``tests/perf/test_counter_audit.py`` asserts that each
#: ``*_hits``/``*_misses`` pair of the :mod:`repro.perf` registry maps
#: onto exactly one of these names.
CONTEXT_CACHE_NAMES: Tuple[str, ...] = (
    "dp.fit_cache",
    "dp.transfer_cache",
    "dp.duration_cache",
    "placement.gap_table",
    "placement.stack",
    "critical_works.rank_cache",
    "job.paths_cache",
    "flow.plan_cache",
    "flow.plan_coarse",
)


class LruCache(Generic[K, V]):
    """A bounded mapping with per-entry least-recently-used eviction.

    ``get`` refreshes recency; inserting past ``capacity`` evicts the
    least recently used entry (never the whole cache — the wholesale
    ``clear()`` the kernel's caches used before this layer existed).
    Evictions are counted locally (always) and mirrored to the perf
    registry as ``<name>_evictions`` when it is collecting.
    """

    __slots__ = ("name", "capacity", "evictions", "_data")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.evictions = 0
        self._data: "OrderedDict[K, V]" = OrderedDict()

    def get(self, key: K) -> Optional[V]:
        """The cached value (refreshing its recency), or None."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def __setitem__(self, key: K, value: V) -> None:
        data = self._data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1
            if PERF.enabled:
                # lint: counter-ok — fixed per-cache name, pairs registered
                PERF.incr(f"{self.name}_evictions")

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def values(self) -> "ValuesView[V]":
        """The live values, oldest first (recency is not refreshed)."""
        return self._data.values()

    def clear(self) -> None:
        """Drop every entry (evictions are not counted as LRU churn)."""
        self._data.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<LruCache {self.name}: {len(self._data)}"
                f"/{self.capacity}, {self.evictions} evicted>")


#: Interval-witness bucket: parallel sorted (earliest, start) lists
#: (see ``find_fit`` in :func:`repro.core.dp.allocate_chain`).
_FitBucket = Tuple[List[int], List[Optional[int]]]
#: Fit-cache key: (node id, calendar version, duration, deadline).
_FitKey = Tuple[int, int, int, int]
#: Plan-skeleton key: (job shape hash, strategy family, domain).
_SkeletonKey = Tuple[str, "StrategyType", str]
#: Concrete-variant key: (structural hash, release, domain epoch slice).
_VariantKey = Tuple[str, int, Tuple[int, ...]]
#: Coarse-seed key: (strategy family, domain, pool signature) — no job
#: content at all, so unique-shape arrivals still find a warm start.
_CoarseKey = Tuple["StrategyType", str, Tuple[int, ...]]


class PlanCache:
    """The flow layer's two-tier semantic plan cache.

    The outer tier is an LRU of *plan skeletons* keyed on the job's
    shape hash (order- and label-independent DAG isomorphism class;
    :attr:`~repro.core.job.Job.shape_hash`), the strategy family, and
    the domain — all template-derived siblings of one job shape land in
    one skeleton.  Each skeleton holds a small recency-ordered set of
    *concrete variants* keyed on (structural hash, release, domain
    epoch slice).

    Reuse has two grades, both driven by the same skeleton:

    * :meth:`lookup` — an **exact** variant: same labelled structure,
      same release, unchanged epoch slice over the domain's nodes.
      Generation inputs are then byte-identical and the strategy is
      served outright (rebound to the requesting job's id).
    * :meth:`repair_seed` — a **stale sibling**: same labelled
      structure but drifted release/epochs.  Its per-level node
      assignments seed a warm-started regeneration
      (:meth:`~repro.core.strategy.StrategyGenerator.generate` with
      ``seed_hints``), which patches only the tasks whose placements no
      longer fit; exact branch-and-bound pruning keeps the repaired
      plan bit-identical to a cold replan.

    The shape tier exists so structurally distinct labelings of one
    shape share skeleton residency (and eviction fate) without ever
    sharing concrete placements — label-sensitive tie-breaks in
    generation make cross-label reuse unsound, so exact reuse and
    repair seeds are always gated on the structural hash.

    Below both graded tiers sits a *coarse* seed tier
    (:meth:`coarse_seed` / :meth:`store_coarse`): the freshest
    strategy generated per (family, domain, pool-signature) key,
    regardless of job shape.  When even the shape hash misses — the
    all-unique-jobs regime, where every arrival is its own shape —
    the coarse seed's per-level node assignments still warm-start the
    DP.  Seeds only ever *hint* the warm start (hints that no longer
    fit are ignored by exact pruning), so coarse-seeded generation is
    bit-identical to a cold one; only the work saved differs.
    """

    __slots__ = ("variant_capacity", "variant_evictions", "_skeletons",
                 "coarse_capacity", "coarse_evictions", "_coarse")

    def __init__(self, name: str, capacity: int,
                 variant_capacity: int = DEFAULT_PLAN_VARIANTS,
                 coarse_capacity: int = DEFAULT_COARSE_CAPACITY) -> None:
        if variant_capacity < 1:
            raise ValueError(
                f"variant_capacity must be positive, got {variant_capacity}")
        if coarse_capacity < 1:
            raise ValueError(
                f"coarse_capacity must be positive, got {coarse_capacity}")
        self.variant_capacity = variant_capacity
        self.variant_evictions = 0
        self.coarse_capacity = coarse_capacity
        self.coarse_evictions = 0
        self._skeletons: LruCache[
            _SkeletonKey, "OrderedDict[_VariantKey, Strategy]"] = LruCache(
                name, capacity)
        self._coarse: "OrderedDict[_CoarseKey, Strategy]" = OrderedDict()

    @property
    def name(self) -> str:
        return self._skeletons.name

    @property
    def capacity(self) -> int:
        """Skeleton capacity of the outer LRU tier."""
        return self._skeletons.capacity

    @property
    def evictions(self) -> int:
        """Evicted skeletons plus variants displaced within skeletons."""
        return self._skeletons.evictions + self.variant_evictions

    def lookup(self, shape_hash: str, structural_hash: str,
               stype: "StrategyType", domain: str, release: int,
               epochs: Tuple[int, ...]) -> Optional["Strategy"]:
        """The exact cached strategy for these inputs, or None.

        A hit requires the same labelled structure, the same release,
        and an unchanged epoch slice over the domain's nodes — the
        generation inputs are then byte-identical, so reuse is exact.
        Callers count hits/repairs/misses; the cache itself does not.
        """
        variants = self._skeletons.get((shape_hash, stype, domain))
        if variants is None:
            return None
        key = (structural_hash, release, epochs)
        strategy = variants.get(key)
        if strategy is not None:
            variants.move_to_end(key)
        return strategy

    def repair_seed(self, shape_hash: str, structural_hash: str,
                    stype: "StrategyType", domain: str
                    ) -> Optional["Strategy"]:
        """The freshest same-structure variant, release/epochs ignored.

        The returned strategy is (presumed) stale — its epochs drifted
        or its release differs — and is only fit to *seed* a repair,
        never to be served as a plan.
        """
        variants = self._skeletons.get((shape_hash, stype, domain))
        if variants:
            for key in reversed(variants):
                if key[0] == structural_hash:
                    return variants[key]
        return None

    def store(self, shape_hash: str, structural_hash: str,
              stype: "StrategyType", domain: str, release: int,
              epochs: Tuple[int, ...], strategy: "Strategy") -> None:
        """Retain a freshly generated strategy under its semantic key."""
        skeleton_key = (shape_hash, stype, domain)
        variants = self._skeletons.get(skeleton_key)
        if variants is None:
            variants = OrderedDict()
            self._skeletons[skeleton_key] = variants
        variants[(structural_hash, release, epochs)] = strategy
        variants.move_to_end((structural_hash, release, epochs))
        if len(variants) > self.variant_capacity:
            variants.popitem(last=False)
            self.variant_evictions += 1
            if PERF.enabled:
                # lint: counter-ok — fixed per-cache name, pairs registered
                PERF.incr(f"{self.name}_evictions")

    def coarse_seed(self, stype: "StrategyType", domain: str,
                    pool_signature: Tuple[int, ...]
                    ) -> Optional["Strategy"]:
        """The freshest strategy seen for this (family, domain, pool).

        The fallback seed when the shape hash itself misses: any prior
        strategy over the same nodes carries per-level node assignments
        worth hinting the warm-started DP with.  Like
        :meth:`repair_seed` output, the strategy is only fit to seed —
        never to be served.  Callers count hits/misses.
        """
        key = (stype, domain, pool_signature)
        strategy = self._coarse.get(key)
        if strategy is not None:
            self._coarse.move_to_end(key)
        return strategy

    def store_coarse(self, stype: "StrategyType", domain: str,
                     pool_signature: Tuple[int, ...],
                     strategy: "Strategy") -> None:
        """Retain the freshest strategy for this (family, domain, pool)."""
        key = (stype, domain, pool_signature)
        self._coarse[key] = strategy
        self._coarse.move_to_end(key)
        if len(self._coarse) > self.coarse_capacity:
            self._coarse.popitem(last=False)
            self.coarse_evictions += 1

    def coarse_count(self) -> int:
        """Coarse warm-start seeds currently retained."""
        return len(self._coarse)

    def __len__(self) -> int:
        """Concrete variants retained across every skeleton."""
        return sum(len(variants) for variants in self._skeletons.values())

    def skeleton_count(self) -> int:
        """Plan skeletons currently resident in the outer tier."""
        return len(self._skeletons)

    def clear(self) -> None:
        """Drop every skeleton, variant, and coarse seed (not churn)."""
        self._skeletons.clear()
        self._coarse.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<PlanCache {self.name}: {len(self)} variants in "
                f"{len(self._skeletons)}/{self.capacity} skeletons, "
                f"{self.evictions} evicted>")


class SchedulingContext:
    """Session state shared by every scheduler touching one environment.

    Create one per logical scheduling session — a strategy generator, a
    metascheduler and all its domain managers, a whole online run — and
    pass it down; every component then shares the same placement
    knowledge.  A default-constructed context is always safe: sharing
    only ever changes speed, never results.
    """

    def __init__(self, fit_capacity: int = DEFAULT_FIT_CAPACITY,
                 gap_table_capacity: int = DEFAULT_GAP_TABLE_CAPACITY,
                 stack_capacity: int = DEFAULT_STACK_CAPACITY,
                 plan_capacity: int = DEFAULT_PLAN_CAPACITY,
                 struct_capacity: int = DEFAULT_STRUCT_CAPACITY) -> None:
        #: Interval-witness ``earliest_fit`` memo, bucketed on (node,
        #: calendar version, duration, deadline); consumed directly by
        #: the DP inner loop (:func:`repro.core.dp.allocate_chain`).
        self.fit_cache: LruCache[_FitKey, _FitBucket] = LruCache(
            "dp.fit_cache", fit_capacity)
        #: The flow layer's two-tier semantic plan cache (shape-keyed
        #: skeletons holding epoch-keyed concrete strategies), consumed
        #: by :class:`~repro.flow.metascheduler.Metascheduler`.
        self.plans: PlanCache = PlanCache("flow.plan_cache", plan_capacity)
        self._gap_tables: LruCache[int, GapTable] = LruCache(
            "placement.gap_table", gap_table_capacity)
        self._stacks: LruCache[Tuple[int, ...], StackedGaps] = LruCache(
            "placement.stack", stack_capacity)
        #: Per-structure caches, LRU-keyed on the job's structural hash
        #: so template-derived siblings share durations, lags, rankings
        #: and path enumerations; the inner mapping is keyed on
        #: (kind, *scope tokens).
        self._struct_caches: LruCache[
            str, Dict[Tuple[object, ...], Dict[Any, Any]]] = LruCache(
                "job.struct_cache", struct_capacity)
        #: Cross-call row-price memo for cost models declaring a
        #: ``price_key`` (see :class:`~repro.core.costs.CostModel`):
        #: ``(price_key, task volume, duration, node id) -> cost``.
        #: Keys fully determine the value by the models' declaration,
        #: so entries never go stale; the key space is the workload's
        #: (volume, duration, node) diversity, which bounds the memo
        #: naturally.
        self.price_memo: Dict[Tuple[object, ...], float] = {}
        #: Per-pool node-performance vectors, by pool identity token
        #: (see :meth:`pool_performances`).
        self._pool_arrays: Dict[int, Any] = {}
        #: Identity tokens for scope objects (transfer models, pools):
        #: id -> (token, weak ref).  Tokens are monotonic and never
        #: reused, so an address recycled by the allocator can never
        #: alias a dead object's cache scope.
        self._tokens: Dict[int, Tuple[int, "weakref.ref[object]"]] = {}
        self._next_token = 0

    # ------------------------------------------------------------------
    # Identity scoping
    # ------------------------------------------------------------------

    def token(self, obj: object) -> int:
        """A stable identity token for a scope object.

        Distinct live objects always get distinct tokens (unlike raw
        ``id()``, which the allocator recycles); the same object always
        gets the same token.  Used to scope per-job caches by transfer
        model and pool identity without requiring those objects to be
        hashable.
        """
        entry = self._tokens.get(id(obj))
        if entry is not None and entry[1]() is obj:
            return entry[0]
        token = self._next_token
        self._next_token += 1
        self._tokens[id(obj)] = (token, weakref.ref(obj))
        if len(self._tokens) > 4096:
            self._prune_tokens()
        return token

    def _prune_tokens(self) -> None:
        dead = [key for key, (_, ref) in self._tokens.items()
                if ref() is None]
        for key in dead:
            del self._tokens[key]

    def job_cache(self, job: "Job", kind: str,
                  *scope: object) -> Dict[Any, Any]:
        """The per-structure cache dict of one kind, scoped by identities.

        Caches are keyed on the job's structural hash — the labelled
        task/transfer/deadline content, excluding the job id and owner
        (:attr:`~repro.core.job.Job.structural_hash`) — so every
        template-derived sibling of one structure shares durations,
        lags, matrices, rankings, and paths.  All of these memos are
        functions of exactly that content (plus the scoped models), so
        sharing is exact.  ``scope`` objects (transfer models, pools)
        are resolved to identity tokens: lags depend on the transfer
        model, matrices and rankings additionally on the pool's node
        order, so caches of different scopes must never alias.
        """
        per_struct = self._struct_caches.get(job.structural_hash)
        if per_struct is None:
            per_struct = {}
            self._struct_caches[job.structural_hash] = per_struct
        # Key shapes are specialized by arity: this accessor sits on the
        # DP's per-call path (three lookups per chain allocation), and
        # the generic tuple-of-tokens build dominated its cost.
        if not scope:
            key: Tuple[object, ...] = (kind,)
        elif len(scope) == 1:
            key = (kind, self.token(scope[0]))
        else:
            key = (kind,) + tuple(self.token(item) for item in scope)
        cache = per_struct.get(key)
        if cache is None:
            cache = {}
            per_struct[key] = cache
        return cache

    def pool_performances(self, pool: "ResourcePool") -> Any:
        """The pool's node-performance vector (float64, pool order).

        Cached by pool identity token: node performances are immutable
        and a pool's node order is fixed, so the vector is a constant of
        the pool — yet the DP was rebuilding it on every chain
        allocation.
        """
        token = self.token(pool)
        array = self._pool_arrays.get(token)
        if array is None:
            import numpy as np

            array = np.fromiter((node.performance for node in pool),
                                dtype=np.float64, count=len(pool))
            self._pool_arrays[token] = array
        return array

    # ------------------------------------------------------------------
    # Per-job caches consumed by the DP and the critical-works method
    # ------------------------------------------------------------------

    def transfer_lags(self, job: "Job",
                      model: object) -> Dict[Tuple[str, int, int], int]:
        """``(transfer id, src node, dst node) -> lag`` memo.

        Scoped per transfer model: the strategy families time the same
        edge differently (replication vs remote access vs static), so a
        shared context must never serve one family another's lags.
        """
        return self.job_cache(job, "transfer", model)

    def durations(self, job: "Job"
                  ) -> Dict[Tuple[str, int, float], int]:
        """``(task id, node id, level) -> duration`` memo (pure keys)."""
        return self.job_cache(job, "duration")

    def transfer_matrices(self, job: "Job", model: object,
                          pool: object) -> Dict[str, Any]:
        """``transfer id -> (src × dst)`` lag-matrix memo for the batch
        engine; indexed by *pool position*, hence scoped per pool."""
        return self.job_cache(job, "matrix", model, pool)

    def rankings(self, job: "Job", model: object, pool: object
                 ) -> Dict[float, List[Tuple[int, List[str]]]]:
        """``level -> ranked critical works`` memo.

        Chain-length estimates use the pool's fastest node and the
        transfer model's timing, hence the (model, pool) scope.
        """
        return self.job_cache(job, "rank", model, pool)

    def job_paths(self, job: "Job",
                  limit: int = 10000) -> List[List[str]]:
        """The job's source→sink chains, memoized per enumeration limit.

        Jobs are immutable once built, so the enumeration is pure;
        treat the returned list as read-only.
        """
        cache = self.job_cache(job, "paths")
        paths: Optional[List[List[str]]] = cache.get(limit)
        if paths is None:
            if PERF.enabled:
                PERF.incr("job.paths_cache_misses")
            paths = job.all_paths(limit)
            cache[limit] = paths
        elif PERF.enabled:
            PERF.incr("job.paths_cache_hits")
        return paths

    # ------------------------------------------------------------------
    # Placement caches (content-version keyed)
    # ------------------------------------------------------------------

    def gap_table(self, calendar: ReservationCalendar,
                  build: bool = True) -> Optional[GapTable]:
        """The calendar's gap table, cached by content version.

        With ``build=False`` only a previously materialized table is
        returned (None otherwise) — the probe the DP uses to decide
        between the batch kernel and the scalar fallback: freshly
        mutated what-if copies have fresh versions and no table, so
        they take the scalar path without ever paying a rebuild.
        Stale versions of mutated calendars can never be queried again,
        so LRU eviction only ever retires dead or cold entries.
        """
        table = self._gap_tables.get(calendar.version)
        if table is not None:
            if PERF.enabled:
                PERF.incr("placement.gap_table_hits")
            return table
        if not build:
            return None
        if PERF.enabled:
            PERF.incr("placement.gap_table_misses")
        table = calendar.gap_table()
        self._gap_tables[table.version] = table
        return table

    def cached_stack(self, versions: Tuple[int, ...]
                     ) -> Optional[StackedGaps]:
        """A previously stacked array set for this exact version
        sequence (the stacked arrays are self-contained, so a hit is
        exact even after the per-calendar tables were evicted)."""
        stacked = self._stacks.get(versions)
        if stacked is not None and PERF.enabled:
            PERF.incr("placement.stack_hits")
        return stacked

    def stack_gap_tables(self, tables: Sequence[GapTable]) -> StackedGaps:
        """Stack tables for :func:`~repro.core.placement.
        batch_earliest_fit`, cached by the version sequence."""
        key = tuple(table.version for table in tables)
        stacked = self._stacks.get(key)
        if stacked is not None:
            if PERF.enabled:
                PERF.incr("placement.stack_hits")
            return stacked
        if PERF.enabled:
            PERF.incr("placement.stack_misses")
        stacked = StackedGaps(tables)
        self._stacks[key] = stacked
        return stacked

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self, counters: Optional[Mapping[str, int]] = None
              ) -> Dict[str, Dict[str, object]]:
        """Per-cache statistics for ``repro perf --json``.

        Structural numbers (entries, capacity, evictions) are tracked
        by the context itself; hit/miss counts come from the perf
        registry (pass a counter snapshot, or the live ``PERF.counters``
        is read), so hit rates are only meaningful for runs collected
        under :meth:`~repro.perf.registry.PerfRegistry.collecting`.
        """
        if counters is None:
            counters = PERF.counters

        def pair(name: str, **extra: object) -> Dict[str, object]:
            hits = int(counters.get(f"{name}_hits", 0))
            misses = int(counters.get(f"{name}_misses", 0))
            total = hits + misses
            entry: Dict[str, object] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / total, 4) if total else 0.0,
            }
            entry.update(extra)
            return entry

        out: Dict[str, Dict[str, object]] = {}
        for lru in (self.fit_cache, self._gap_tables, self._stacks):
            out[lru.name] = pair(lru.name, policy="lru",
                                 entries=len(lru), capacity=lru.capacity,
                                 evictions=lru.evictions)
        plan_stats = pair(
            self.plans.name, policy="two-tier-lru",
            entries=len(self.plans),
            skeletons=self.plans.skeleton_count(),
            capacity=self.plans.capacity,
            evictions=self.plans.evictions,
            repairs=int(counters.get("flow.plan_repairs", 0)),
            rebinds=int(counters.get("flow.plan_rebinds", 0)))
        # Reads split three ways: exact hits, warm repairs (a stale
        # sibling seeded regeneration), cold misses.  The reuse rate —
        # reads the cache served exactly or seeded — is what the strict
        # perf gate floors on the online scenarios.
        reads = (int(plan_stats["hits"]) + int(plan_stats["repairs"])
                 + int(plan_stats["misses"]))
        plan_stats["reuse_rate"] = (
            round((int(plan_stats["hits"]) + int(plan_stats["repairs"]))
                  / reads, 4)
            if reads else 0.0)
        out[self.plans.name] = plan_stats
        # The coarse seed tier below the plan cache: consulted only on
        # cold misses (no exact variant, no same-structure repair seed),
        # so hits + misses here equals the plan cache's miss count.
        out["flow.plan_coarse"] = pair(
            "flow.plan_coarse", policy="coarse-seed",
            entries=self.plans.coarse_count(),
            capacity=self.plans.coarse_capacity,
            evictions=self.plans.coarse_evictions)

        sizes = {"transfer": 0, "duration": 0, "matrix": 0, "rank": 0,
                 "paths": 0}
        structs = 0
        for per_struct in self._struct_caches.values():
            structs += 1
            for key, cache in per_struct.items():
                kind = key[0]
                if isinstance(kind, str) and kind in sizes:
                    sizes[kind] += len(cache)
        shared = {"dp.transfer_cache": "transfer",
                  "dp.duration_cache": "duration",
                  "critical_works.rank_cache": "rank",
                  "job.paths_cache": "paths"}
        for name, kind in shared.items():
            out[name] = pair(name, policy="struct-lru",
                             entries=sizes[kind], structs=structs)
        out["dp.transfer_matrices"] = {
            "policy": "struct-lru", "entries": sizes["matrix"],
            "structs": structs,
            "builds": int(counters.get("dp.transfer_matrix_builds", 0)),
        }
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SchedulingContext fit={len(self.fit_cache)} "
                f"gaps={len(self._gap_tables)} stacks={len(self._stacks)} "
                f"plans={len(self.plans)} "
                f"structs={len(self._struct_caches)}>")


@runtime_checkable
class Scheduler(Protocol):
    """One interface for every application-level scheduler.

    Implemented by :class:`~repro.core.critical_works.
    CriticalWorksScheduler` and the :mod:`repro.baselines.adapters`
    wrappers (greedy, HEFT, independent-task heuristics), so the
    experiments, the metascheduler, and the benchmark dispatch through
    a single shape instead of three.
    """

    def schedule(self, job: "Job", pool: "ResourcePool",
                 calendars: Mapping[int, ReservationCalendar], *,
                 context: Optional[SchedulingContext] = None,
                 level: float = 0.0,
                 release: int = 0) -> "SchedulingOutcome":
        """Build one schedule for ``job`` on ``pool`` against
        ``calendars`` (not mutated), optionally through a shared
        ``context``."""
        ...  # pragma: no cover - protocol


#: ``stats()`` keys that describe a context's own storage — summed
#: across shards by :func:`merged_context_stats`.  Everything else in a
#: stats entry derives from the (process-global) perf counters and must
#: be read once, not once per shard.
_STRUCTURAL_STAT_KEYS = ("entries", "capacity", "evictions", "skeletons",
                         "structs")


def merged_context_stats(
        contexts: Sequence[SchedulingContext],
        counters: Optional[Mapping[str, int]] = None
        ) -> Dict[str, Dict[str, object]]:
    """One ``stats()`` view over the per-shard contexts of a sharded run.

    Hit/miss/repair numbers come from the perf counter snapshot, which
    already aggregates every shard (workers fold their deltas into the
    parent registry), so they are taken from a single :meth:`~
    SchedulingContext.stats` call — reading them per shard would
    multiply-count.  Structural numbers (entries, capacities,
    evictions, skeleton and struct counts) are per-context storage and
    are summed across shards.
    """
    if not contexts:
        raise ValueError("merged_context_stats needs at least one context")
    merged = contexts[0].stats(counters)
    for context in contexts[1:]:
        for name, entry in context.stats({}).items():
            base = merged.setdefault(name, {})
            for key in _STRUCTURAL_STAT_KEYS:
                if key in entry:
                    base[key] = int(base.get(key, 0)) + int(entry[key])
    return merged


def _iter_caches(context: SchedulingContext) -> Iterator[str]:
    """Names of the caches a context reports (testing helper)."""
    yield from context.stats()
