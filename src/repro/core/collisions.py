"""Collision records and statistics.

A *collision* (Section 3) occurs when tasks belonging to different
critical works attempt to occupy the same processor node at overlapping
times — e.g. tasks P4 and P5 both claiming node 3 in Distribution 2 of
Fig. 2.  Collisions are resolved by reallocating the later-arriving task
to its next-best node, possibly at a higher cost ("in order to take a
higher performance processor node, user should pay more").

Fig. 3b reports how collisions distribute across node performance
groups, so every record carries the group of the contested node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .resources import NodeGroup

__all__ = ["Collision", "CollisionStats"]


@dataclass(frozen=True)
class Collision:
    """One contention event between two tasks on a node."""

    job_id: str
    #: Task that had to move.
    task_id: str
    #: Task (or reservation tag) that keeps the contested slot.
    holder: str
    node_id: int
    node_group: NodeGroup
    #: Start of the contested interval.
    time: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"collision on node {self.node_id} ({self.node_group}): "
                f"{self.task_id} vs {self.holder} at {self.time}")


@dataclass
class CollisionStats:
    """Aggregated collision counts by node performance group."""

    by_group: dict[NodeGroup, int] = field(
        default_factory=lambda: {group: 0 for group in NodeGroup})

    @classmethod
    def of(cls, collisions: Iterable[Collision]) -> "CollisionStats":
        """Tally a collection of collision records."""
        stats = cls()
        for collision in collisions:
            stats.by_group[collision.node_group] += 1
        return stats

    @property
    def total(self) -> int:
        """All collisions across groups."""
        return sum(self.by_group.values())

    def merge(self, other: "CollisionStats") -> "CollisionStats":
        """Combine two tallies (used when aggregating across jobs)."""
        merged = CollisionStats()
        for group in NodeGroup:
            merged.by_group[group] = self.by_group[group] + other.by_group[group]
        return merged

    def fraction(self, group: NodeGroup) -> float:
        """Share of collisions in one group (0 when there are none)."""
        if self.total == 0:
            return 0.0
        return self.by_group[group] / self.total

    def fast_vs_slow(self) -> tuple[float, float]:
        """The paper's Fig. 3b split: fast group vs everything slower.

        Section 4 contrasts "fast" nodes (2–3× faster) with "slow" ones;
        medium and slow groups are pooled on the slow side.
        """
        fast = self.fraction(NodeGroup.FAST)
        return (fast, 1.0 - fast if self.total else 0.0)
