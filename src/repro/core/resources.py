"""Heterogeneous processor nodes of a virtual organization.

Section 4 of the paper groups nodes by relative performance: a "fast"
group at 0.66–1.0, a medium group at 0.33–0.66, and "slow" nodes at 0.33.
Fig. 2 instead uses four node *types* with performance 1, 1/2, 1/3, 1/4
(hence the estimate rows ``Ti1..Ti4``).  Both views are supported: every
node carries its own performance factor plus a group label derived from
the paper's thresholds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from .units import scale_duration

__all__ = [
    "NodeGroup",
    "classify_performance",
    "ProcessorNode",
    "ResourcePool",
    "FIG2_TYPE_PERFORMANCES",
]

#: Performance factors of the four node types in the Fig. 2 example
#: (estimate rows Ti1..Ti4 scale as 1x, 2x, 3x, 4x the base time).
FIG2_TYPE_PERFORMANCES: tuple[float, ...] = (1.0, 1 / 2, 1 / 3, 1 / 4)


class NodeGroup(enum.Enum):
    """Performance classes from Section 4 of the paper."""

    FAST = "fast"      # relative performance 0.66 .. 1.0
    MEDIUM = "medium"  # relative performance 0.33 .. 0.66
    SLOW = "slow"      # relative performance 0.33

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Group boundary between slow and medium nodes (paper: slow = 0.33).
_SLOW_CEILING = 0.34
#: Group boundary between medium and fast nodes (paper: fast starts at 0.66).
_FAST_FLOOR = 0.66


def classify_performance(performance: float) -> NodeGroup:
    """Map a relative performance factor onto the paper's node groups."""
    if not 0 < performance <= 1:
        raise ValueError(
            f"relative performance must lie in (0, 1], got {performance}")
    if performance >= _FAST_FLOOR:
        return NodeGroup.FAST
    if performance >= _SLOW_CEILING:
        return NodeGroup.MEDIUM
    return NodeGroup.SLOW


@dataclass(frozen=True)
class ProcessorNode:
    """One processor node of the distributed environment.

    Parameters
    ----------
    node_id:
        Unique identifier within the resource pool.
    performance:
        Relative performance in (0, 1]; 1.0 is the reference (fastest) node.
    type_index:
        1-based node type used by estimate tables (1 = fastest type).
    domain:
        Administrative domain the node belongs to (one per job manager in
        the Fig. 1 hierarchy).
    price_rate:
        Cost in conventional quota units per busy slot; defaults to the
        performance factor so faster nodes cost proportionally more.
    """

    node_id: int
    performance: float
    type_index: int = 1
    domain: str = "default"
    price_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0 < self.performance <= 1:
            raise ValueError(
                f"performance must lie in (0, 1], got {self.performance}")
        if self.type_index < 1:
            raise ValueError(
                f"type_index must be >= 1, got {self.type_index}")
        if self.price_rate is None:
            object.__setattr__(self, "price_rate", self.performance)
        elif self.price_rate < 0:
            raise ValueError(
                f"price_rate must be non-negative, got {self.price_rate}")

    @property
    def group(self) -> NodeGroup:
        """The paper's performance class of this node."""
        return classify_performance(self.performance)

    def duration_of(self, base_time: float) -> int:
        """Slots needed on this node for ``base_time`` reference slots."""
        return scale_duration(base_time, self.performance)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"node{self.node_id}(perf={self.performance:.2f})"


@dataclass
class ResourcePool:
    """An ordered collection of processor nodes with lookup helpers."""

    nodes: list[ProcessorNode] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for node in self.nodes:
            if node.node_id in seen:
                raise ValueError(f"duplicate node_id {node.node_id}")
            seen.add(node.node_id)
        self._by_id = {node.node_id: node for node in self.nodes}

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[ProcessorNode]:
        return iter(self.nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._by_id

    def node_ids(self) -> tuple[int, ...]:
        """All node ids in pool order (the epoch-vector axis)."""
        return tuple(node.node_id for node in self.nodes)

    def node(self, node_id: int) -> ProcessorNode:
        """Return the node with the given id."""
        try:
            return self._by_id[node_id]
        except KeyError:
            raise KeyError(f"no node with id {node_id}") from None

    def add(self, node: ProcessorNode) -> None:
        """Append a node to the pool."""
        if node.node_id in self._by_id:
            raise ValueError(f"duplicate node_id {node.node_id}")
        self.nodes.append(node)
        self._by_id[node.node_id] = node

    def by_group(self, group: NodeGroup) -> list[ProcessorNode]:
        """All nodes in a performance class."""
        return [node for node in self.nodes if node.group is group]

    def by_type(self, type_index: int) -> list[ProcessorNode]:
        """All nodes of an estimate-table type."""
        return [node for node in self.nodes if node.type_index == type_index]

    def by_domain(self, domain: str) -> list[ProcessorNode]:
        """All nodes managed by one domain's job manager."""
        return [node for node in self.nodes if node.domain == domain]

    def domains(self) -> list[str]:
        """Distinct domain names, in first-appearance order."""
        seen: list[str] = []
        for node in self.nodes:
            if node.domain not in seen:
                seen.append(node.domain)
        return seen

    def fastest(self) -> ProcessorNode:
        """The node with the highest performance (ties: lowest id)."""
        if not self.nodes:
            raise ValueError("empty resource pool")
        return max(self.nodes, key=lambda n: (n.performance, -n.node_id))

    def sorted_by_performance(self, descending: bool = True
                              ) -> list[ProcessorNode]:
        """Nodes ordered by performance (stable on node id)."""
        return sorted(self.nodes,
                      key=lambda n: (-n.performance if descending
                                     else n.performance, n.node_id))

    @classmethod
    def fig2_pool(cls) -> "ResourcePool":
        """The four-type pool of the paper's Fig. 2 worked example."""
        nodes = [
            ProcessorNode(node_id=index + 1, performance=perf,
                          type_index=index + 1)
            for index, perf in enumerate(FIG2_TYPE_PERFORMANCES)
        ]
        return cls(nodes)

    @classmethod
    def from_performances(cls, performances: Sequence[float],
                          domain: str = "default") -> "ResourcePool":
        """Build a pool from raw performance factors (ids are 1-based).

        Type indices are assigned by descending performance rank of the
        distinct factors, matching the estimate-table convention.
        """
        distinct = sorted(set(performances), reverse=True)
        type_of = {perf: rank + 1 for rank, perf in enumerate(distinct)}
        nodes = [
            ProcessorNode(node_id=index + 1, performance=perf,
                          type_index=type_of[perf], domain=domain)
            for index, perf in enumerate(performances)
        ]
        return cls(nodes)
