"""Schedules: task placements and whole-job distributions.

A *distribution* (the paper's term) is one supporting schedule of a
strategy::

    Distribution := <<Task 1/Allocation i, [Start 1, End 1]>,
                     ..., <Task N/Allocation j, [Start N, End N]>>

where each allocation names a processor node and ``[Start, End)`` is the
wall time reserved in the local batch-job management system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from .job import DataTransfer, Job
from .resources import ProcessorNode, ResourcePool

__all__ = ["Placement", "Distribution", "ScheduleViolation",
           "check_distribution"]

#: Signature of a transfer-time model: slots needed for a transfer whose
#: endpoints run on the given (possibly identical) nodes.
TransferTimeFn = Callable[[DataTransfer, ProcessorNode, ProcessorNode], int]


def neutral_transfer_time(transfer: DataTransfer, src_node: ProcessorNode,
                          dst_node: ProcessorNode) -> int:
    """Default transfer model: free on one node, base time across nodes."""
    if src_node.node_id == dst_node.node_id:
        return 0
    return transfer.base_time


@dataclass(frozen=True)
class Placement:
    """One task's allocation: a node plus a wall-time interval."""

    task_id: str
    node_id: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"empty or inverted interval [{self.start}, {self.end})")

    @property
    def duration(self) -> int:
        """Reserved wall time — the real load time ``T_i`` of the cost CF."""
        return self.end - self.start

    def overlaps(self, other: "Placement") -> bool:
        """True if the two placements clash on the same node."""
        return (self.node_id == other.node_id
                and self.start < other.end and other.start < self.end)


@dataclass(frozen=True)
class ScheduleViolation:
    """One reason a distribution is not a valid schedule."""

    kind: str
    task_id: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.task_id}): {self.detail}"


class Distribution:
    """A complete schedule variant for one job.

    Parameters
    ----------
    job_id:
        The job this distribution schedules.
    placements:
        One placement per task of the job.
    scenario:
        Free-form label of the environment event / estimation level this
        supporting schedule covers (set by the strategy generator).
    """

    def __init__(self, job_id: str, placements: Iterable[Placement],
                 scenario: str = ""):
        self.job_id = job_id
        self.scenario = scenario
        self.placements: dict[str, Placement] = {}
        for placement in placements:
            if placement.task_id in self.placements:
                raise ValueError(
                    f"duplicate placement for task {placement.task_id!r}")
            self.placements[placement.task_id] = placement

    def __len__(self) -> int:
        return len(self.placements)

    def __iter__(self) -> Iterator[Placement]:
        return iter(self.placements.values())

    def __contains__(self, task_id: str) -> bool:
        return task_id in self.placements

    def placement(self, task_id: str) -> Placement:
        """The placement of one task."""
        try:
            return self.placements[task_id]
        except KeyError:
            raise KeyError(f"no placement for task {task_id!r}") from None

    @property
    def makespan(self) -> int:
        """Completion time of the last task."""
        if not self.placements:
            return 0
        return max(p.end for p in self.placements.values())

    @property
    def start_time(self) -> int:
        """Start time of the earliest task."""
        if not self.placements:
            return 0
        return min(p.start for p in self.placements.values())

    def node_ids(self) -> set[int]:
        """All nodes this distribution reserves."""
        return {p.node_id for p in self.placements.values()}

    def by_node(self) -> dict[int, list[Placement]]:
        """Placements grouped by node, each group in start order."""
        groups: dict[int, list[Placement]] = {}
        for placement in self.placements.values():
            groups.setdefault(placement.node_id, []).append(placement)
        for group in groups.values():
            group.sort(key=lambda p: p.start)
        return groups

    def is_admissible(self, deadline: int) -> bool:
        """True if the job completes within its fixed completion time."""
        return self.makespan <= deadline

    def internal_overlaps(self) -> list[tuple[Placement, Placement]]:
        """Pairs of this distribution's own placements that clash."""
        clashes: list[tuple[Placement, Placement]] = []
        for group in self.by_node().values():
            for first, second in zip(group, group[1:]):
                if first.overlaps(second):
                    clashes.append((first, second))
        return clashes

    def replace(self, placement: Placement) -> "Distribution":
        """A copy with one task's placement substituted."""
        if placement.task_id not in self.placements:
            raise KeyError(f"no placement for task {placement.task_id!r}")
        updated = dict(self.placements)
        updated[placement.task_id] = placement
        return Distribution(self.job_id, updated.values(), self.scenario)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(
            f"{p.task_id}/{p.node_id}[{p.start},{p.end})"
            for p in sorted(self.placements.values(), key=lambda p: p.start))
        return f"<Distribution {self.job_id!r} {body}>"


def check_distribution(job: Job, distribution: Distribution,
                       pool: ResourcePool,
                       transfer_time: TransferTimeFn = neutral_transfer_time,
                       estimation_level: float = 0.0
                       ) -> list[ScheduleViolation]:
    """Validate a distribution against the job structure and resources.

    Checks performed:

    * every task is placed exactly once on a known node;
    * the reserved wall time covers the task's estimated duration on the
      chosen node at ``estimation_level``;
    * precedence: a consumer starts no earlier than producer end plus the
      transfer time between the chosen nodes;
    * the job deadline;
    * no two tasks of this job overlap on one node.

    Returns an empty list when the distribution is a valid schedule.
    """
    violations: list[ScheduleViolation] = []

    for task_id in job.tasks:
        if task_id not in distribution:
            violations.append(ScheduleViolation(
                "missing", task_id, "task has no placement"))
    for task_id in distribution.placements:
        if task_id not in job.tasks:
            violations.append(ScheduleViolation(
                "unknown-task", task_id, "placement for a foreign task"))

    for placement in distribution:
        if placement.task_id not in job.tasks:
            continue
        if placement.node_id not in pool:
            violations.append(ScheduleViolation(
                "unknown-node", placement.task_id,
                f"node {placement.node_id} not in pool"))
            continue
        node = pool.node(placement.node_id)
        needed = job.task(placement.task_id).duration_on(
            node.performance, estimation_level)
        if placement.duration < needed:
            violations.append(ScheduleViolation(
                "too-short", placement.task_id,
                f"reserved {placement.duration} < required {needed} "
                f"on {node}"))

    for transfer in job.transfers:
        if transfer.src not in distribution or transfer.dst not in distribution:
            continue
        src_place = distribution.placement(transfer.src)
        dst_place = distribution.placement(transfer.dst)
        if src_place.node_id not in pool or dst_place.node_id not in pool:
            continue
        lag = transfer_time(transfer, pool.node(src_place.node_id),
                            pool.node(dst_place.node_id))
        if dst_place.start < src_place.end + lag:
            violations.append(ScheduleViolation(
                "precedence", transfer.dst,
                f"starts at {dst_place.start} before {transfer.src} end "
                f"{src_place.end} + transfer {lag}"))

    if job.deadline and distribution.makespan > job.deadline:
        violations.append(ScheduleViolation(
            "deadline", job.job_id,
            f"makespan {distribution.makespan} > deadline {job.deadline}"))

    for first, second in distribution.internal_overlaps():
        violations.append(ScheduleViolation(
            "overlap", second.task_id,
            f"clashes with {first.task_id} on node {first.node_id}"))

    return violations
