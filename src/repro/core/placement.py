"""Batched placement queries over structure-of-arrays gap tables.

The DP kernel (:func:`repro.core.dp.allocate_chain`) asks one question
far more than any other: "where is the earliest free slot of this
duration on this node before this deadline?".  The scalar path answers
one ``(node, probe)`` pair at a time through
:meth:`~repro.core.calendar.ReservationCalendar.earliest_fit`; this
module answers the question for *every* candidate row of a task — and
every pending DP state — in one numpy sweep over the stacked
:class:`~repro.core.calendar.GapTable` arrays of the rows' calendars.

The caching layers that used to live here — per-version gap tables and
version-tuple-keyed stacked arrays — moved to
:class:`repro.core.context.SchedulingContext` (``gap_table`` /
``cached_stack`` / ``stack_gap_tables`` methods), which bounds them
with per-entry LRU eviction and reports them through
``context.stats()``.  This module keeps the pure array kernels only.

Counters: ``placement.batch_queries`` (kernel invocations) and
``placement.rows_per_batch`` (total query rows — the batching factor
is their ratio); the cache hit/miss/eviction counters are emitted by
the context.

Slot values must stay far below :data:`~repro.core.calendar.GAP_HORIZON`
(``1 << 40``); the sentinel gap ends and the per-row key stride rely on
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from ..perf import PERF
from .calendar import GapTable

__all__ = ["batch_earliest_fit", "table_earliest_fit", "StackedGaps",
           "SharedGapHandle", "SharedGapExport", "attach_gap_tables"]

#: Offset separating consecutive rows' gap-end keys in one stacked
#: array, so a single global ``searchsorted`` resolves every row's
#: entry gap at once.  Must exceed the full gap-end value range
#: (``2 * GAP_HORIZON``).
_ROW_STRIDE = 1 << 42


class StackedGaps:
    """Gap tables of several calendars, concatenated for batch queries.

    ``keyed_end`` offsets each row's gap ends by ``row * _ROW_STRIDE``,
    making the concatenation globally sorted; one ``searchsorted`` with
    equally offset probes then finds every query's entry gap — the
    first gap of its row still open at the probe.  ``counts`` holds the
    per-row gap counts (for broadcasting per-row values over the
    concatenation)."""

    __slots__ = ("versions", "gap_start", "gap_end", "gap_len", "counts",
                 "keyed_end")

    def __init__(self, tables: Sequence[GapTable]):
        self.versions = tuple(table.version for table in tables)
        self.gap_start = np.concatenate(
            [table.gap_start for table in tables])
        self.gap_end = np.concatenate([table.gap_end for table in tables])
        self.gap_len = self.gap_end - self.gap_start
        self.counts = np.fromiter(
            (table.gap_start.shape[0] for table in tables),
            dtype=np.int64, count=len(tables))
        self.keyed_end = self.gap_end + np.repeat(
            np.arange(len(tables), dtype=np.int64) * _ROW_STRIDE,
            self.counts)


def batch_earliest_fit(stacked: StackedGaps, row_index: np.ndarray,
                       probes: np.ndarray, durations: np.ndarray,
                       deadlines: np.ndarray) -> np.ndarray:
    """Earliest fits for a batch of ``(row, probe)`` queries at once.

    ``row_index[q]`` selects the query's calendar among the stacked
    tables; ``durations``/``deadlines`` are per-*row* arrays (indexed
    by ``row_index``).  Returns per-query start slots (int64), ``-1``
    where no slot of the duration ends by the deadline — exactly the
    answers of scalar ``earliest_fit(duration, earliest=probe,
    deadline=deadline)`` on each row's calendar.

    Loop-free: one ``searchsorted`` finds every query's entry gap — the
    first gap of its row still open at the probe.  A query either fits
    there (clamped start ``max(gap_start, probe)``), or its answer is
    the first *later* gap of its row at least ``duration`` long: later
    gaps begin at or past the entry gap's end, hence past the probe, so
    the probe no longer clamps and plain gap length decides.  Those
    "first long-enough gap after" queries are answered by a second
    ``searchsorted`` over the (globally sorted) positions of long-enough
    gaps; each row's sentinel gap is unbounded, so the search never
    escapes the query's row.  The deadline check runs last — starts
    are monotone over a row's gaps, so a deadline miss at the found
    gap is a miss everywhere later.
    """
    queries = row_index.shape[0]
    out = np.full(queries, -1, dtype=np.int64)
    if queries == 0:
        return out
    if PERF.enabled:
        PERF.incr("placement.batch_queries")
        PERF.incr("placement.rows_per_batch", queries)
    duration = durations[row_index]
    deadline = deadlines[row_index]
    entry = np.searchsorted(stacked.keyed_end,
                            probes + row_index * _ROW_STRIDE, side="right")
    start = np.maximum(stacked.gap_start[entry], probes)
    overflow = start + duration > stacked.gap_end[entry]
    rest = np.nonzero(overflow)[0]
    if rest.size:
        long_enough = np.nonzero(
            stacked.gap_len >= np.repeat(durations, stacked.counts))[0]
        found = long_enough[np.searchsorted(long_enough, entry[rest] + 1)]
        start[rest] = stacked.gap_start[found]
    ok = start + duration <= deadline
    out[ok] = start[ok]
    return out


@dataclass(frozen=True)
class SharedGapHandle:
    """Picklable descriptor of a shared-memory gap-table export.

    Ships to worker processes instead of the arrays themselves: the
    block name plus per-node layout metadata is all a worker needs to
    attach zero-copy views (:func:`attach_gap_tables`).  ``counts[i]``
    is the number of gaps (including the open-ended sentinel) of node
    ``node_ids[i]``; its rows live at ``offsets[i] : offsets[i] +
    counts[i]`` in the two stacked int64 arrays of the block.
    """

    name: str
    node_ids: Tuple[int, ...]
    offsets: Tuple[int, ...]
    counts: Tuple[int, ...]
    versions: Tuple[int, ...]
    last_ends: Tuple[int, ...]


class SharedGapExport:
    """Gap tables of several calendars, exported to shared memory.

    Lays the tables out as two concatenated int64 rows (gap starts,
    gap ends) in one ``multiprocessing.shared_memory`` block, so worker
    processes attach read-only numpy views instead of unpickling array
    copies.  The exporting process owns the block: call :meth:`close`
    (which also unlinks) exactly once, after every consumer is done.

    Exports are snapshots — they are *not* updated when the source
    calendars mutate.  The sharding engine rebuilds an export only on
    epoch change (when the pending commit-delta log outgrows its
    bound); between exports, workers catch up from the delta log.
    """

    def __init__(self, tables: Mapping[int, GapTable]) -> None:
        from multiprocessing import shared_memory

        node_ids = tuple(tables)
        counts = tuple(
            int(tables[nid].gap_start.shape[0]) for nid in node_ids)
        offsets: list[int] = []
        total = 0
        for count in counts:
            offsets.append(total)
            total += count
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(16, 2 * total * 8))
        block = np.ndarray((2, total), dtype=np.int64, buffer=self._shm.buf)
        for nid, offset, count in zip(node_ids, offsets, counts):
            table = tables[nid]
            block[0, offset:offset + count] = table.gap_start
            block[1, offset:offset + count] = table.gap_end
        self.handle = SharedGapHandle(
            name=self._shm.name,
            node_ids=node_ids,
            offsets=tuple(offsets),
            counts=counts,
            versions=tuple(int(tables[nid].version) for nid in node_ids),
            last_ends=tuple(int(tables[nid].last_end) for nid in node_ids))
        self._closed = False

    def close(self) -> None:
        """Release and unlink the block (idempotent).

        On Linux, unlinking while workers still hold attachments is
        safe — their mappings stay valid until they close.
        """
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SharedGapExport {self.handle.name}: "
                f"{len(self.handle.node_ids)} nodes>")


class AttachedGapTables:
    """Worker-side zero-copy view of a :class:`SharedGapExport`.

    ``tables`` maps node id to a :class:`GapTable` whose arrays are
    views into the shared block (read-only; ``gap_len`` is the only
    locally materialized array).  Keep this object alive as long as
    the tables are in use — it owns the attachment — and :meth:`close`
    it before attaching a successor export.
    """

    def __init__(self, handle: SharedGapHandle) -> None:
        from multiprocessing import shared_memory

        self._shm = shared_memory.SharedMemory(name=handle.name)
        total = sum(handle.counts)
        block = np.ndarray((2, total), dtype=np.int64, buffer=self._shm.buf)
        block.flags.writeable = False
        self.tables: dict[int, GapTable] = {}
        for nid, offset, count, version, last_end in zip(
                handle.node_ids, handle.offsets, handle.counts,
                handle.versions, handle.last_ends):
            gap_start = block[0, offset:offset + count]
            gap_end = block[1, offset:offset + count]
            self.tables[nid] = GapTable(
                version=version, gap_start=gap_start,
                gap_len=gap_end - gap_start, gap_end=gap_end,
                last_end=last_end)
        self._closed = False

    def close(self) -> None:
        """Drop the table views and detach from the block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.tables.clear()
        self._shm.close()


def attach_gap_tables(handle: SharedGapHandle) -> AttachedGapTables:
    """Attach a worker-side view of an exported gap-table set."""
    return AttachedGapTables(handle)


def table_earliest_fit(table: GapTable, duration: int, earliest: int = 0,
                       deadline: Optional[int] = None) -> Optional[int]:
    """Scalar-signature ``earliest_fit`` answered from a gap table.

    Mirrors :meth:`ReservationCalendar.earliest_fit` bit for bit —
    including the implied horizon when ``deadline`` is None — by
    running a one-query batch.  Exists for differential testing and
    one-off probes; hot paths should batch.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if deadline is None:
        deadline = max(earliest, table.last_end) + duration
    stacked = StackedGaps([table])
    start = batch_earliest_fit(
        stacked, np.zeros(1, dtype=np.int64),
        np.asarray([earliest], dtype=np.int64),
        np.asarray([duration], dtype=np.int64),
        np.asarray([deadline], dtype=np.int64))[0]
    return None if start < 0 else int(start)
