"""Batched placement queries over structure-of-arrays gap tables.

The DP kernel (:func:`repro.core.dp.allocate_chain`) asks one question
far more than any other: "where is the earliest free slot of this
duration on this node before this deadline?".  The scalar path answers
one ``(node, probe)`` pair at a time through
:meth:`~repro.core.calendar.ReservationCalendar.earliest_fit`; this
module answers the question for *every* candidate row of a task — and
every pending DP state — in one numpy sweep over the stacked
:class:`~repro.core.calendar.GapTable` arrays of the rows' calendars.

Caching layers (both exact, both keyed on calendar content versions):

* :func:`gap_table` — one table per calendar *version*.  Versions are
  process-globally unique and shared by copy-on-write clones, so the
  table built for a grid calendar is reused by every what-if snapshot
  of it, across jobs and estimation levels, until the node mutates.
* :func:`stack_gap_tables` — one stacked (concatenated) array set per
  *sequence* of versions.  The DP's candidate rows for a task reuse
  the same calendar sequence across estimation levels and chains, so
  the concatenation cost is paid once per distinct row set.

Counters: ``placement.batch_queries`` (kernel invocations),
``placement.rows_per_batch`` (total query rows — the batching factor is
their ratio), ``placement.gap_rebuilds`` (gap tables actually derived),
plus eviction counts for both caches.

Slot values must stay far below :data:`~repro.core.calendar.GAP_HORIZON`
(``1 << 40``); the sentinel gap ends and the per-row key stride rely on
it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..perf import PERF
from .calendar import GAP_HORIZON, GapTable, ReservationCalendar

__all__ = ["gap_table", "cached_stack", "stack_gap_tables",
           "batch_earliest_fit", "table_earliest_fit", "StackedGaps"]

#: Offset separating consecutive rows' gap-end keys in one stacked
#: array, so a single global ``searchsorted`` resolves every row's
#: entry gap at once.  Must exceed the full gap-end value range
#: (``2 * GAP_HORIZON``).
_ROW_STRIDE = 1 << 42

#: Version-keyed gap tables; wholesale-cleared when full (stale
#: versions of mutated calendars can never be queried again, so the
#: clear only costs rebuilds of live entries).
_GAP_TABLES: dict[int, GapTable] = {}
_GAP_TABLE_LIMIT = 8192

#: Stacked-array cache keyed on the tuple of stacked versions.
_STACKS: dict[tuple[int, ...], "StackedGaps"] = {}
_STACK_LIMIT = 1024


def gap_table(calendar: ReservationCalendar,
              build: bool = True) -> Optional[GapTable]:
    """The calendar's gap table, cached by content version.

    With ``build=False`` only a previously materialized table is
    returned (None otherwise) — the probe the DP uses to decide
    between the batch kernel and the scalar fallback: freshly mutated
    what-if copies (phase-B working calendars) have fresh versions and
    no table, so they take the scalar path without ever paying a
    rebuild.
    """
    table = _GAP_TABLES.get(calendar.version)
    if table is not None:
        return table
    if not build:
        return None
    if len(_GAP_TABLES) >= _GAP_TABLE_LIMIT:
        if PERF.enabled:
            PERF.incr("placement.gap_table_evictions")
        _GAP_TABLES.clear()
    table = calendar.gap_table()
    if PERF.enabled:
        PERF.incr("placement.gap_rebuilds")
    _GAP_TABLES[table.version] = table
    return table


class StackedGaps:
    """Gap tables of several calendars, concatenated for batch queries.

    ``keyed_end`` offsets each row's gap ends by ``row * _ROW_STRIDE``,
    making the concatenation globally sorted; one ``searchsorted`` with
    equally offset probes then finds every query's entry gap — the
    first gap of its row still open at the probe.  ``counts`` holds the
    per-row gap counts (for broadcasting per-row values over the
    concatenation)."""

    __slots__ = ("versions", "gap_start", "gap_end", "gap_len", "counts",
                 "keyed_end")

    def __init__(self, tables: Sequence[GapTable]):
        self.versions = tuple(table.version for table in tables)
        self.gap_start = np.concatenate(
            [table.gap_start for table in tables])
        self.gap_end = np.concatenate([table.gap_end for table in tables])
        self.gap_len = self.gap_end - self.gap_start
        self.counts = np.fromiter(
            (table.gap_start.shape[0] for table in tables),
            dtype=np.int64, count=len(tables))
        self.keyed_end = self.gap_end + np.repeat(
            np.arange(len(tables), dtype=np.int64) * _ROW_STRIDE,
            self.counts)


def cached_stack(versions: tuple[int, ...]) -> Optional[StackedGaps]:
    """A previously stacked array set for this exact version sequence.

    Versions pin calendar contents process-globally, so a hit is exact
    regardless of whether the per-calendar tables are still cached —
    the stacked arrays are self-contained.
    """
    return _STACKS.get(versions)


def stack_gap_tables(tables: Sequence[GapTable]) -> StackedGaps:
    """Stack tables for :func:`batch_earliest_fit`, cached by versions."""
    key = tuple(table.version for table in tables)
    stacked = _STACKS.get(key)
    if stacked is not None:
        return stacked
    if len(_STACKS) >= _STACK_LIMIT:
        if PERF.enabled:
            PERF.incr("placement.stack_evictions")
        _STACKS.clear()
    stacked = StackedGaps(tables)
    if PERF.enabled:
        PERF.incr("placement.stack_builds")
    _STACKS[key] = stacked
    return stacked


def batch_earliest_fit(stacked: StackedGaps, row_index: np.ndarray,
                       probes: np.ndarray, durations: np.ndarray,
                       deadlines: np.ndarray) -> np.ndarray:
    """Earliest fits for a batch of ``(row, probe)`` queries at once.

    ``row_index[q]`` selects the query's calendar among the stacked
    tables; ``durations``/``deadlines`` are per-*row* arrays (indexed
    by ``row_index``).  Returns per-query start slots (int64), ``-1``
    where no slot of the duration ends by the deadline — exactly the
    answers of scalar ``earliest_fit(duration, earliest=probe,
    deadline=deadline)`` on each row's calendar.

    Loop-free: one ``searchsorted`` finds every query's entry gap — the
    first gap of its row still open at the probe.  A query either fits
    there (clamped start ``max(gap_start, probe)``), or its answer is
    the first *later* gap of its row at least ``duration`` long: later
    gaps begin at or past the entry gap's end, hence past the probe, so
    the probe no longer clamps and plain gap length decides.  Those
    "first long-enough gap after" queries are answered by a second
    ``searchsorted`` over the (globally sorted) positions of long-enough
    gaps; each row's sentinel gap is unbounded, so the search never
    escapes the query's row.  The deadline check runs last — starts
    are monotone over a row's gaps, so a deadline miss at the found
    gap is a miss everywhere later.
    """
    queries = row_index.shape[0]
    out = np.full(queries, -1, dtype=np.int64)
    if queries == 0:
        return out
    if PERF.enabled:
        PERF.incr("placement.batch_queries")
        PERF.incr("placement.rows_per_batch", queries)
    duration = durations[row_index]
    deadline = deadlines[row_index]
    entry = np.searchsorted(stacked.keyed_end,
                            probes + row_index * _ROW_STRIDE, side="right")
    start = np.maximum(stacked.gap_start[entry], probes)
    overflow = start + duration > stacked.gap_end[entry]
    rest = np.nonzero(overflow)[0]
    if rest.size:
        long_enough = np.nonzero(
            stacked.gap_len >= np.repeat(durations, stacked.counts))[0]
        found = long_enough[np.searchsorted(long_enough, entry[rest] + 1)]
        start[rest] = stacked.gap_start[found]
    ok = start + duration <= deadline
    out[ok] = start[ok]
    return out


def table_earliest_fit(table: GapTable, duration: int, earliest: int = 0,
                       deadline: Optional[int] = None) -> Optional[int]:
    """Scalar-signature ``earliest_fit`` answered from a gap table.

    Mirrors :meth:`ReservationCalendar.earliest_fit` bit for bit —
    including the implied horizon when ``deadline`` is None — by
    running a one-query batch.  Exists for differential testing and
    one-off probes; hot paths should batch.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if deadline is None:
        deadline = max(earliest, table.last_end) + duration
    stacked = StackedGaps([table])
    start = batch_earliest_fit(
        stacked, np.zeros(1, dtype=np.int64),
        np.asarray([earliest], dtype=np.int64),
        np.asarray([duration], dtype=np.int64),
        np.asarray([deadline], dtype=np.int64))[0]
    return None if start < 0 else int(start)
