"""Batched placement queries over structure-of-arrays gap tables.

The DP kernel (:func:`repro.core.dp.allocate_chain`) asks one question
far more than any other: "where is the earliest free slot of this
duration on this node before this deadline?".  The scalar path answers
one ``(node, probe)`` pair at a time through
:meth:`~repro.core.calendar.ReservationCalendar.earliest_fit`; this
module answers the question for *every* candidate row of a task — and
every pending DP state — in one numpy sweep over the stacked
:class:`~repro.core.calendar.GapTable` arrays of the rows' calendars.

The caching layers that used to live here — per-version gap tables and
version-tuple-keyed stacked arrays — moved to
:class:`repro.core.context.SchedulingContext` (``gap_table`` /
``cached_stack`` / ``stack_gap_tables`` methods), which bounds them
with per-entry LRU eviction and reports them through
``context.stats()``.  This module keeps the pure array kernels only.

Counters: ``placement.batch_queries`` (kernel invocations) and
``placement.rows_per_batch`` (total query rows — the batching factor
is their ratio); the cache hit/miss/eviction counters are emitted by
the context.

Slot values must stay far below :data:`~repro.core.calendar.GAP_HORIZON`
(``1 << 40``); the sentinel gap ends and the per-row key stride rely on
it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..perf import PERF
from .calendar import GapTable

__all__ = ["batch_earliest_fit", "table_earliest_fit", "StackedGaps"]

#: Offset separating consecutive rows' gap-end keys in one stacked
#: array, so a single global ``searchsorted`` resolves every row's
#: entry gap at once.  Must exceed the full gap-end value range
#: (``2 * GAP_HORIZON``).
_ROW_STRIDE = 1 << 42


class StackedGaps:
    """Gap tables of several calendars, concatenated for batch queries.

    ``keyed_end`` offsets each row's gap ends by ``row * _ROW_STRIDE``,
    making the concatenation globally sorted; one ``searchsorted`` with
    equally offset probes then finds every query's entry gap — the
    first gap of its row still open at the probe.  ``counts`` holds the
    per-row gap counts (for broadcasting per-row values over the
    concatenation)."""

    __slots__ = ("versions", "gap_start", "gap_end", "gap_len", "counts",
                 "keyed_end")

    def __init__(self, tables: Sequence[GapTable]):
        self.versions = tuple(table.version for table in tables)
        self.gap_start = np.concatenate(
            [table.gap_start for table in tables])
        self.gap_end = np.concatenate([table.gap_end for table in tables])
        self.gap_len = self.gap_end - self.gap_start
        self.counts = np.fromiter(
            (table.gap_start.shape[0] for table in tables),
            dtype=np.int64, count=len(tables))
        self.keyed_end = self.gap_end + np.repeat(
            np.arange(len(tables), dtype=np.int64) * _ROW_STRIDE,
            self.counts)


def batch_earliest_fit(stacked: StackedGaps, row_index: np.ndarray,
                       probes: np.ndarray, durations: np.ndarray,
                       deadlines: np.ndarray) -> np.ndarray:
    """Earliest fits for a batch of ``(row, probe)`` queries at once.

    ``row_index[q]`` selects the query's calendar among the stacked
    tables; ``durations``/``deadlines`` are per-*row* arrays (indexed
    by ``row_index``).  Returns per-query start slots (int64), ``-1``
    where no slot of the duration ends by the deadline — exactly the
    answers of scalar ``earliest_fit(duration, earliest=probe,
    deadline=deadline)`` on each row's calendar.

    Loop-free: one ``searchsorted`` finds every query's entry gap — the
    first gap of its row still open at the probe.  A query either fits
    there (clamped start ``max(gap_start, probe)``), or its answer is
    the first *later* gap of its row at least ``duration`` long: later
    gaps begin at or past the entry gap's end, hence past the probe, so
    the probe no longer clamps and plain gap length decides.  Those
    "first long-enough gap after" queries are answered by a second
    ``searchsorted`` over the (globally sorted) positions of long-enough
    gaps; each row's sentinel gap is unbounded, so the search never
    escapes the query's row.  The deadline check runs last — starts
    are monotone over a row's gaps, so a deadline miss at the found
    gap is a miss everywhere later.
    """
    queries = row_index.shape[0]
    out = np.full(queries, -1, dtype=np.int64)
    if queries == 0:
        return out
    if PERF.enabled:
        PERF.incr("placement.batch_queries")
        PERF.incr("placement.rows_per_batch", queries)
    duration = durations[row_index]
    deadline = deadlines[row_index]
    entry = np.searchsorted(stacked.keyed_end,
                            probes + row_index * _ROW_STRIDE, side="right")
    start = np.maximum(stacked.gap_start[entry], probes)
    overflow = start + duration > stacked.gap_end[entry]
    rest = np.nonzero(overflow)[0]
    if rest.size:
        long_enough = np.nonzero(
            stacked.gap_len >= np.repeat(durations, stacked.counts))[0]
        found = long_enough[np.searchsorted(long_enough, entry[rest] + 1)]
        start[rest] = stacked.gap_start[found]
    ok = start + duration <= deadline
    out[ok] = start[ok]
    return out


def table_earliest_fit(table: GapTable, duration: int, earliest: int = 0,
                       deadline: Optional[int] = None) -> Optional[int]:
    """Scalar-signature ``earliest_fit`` answered from a gap table.

    Mirrors :meth:`ReservationCalendar.earliest_fit` bit for bit —
    including the implied horizon when ``deadline`` is None — by
    running a one-query batch.  Exists for differential testing and
    one-off probes; hot paths should batch.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if deadline is None:
        deadline = max(earliest, table.last_end) + duration
    stacked = StackedGaps([table])
    start = batch_earliest_fit(
        stacked, np.zeros(1, dtype=np.int64),
        np.asarray([earliest], dtype=np.int64),
        np.asarray([duration], dtype=np.int64),
        np.asarray([deadline], dtype=np.int64))[0]
    return None if start < 0 else int(start)
