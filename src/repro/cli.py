"""Command-line entry point: ``python -m repro`` / ``repro``.

Examples
--------
List experiments::

    repro list

Run one experiment at the default (laptop) scale::

    repro run fig3a

Run at the paper's scale::

    repro run fig3a --jobs 12000

Run everything::

    repro all
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Optional, Sequence

from .experiments import EXPERIMENTS, STUDIES

__all__ = ["main", "build_parser", "DEFAULT_STORE"]

#: Where ``repro study`` keeps its content-addressed result store
#: unless ``--store`` points elsewhere.
DEFAULT_STORE = ".repro-store"


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of Toporkov (PaCT 2009): application-"
                     "level and job-flow scheduling for QoS in "
                     "distributed computing"),
    )
    commands = parser.add_subparsers(dest="command")

    commands.add_parser("list", help="list available experiments")

    run = commands.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS),
                     help="experiment id (table/figure)")
    run.add_argument("--jobs", type=int, default=None,
                     help="number of jobs (default: laptop scale)")
    run.add_argument("--seed", type=int, default=2009,
                     help="experiment seed (default 2009)")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="also write the table as JSON to PATH")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="fan the underlying study out over N processes "
                          "(results are bit-identical to --workers 1; "
                          "0 means one per CPU)")

    everything = commands.add_parser("all", help="run every experiment")
    everything.add_argument("--jobs", type=int, default=None,
                            help="number of jobs for every experiment")
    everything.add_argument("--seed", type=int, default=2009)
    everything.add_argument("--workers", type=int, default=1, metavar="N",
                            help="study fan-out processes (0: one per CPU)")

    perf = commands.add_parser(
        "perf",
        help="run the pinned kernel benchmark (repro.perf)")
    perf.add_argument("--jobs", type=int, default=60,
                      help="study jobs in the pinned workload (default 60)")
    perf.add_argument("--seed", type=int, default=2009)
    perf.add_argument("--repeats", type=int, default=3,
                      help="timing repetitions per workload (best-of)")
    perf.add_argument("--workers", type=int, default=1, metavar="N",
                      help="worker processes for the study workload")
    perf.add_argument("--shards", type=int, default=4, metavar="N",
                      help="shard count for the online_sharded workload "
                           "(its shards=1 baseline and the resulting "
                           "speedup are measured in the same report)")
    perf.add_argument("--json", metavar="PATH", default=None,
                      help="write the benchmark report as JSON to PATH")
    perf.add_argument("--compare", metavar="BASELINE", default=None,
                      help="compare against a committed BENCH_*.json "
                           "baseline (warn-only unless --strict)")
    perf.add_argument("--threshold", type=float, default=None,
                      help="fractional slowdown tolerated before a "
                           "workload is flagged (default 0.30)")
    perf.add_argument("--strict", action="store_true",
                      help="exit non-zero when a workload regressed")
    perf.add_argument("--workloads", metavar="NAME", nargs="+", default=None,
                      help="run only the named pinned workloads (CI gates "
                           "strictly on the fast micro scenarios this way)")
    perf.add_argument("--profile", metavar="NAME", default=None,
                      help="run one pinned workload under cProfile and "
                           "print the top 25 functions by cumulative "
                           "time instead of benchmarking")

    analyze = commands.add_parser(
        "analyze",
        help="verify schedule invariants (Fig. 2 worked example)")
    analyze.add_argument("--skip-strategies", action="store_true",
                         help="verify only the paper distributions and "
                              "the critical works outcome")
    analyze.add_argument("--lint", metavar="PATH", nargs="+", default=None,
                         help="also run the simulator lint over PATH(s)")

    study = commands.add_parser(
        "study",
        help="run study grids against the content-addressed result "
             "store (resumable: cached cells are never recomputed)")
    study_commands = study.add_subparsers(dest="study_command")

    def _add_store(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--store", metavar="DIR", default=DEFAULT_STORE,
                         help="result store directory "
                              f"(default {DEFAULT_STORE})")

    def _add_run_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("study", choices=sorted(STUDIES),
                         help="study grid id")
        sub.add_argument("--workers", type=int, default=1, metavar="N",
                         help="fan cells out over N processes (results "
                              "are bit-identical to --workers 1; 0 means "
                              "one per CPU)")
        sub.add_argument("--resume", default=True,
                         action=argparse.BooleanOptionalAction,
                         help="serve already-computed cells from the "
                              "store (--no-resume recomputes everything)")
        _add_store(sub)

    study_run = study_commands.add_parser(
        "run", help="run one study grid, resuming from the store")
    _add_run_options(study_run)
    study_run.add_argument("--json", metavar="PATH", default=None,
                           help="also write the results as JSON to PATH")

    study_ls = study_commands.add_parser(
        "ls", help="list cached cells per study")
    _add_store(study_ls)

    study_export = study_commands.add_parser(
        "export", help="run a study (resumable) and export its rows")
    _add_run_options(study_export)
    study_export.add_argument("out", metavar="PATH",
                              help="output file path")
    study_export.add_argument("--format", dest="format",
                              choices=["csv", "json", "parquet"],
                              default="csv",
                              help="export format (default csv; parquet "
                                   "needs pyarrow)")

    study_clean = study_commands.add_parser(
        "clean", help="delete cached cells (all, or one study's)")
    study_clean.add_argument("--study", choices=sorted(STUDIES),
                             default=None,
                             help="only this study's cells")
    _add_store(study_clean)

    lint = commands.add_parser(
        "lint",
        help="determinism & shareability lint (REP001-REP013; "
             "text/JSON/SARIF output, --strict, --baseline)")
    from .analysis.lint.cli import add_arguments as add_lint_arguments

    add_lint_arguments(lint)
    return parser


def _run_one(experiment_id: str, jobs: Optional[int], seed: int,
             json_path: Optional[str] = None,
             workers: Optional[int] = 1) -> None:
    runner = EXPERIMENTS[experiment_id]
    kwargs: dict = {"seed": seed}
    if jobs is not None:
        kwargs["n_jobs"] = jobs
    # Only the study-backed experiments parallelize; the rest (e.g. the
    # Fig. 2 worked example) simply do not take the argument.
    if workers != 1 and "workers" in inspect.signature(runner).parameters:
        kwargs["workers"] = workers
    table = runner(**kwargs)
    table.show()
    print()
    if json_path is not None:
        from .io import dump_json, table_to_dict

        dump_json(table_to_dict(table), json_path)


def _run_analyze(skip_strategies: bool = False,
                 lint_paths: Optional[Sequence[str]] = None) -> int:
    """Verify the Fig. 2 paper example's schedules; returns 0 when clean.

    Checks the three supporting distributions read off Fig. 2b, the
    schedule the critical works method builds, and (unless skipped) the
    full strategies of every family — each against the invariants in
    :mod:`repro.analysis.verify`.
    """
    from .analysis.verify import (verify_distribution, verify_outcome,
                                  verify_strategy)
    from .core.calendar import ReservationCalendar
    from .core.critical_works import CriticalWorksScheduler
    from .core.strategy import StrategyGenerator, StrategyType
    from .experiments.fig2_example import paper_distributions
    from .workload.paper_example import fig2_job, fig2_pool

    job, pool = fig2_job(), fig2_pool()
    reports = [
        verify_distribution(job, distribution, pool)
        for distribution in paper_distributions(job, pool).values()
    ]

    calendars = {node.node_id: ReservationCalendar() for node in pool}
    scheduler = CriticalWorksScheduler(pool)
    outcome = scheduler.build_schedule(job, calendars)
    reports.append(verify_outcome(job, outcome, pool))

    if not skip_strategies:
        generator = StrategyGenerator(pool)
        for stype in StrategyType:
            strategy = generator.generate(job, calendars, stype)
            reports.append(verify_strategy(
                strategy, pool,
                transfer_model=generator.policy_models[
                    strategy.spec.policy]))

    for report in reports:
        print(report.summary())
    broken = sum(1 for report in reports if not report.ok)
    print(f"\nverified {len(reports)} schedule set(s): "
          f"{'all invariants hold' if not broken else f'{broken} with violations'}")

    status = 1 if broken else 0
    if lint_paths:
        from .analysis.lint import main as lint_main

        print()
        status = max(status, lint_main(list(lint_paths)))
    return status


def _run_perf(args: argparse.Namespace) -> int:
    """Run the pinned kernel benchmark; optionally compare to a baseline.

    The comparison is warn-only by default so CI noise cannot break a
    build; ``--strict`` turns regressions into a non-zero exit.
    """
    import json

    from .perf import (compare_reports, format_comparison, run_kernel_bench)
    from .perf.bench import DEFAULT_THRESHOLD, check_plan_floors

    if args.profile is not None:
        return _profile_workload(args)

    report = run_kernel_bench(jobs=args.jobs, seed=args.seed,
                              repeats=args.repeats,
                              workers=args.workers or None,
                              workloads=args.workloads,
                              shards=args.shards)
    print(json.dumps(report, indent=2))

    if args.json is not None:
        from .io import dump_json

        dump_json(report, args.json)

    # The reuse-rate floors need no baseline: they gate an absolute
    # property of the run (the plan cache actually serving the online
    # scenarios), so --strict enforces them even without --compare.
    floor_failures = check_plan_floors(report) if args.strict else []
    for failure in floor_failures:
        print(f"plan-cache floor violated: {failure}")

    if args.compare is None:
        return 1 if floor_failures else 0
    with open(args.compare, encoding="utf-8") as handle:
        baseline = json.load(handle)
    threshold = (args.threshold if args.threshold is not None
                 else DEFAULT_THRESHOLD)
    rows = compare_reports(baseline, report, threshold=threshold)
    print()
    print(format_comparison(rows, threshold=threshold))
    regressed = any(row["regressed"] for row in rows)
    return 1 if ((regressed and args.strict) or floor_failures) else 0


def _profile_workload(args: argparse.Namespace) -> int:
    """Run one pinned bench workload under cProfile (top 25 cumulative).

    Times nothing — a single pass of the chosen scenario is profiled so
    the hot path can be read off directly (`repro perf --profile
    strategy_generation`).
    """
    import cProfile
    import pstats

    from .perf.bench import BENCH_WORKLOADS, run_kernel_bench

    name = args.profile
    if name not in BENCH_WORKLOADS:
        known = ", ".join(BENCH_WORKLOADS)
        print(f"unknown workload {name!r}; choose one of: {known}")
        return 2
    profiler = cProfile.Profile()
    profiler.enable()
    run_kernel_bench(jobs=args.jobs, seed=args.seed, repeats=1,
                     workers=args.workers or None, workloads=[name],
                     shards=args.shards)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(25)
    return 0


def _run_study(args: argparse.Namespace) -> int:
    """Dispatch ``repro study run/ls/export/clean``.

    ``run`` and ``export`` print a machine-greppable summary line
    (``study=... cells=N computed=X cached=Y corrupt=Z``) to stdout —
    the CI resume smoke leg asserts ``computed=0`` on a warm second
    run — while live progress goes to stderr.
    """
    from .platform import ResultStore, StudyReporter

    if args.study_command not in ("run", "ls", "export", "clean"):
        print("usage: repro study {run,ls,export,clean} ...",
              file=sys.stderr)
        return 2

    store = ResultStore(args.store)

    if args.study_command == "ls":
        inventory = store.inventory()
        if not inventory:
            print("store is empty")
            return 0
        for study, bucket in sorted(inventory.items()):
            print(f"{study} cells={bucket['cells']} "
                  f"bytes={bucket['bytes']}")
        return 0

    if args.study_command == "clean":
        removed = store.clean(study=args.study)
        scope = args.study or "all studies"
        print(f"removed {removed} cell(s) ({scope})")
        return 0

    if args.study_command in ("run", "export"):
        grid = STUDIES[args.study]()
        reporter = StudyReporter(echo=True)
        results = grid.run(workers=args.workers or None, store=store,
                           resume=args.resume, progress=reporter)
        meta = results.meta
        print(f"study={results.study} cells={meta['total']} "
              f"computed={meta['computed']} cached={meta['cached']} "
              f"corrupt={meta['corrupt']}")
        if args.study_command == "export":
            exporters = {"csv": results.to_csv, "json": results.to_json,
                         "parquet": results.to_parquet}
            try:
                exporters[args.format](args.out)
            except RuntimeError as error:  # pyarrow not installed
                print(error, file=sys.stderr)
                return 2
            print(f"wrote {len(results)} row(s) to {args.out} "
                  f"({args.format})")
        elif args.json is not None:
            results.to_json(args.json)
        return 0

    raise AssertionError("unreachable study subcommand")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0
    if args.command == "run":
        _run_one(args.experiment, args.jobs, args.seed, args.json,
                 workers=args.workers or None)
        return 0
    if args.command == "all":
        for experiment_id in sorted(EXPERIMENTS):
            _run_one(experiment_id, args.jobs, args.seed,
                     workers=args.workers or None)
        return 0
    if args.command == "perf":
        return _run_perf(args)
    if args.command == "analyze":
        return _run_analyze(skip_strategies=args.skip_strategies,
                            lint_paths=args.lint)
    if args.command == "study":
        return _run_study(args)
    if args.command == "lint":
        from .analysis.lint.cli import run as run_lint

        return run_lint(args, parser)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
