"""Reproduction of Toporkov, "Application-Level and Job-Flow
Scheduling: An Approach for Achieving Quality of Service in Distributed
Computing" (PaCT 2009).

Packages
--------
``repro.sim``
    Discrete-event simulation kernel (processes, resources, RNG streams).
``repro.core``
    The paper's contribution: compound jobs, reservation calendars, the
    critical works method, and strategies as sets of supporting schedules.
``repro.grid``
    Environment substrate: data policies, network, background load,
    execution replay.
``repro.local``
    Local batch-job management systems (FCFS, LWF, backfilling, gang,
    advance reservations).
``repro.flow``
    Job-flow level: metascheduler, domain job managers, reallocation,
    VO economics.
``repro.baselines``
    Comparison schedulers (independent-task heuristics, HEFT, greedy).
``repro.workload``
    Random workloads per Section 4 and the exact Fig. 2 example.
``repro.experiments``
    One runnable experiment per table/figure of the paper.
"""

from .core import (
    CriticalWorksScheduler,
    DataTransfer,
    Distribution,
    Job,
    Placement,
    ProcessorNode,
    ResourcePool,
    Strategy,
    StrategyGenerator,
    StrategyType,
    Task,
)
from .flow import Metascheduler, VirtualOrganization

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Task",
    "DataTransfer",
    "Job",
    "ProcessorNode",
    "ResourcePool",
    "Placement",
    "Distribution",
    "CriticalWorksScheduler",
    "Strategy",
    "StrategyGenerator",
    "StrategyType",
    "Metascheduler",
    "VirtualOrganization",
]
