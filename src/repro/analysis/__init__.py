"""Static analysis of schedules and simulator code (``repro.analysis``).

Two pillars:

* the **schedule verifier** (:mod:`repro.analysis.verify`,
  :mod:`repro.analysis.violations`) — pure checkers that take any
  :class:`~repro.core.schedule.Distribution`,
  :class:`~repro.core.strategy.Strategy`,
  :class:`~repro.core.critical_works.SchedulingOutcome`, or execution
  trace and report typed invariant violations (double-booking,
  precedence, deadline, capacity, ``CF`` mismatches); exposed on the
  command line as ``repro analyze`` and auto-applied to every schedule
  built in the test suite via ``tests/conftest.py``;
* the **determinism & shareability lint** (:mod:`repro.analysis.lint`)
  — a multi-pass static-analysis engine (symbol table with import/
  alias resolution, rule registry, text/JSON/SARIF output) running the
  REP001–REP012 rule set over the source tree: reproducibility hazards
  (unseeded randomness, float ``==``, wall-clock reads, mutable
  defaults), kernel-efficiency rules (scalar fits, stray caches), and
  the sharding/async-readiness rules (shared mutable state, unguarded
  cache reads, nondeterministic iteration, blocking calls in ``async
  def``, counter discipline).  Run as ``repro lint src/ --strict`` or
  ``python -m repro.analysis.lint``; see the catalog in ``DESIGN.md``.
"""

from typing import Any

from .verify import (
    verify_coallocation,
    verify_distribution,
    verify_outcome,
    verify_strategy,
    verify_trace,
)
from .violations import VerificationReport, Violation, ViolationKind

__all__ = [
    "ViolationKind",
    "Violation",
    "VerificationReport",
    "verify_distribution",
    "verify_outcome",
    "verify_strategy",
    "verify_coallocation",
    "verify_trace",
    "LintViolation",
    "lint_source",
    "lint_path",
    "lint_paths",
]

#: Lint names resolved lazily so ``python -m repro.analysis.lint`` does
#: not re-import the module it is about to execute (runpy warning).
_LINT_EXPORTS = frozenset(
    {"LintViolation", "lint_source", "lint_path", "lint_paths"})


def __getattr__(name: str) -> Any:
    if name in _LINT_EXPORTS:
        from . import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
