"""Typed schedule-invariant violations and verification reports.

The verifier (:mod:`repro.analysis.verify`) expresses every breach of
the paper's formal invariants as a :class:`Violation` with a
:class:`ViolationKind`, so tests can assert on *which* invariant broke
rather than string-matching free-form messages.  The kinds mirror the
paper's correctness conditions:

* supporting schedules are collision-free on shared nodes (Sect. 3,
  Fig. 3) — :attr:`ViolationKind.DOUBLE_BOOKING` /
  :attr:`ViolationKind.CAPACITY_OVERCOMMIT`;
* task allocations respect DAG precedence plus data-transfer windows
  (Fig. 2) — :attr:`ViolationKind.PRECEDENCE`;
* every distribution meets its deadline ``T`` within the release window
  — :attr:`ViolationKind.DEADLINE` / :attr:`ViolationKind.WINDOW_BOUNDS`;
* ``CF = Σ ceil(V_ij / T_i)`` stays consistent with the per-node load
  times — :attr:`ViolationKind.CF_MISMATCH`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["ViolationKind", "Violation", "VerificationReport"]


class ViolationKind(enum.Enum):
    """The invariant a violation breaches."""

    #: A job task has no placement in the distribution.
    MISSING_TASK = "missing-task"
    #: The distribution places a task the job does not contain.
    UNKNOWN_TASK = "unknown-task"
    #: A placement names a node outside the resource pool.
    UNKNOWN_NODE = "unknown-node"
    #: The reserved wall time is shorter than the task needs on its node.
    RESERVATION_TOO_SHORT = "reservation-too-short"
    #: Two tasks of one distribution overlap on the same node — the
    #: collision "race" of Sect. 3, which must be resolved before a
    #: supporting schedule is final.
    DOUBLE_BOOKING = "double-booking"
    #: A consumer starts before producer end plus the transfer window.
    PRECEDENCE = "precedence"
    #: The job misses its fixed completion time ``T``.
    DEADLINE = "deadline"
    #: A placement starts before the job's release slot.
    WINDOW_BOUNDS = "window-bounds"
    #: A placement overlaps a foreign reservation (another job or the
    #: background load) on a shared node calendar.
    CAPACITY_OVERCOMMIT = "capacity-overcommit"
    #: A reported cost or makespan disagrees with recomputation from the
    #: placements (``CF = Σ ceil(V_ij / T_i)``).
    CF_MISMATCH = "cf-mismatch"
    #: An outcome's admissibility flag disagrees with its distribution.
    ADMISSIBILITY = "admissibility"
    #: A collision record is inconsistent with the resource pool
    #: (cross-check against :mod:`repro.core.collisions`).
    COLLISION_MISMATCH = "collision-mismatch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Violation:
    """One breach of a schedule invariant."""

    kind: ViolationKind
    #: The job (or trace/strategy) the violation belongs to.
    job_id: str
    #: Human-readable account with the offending numbers.
    detail: str
    #: Task the violation anchors to ("" for job-level breaches).
    task_id: str = ""
    #: Contested node, when the breach is node-local.
    node_id: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f"/{self.task_id}" if self.task_id else ""
        node = f" on node {self.node_id}" if self.node_id is not None else ""
        return f"[{self.kind.value}] {self.job_id}{where}{node}: {self.detail}"


@dataclass
class VerificationReport:
    """All violations found while verifying one subject."""

    #: What was verified ("distribution fig2/Distribution 1", ...).
    subject: str
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every checked invariant holds."""
        return not self.violations

    def add(self, violation: Violation) -> None:
        """Record one violation."""
        self.violations.append(violation)

    def extend(self, violations: Iterable[Violation]) -> None:
        """Record several violations."""
        self.violations.extend(violations)

    def merge(self, other: "VerificationReport") -> None:
        """Fold another report's violations into this one."""
        self.violations.extend(other.violations)

    def kinds(self) -> set[ViolationKind]:
        """The distinct invariants breached."""
        return {violation.kind for violation in self.violations}

    def by_kind(self, kind: ViolationKind) -> list[Violation]:
        """All violations of one kind."""
        return [v for v in self.violations if v.kind is kind]

    def summary(self) -> str:
        """One line per violation, or an all-clear line."""
        if self.ok:
            return f"{self.subject}: OK (no invariant violations)"
        lines = [f"{self.subject}: {len(self.violations)} violation(s)"]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)
