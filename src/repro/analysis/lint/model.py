"""Per-module facts shared by every lint rule (pass 1 of 3).

A :class:`ModuleModel` bundles what one rule pass needs to answer its
questions without re-walking the file:

* the parsed tree plus a **parent map**, so any rule can ask for a
  node's ancestors (loop depth, enclosing function, enclosing class);
* the **symbol table** (:mod:`.symbols`) with import/alias resolution
  and scope tracking;
* **suppression markers** extracted from genuine ``COMMENT`` tokens
  (``# lint: <marker>``) — tokenizing instead of substring-scanning
  means a marker *mentioned in a docstring* neither suppresses nor
  counts as stale for REP012;
* path predicates (``in_packages``, ``is_module``) shared by the
  scoped rules.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

from .symbols import Scope, SymbolTable

__all__ = ["MarkerOccurrence", "ModuleModel"]

#: ``# lint: <marker>`` — anything after the marker word is free-text
#: justification (required by convention, not parsed).
_MARKER_RE = re.compile(r"#\s*lint:\s*([A-Za-z0-9][A-Za-z0-9_-]*)")

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_SCOPE_NODES = _FUNCTION_NODES + (ast.ClassDef, ast.ListComp, ast.SetComp,
                                  ast.DictComp, ast.GeneratorExp, ast.Module)
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
               ast.DictComp, ast.GeneratorExp)


@dataclass(frozen=True)
class MarkerOccurrence:
    """One ``# lint: <name>`` comment in the module."""

    line: int
    name: str


class ModuleModel:
    """Everything the rule passes know about one module."""

    def __init__(self, source: str, path: str = "<string>") -> None:
        self.path = Path(path)
        self.display_path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.symbols = SymbolTable(self.tree)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.markers: List[MarkerOccurrence] = _extract_markers(source)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestors, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The nearest enclosing function/lambda node, or None."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, _FUNCTION_NODES):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        """The nearest enclosing class, or None (stops at functions
        so a class nested inside a method does not leak outward)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def loop_depth(self, node: ast.AST) -> int:
        """Loop/comprehension nesting around ``node`` inside its own
        function: a nested function's body restarts the count (it does
        not execute inside the enclosing loop's iteration)."""
        depth = 0
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, _FUNCTION_NODES):
                break
            if isinstance(ancestor, _LOOP_NODES):
                depth += 1
        return depth

    def scope_of(self, node: ast.AST) -> Scope:
        """The lexical scope the node's code runs in."""
        current: Optional[ast.AST] = node
        while current is not None:
            scope = self.symbols.scopes.get(current)
            if scope is not None and isinstance(current, _SCOPE_NODES):
                # The scope-owner node itself (e.g. a FunctionDef used
                # as a statement) lives in its *parent* scope; its body
                # lives in its own.  Callers pass body nodes, so owner
                # hits only happen for the module node.
                if current is node and not isinstance(current, ast.Module):
                    current = self.parents.get(current)
                    continue
                return scope
            current = self.parents.get(current)
        return self.symbols.module_scope

    def resolve_call(self, node: ast.Call) -> Optional[str]:
        """The call target as a dotted name, through the symbol table."""
        return self.symbols.resolve(node.func, self.scope_of(node))

    def calls(self) -> Iterator[ast.Call]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node

    # ------------------------------------------------------------------
    # Path predicates
    # ------------------------------------------------------------------

    def in_packages(self, packages: Sequence[str],
                    require_repro: bool = False) -> bool:
        """True when the module lies inside one of the named packages
        (by path component; ``require_repro`` additionally demands a
        ``repro`` component, excluding same-named test directories)."""
        parts = self.path.parts
        if require_repro and "repro" not in parts:
            return False
        return any(package in parts for package in packages)

    def is_module(self, package: str, filename: str) -> bool:
        """True for exactly ``.../<package>/<filename>``."""
        parts = self.path.parts
        return (len(parts) >= 2 and parts[-1] == filename
                and parts[-2] == package)

    # ------------------------------------------------------------------
    # Identifier-token scan (REP008's guard detection)
    # ------------------------------------------------------------------

    def identifier_tokens(self, root: ast.AST) -> Iterator[str]:
        """Every identifier spelled inside ``root`` (names, attribute
        components, parameters) — docstrings and comments excluded."""
        for node in ast.walk(root):
            if isinstance(node, ast.Name):
                yield node.id
            elif isinstance(node, ast.Attribute):
                yield node.attr
            elif isinstance(node, ast.arg):
                yield node.arg


def _extract_markers(source: str) -> List[MarkerOccurrence]:
    """``# lint: <name>`` occurrences from real comment tokens."""
    occurrences: List[MarkerOccurrence] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _MARKER_RE.search(token.string)
            if match is not None:
                occurrences.append(
                    MarkerOccurrence(token.start[0], match.group(1)))
    except (tokenize.TokenError, IndentationError,
            SyntaxError):  # pragma: no cover - ast.parse catches first
        for number, line in enumerate(source.splitlines(), start=1):
            match = _MARKER_RE.search(line)
            if match is not None:
                occurrences.append(MarkerOccurrence(number, match.group(1)))
    return occurrences
