"""Scope-aware symbol table for the lint engine (pass 2 of 3).

Builds, for one parsed module, a tree of lexical scopes (module,
function, lambda, class, comprehension) with per-scope name bindings:

* **imports** — ``import numpy.random as npr`` binds ``npr ->
  numpy.random``; plain ``import numpy.random`` binds only the root
  ``numpy -> numpy`` (the pre-engine lint bound ``numpy ->
  numpy.random``, which mis-resolved every other ``numpy.*`` access);
  ``from random import shuffle as sh`` binds ``sh -> random.shuffle``;
* **assignment aliases** — ``rng = numpy.random`` binds ``rng`` to the
  resolved dotted name of its right-hand side, transitively (``r =
  rng`` resolves through ``rng``) with a depth guard;
* **shadowing** — parameters, loop/with/except targets, comprehension
  targets, and any non-alias assignment bind the name :data:`LOCAL`,
  which *blocks* resolution: a local variable named ``random`` stops
  ``random.choice`` from resolving to the stdlib module.

Name lookup follows Python's rules closely enough for linting: scopes
chain lexically, and class scopes are invisible to functions nested
inside them (only code directly in the class body sees class-level
names).  A name bound nowhere resolves to itself — the module-global /
builtin fallback that lets ``random.shuffle`` match without an import
statement in scope.

The table also records, per scope, every expression assigned to each
plain name and every annotation — the local dataflow facts the
container rules (REP007/REP009) and the staleness rule (REP008) read.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["LOCAL", "Alias", "Scope", "SymbolTable"]


class _Local:
    """Sentinel binding: locally bound, blocks dotted resolution."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<LOCAL>"


#: The shadowing sentinel (see module docstring).
LOCAL = _Local()


@dataclass(frozen=True)
class Alias:
    """A name bound to another name/attribute chain (``rng = np.random``).

    Resolution is deferred until lookup so aliases may point at names
    bound later in the scope or in enclosing scopes.
    """

    parts: Tuple[str, ...]
    scope: "Scope"


Binding = Union[_Local, str, Alias]


@dataclass
class Scope:
    """One lexical scope and the facts the rules need about it."""

    node: ast.AST
    parent: Optional["Scope"]
    is_class: bool = False
    bindings: Dict[str, Binding] = field(default_factory=dict)
    #: Every expression assigned to each plain ``Name`` target here.
    assignments: Dict[str, List[ast.expr]] = field(default_factory=dict)
    #: Annotation expression per annotated plain name (params included).
    annotations: Dict[str, ast.expr] = field(default_factory=dict)
    #: Names declared ``global`` in this scope.
    globals: frozenset = frozenset()

    def bind(self, name: str, binding: Binding) -> None:
        """Record a binding; conflicting rebinds degrade to LOCAL.

        A name bound twice to different targets can no longer be
        resolved soundly, so the table turns conservative rather than
        guessing (guessing is how false positives are born).
        """
        existing = self.bindings.get(name)
        if existing is None:
            self.bindings[name] = binding
        elif existing is not binding and existing != binding:
            self.bindings[name] = LOCAL


class SymbolTable:
    """Per-module scopes plus dotted-name resolution."""

    #: Transitive alias hops tolerated before giving up (cycle guard).
    MAX_ALIAS_DEPTH = 8

    def __init__(self, tree: ast.Module) -> None:
        self.scopes: Dict[ast.AST, Scope] = {}
        self.module_scope = Scope(tree, None)
        self.scopes[tree] = self.module_scope
        _Builder(self).build(tree)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def binding_scope(self, name: str, scope: Scope) -> Optional[Scope]:
        """The scope whose binding a ``name`` read would see, or None."""
        current: Optional[Scope] = scope
        immediate = True
        while current is not None:
            if current.is_class and not immediate:
                current = current.parent
                continue
            if name in current.bindings:
                return current
            immediate = False
            current = current.parent
        return None

    def resolve_name(self, name: str, scope: Scope,
                     _depth: int = 0) -> Optional[str]:
        """The dotted target ``name`` stands for in ``scope``.

        Returns None when the name is locally bound (shadowed) or an
        alias chain cannot be followed; returns ``name`` itself when no
        binding exists anywhere (the global/builtin fallback).
        """
        owner = self.binding_scope(name, scope)
        if owner is None:
            return name
        binding = owner.bindings[name]
        if binding is LOCAL:
            return None
        if isinstance(binding, str):
            return binding
        if isinstance(binding, Alias):
            if _depth >= self.MAX_ALIAS_DEPTH:
                return None
            base = self.resolve_name(binding.parts[0], binding.scope,
                                     _depth + 1)
            if base is None:
                return None
            return ".".join((base,) + binding.parts[1:])
        return None  # pragma: no cover - binding types are closed

    def resolve(self, node: ast.expr, scope: Scope) -> Optional[str]:
        """Resolve a ``Name``/``Attribute`` chain to a dotted string."""
        parts = _chain_parts(node)
        if parts is None:
            return None
        base = self.resolve_name(parts[0], scope)
        if base is None:
            return None
        return ".".join((base,) + parts[1:])


def _chain_parts(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-chain expressions."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return tuple(parts)


class _Builder(ast.NodeVisitor):
    """Single walk that creates scopes and collects bindings."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.scope = table.module_scope

    def build(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            self.visit(stmt)

    # -- scope management ----------------------------------------------

    def _push(self, node: ast.AST, is_class: bool = False) -> Scope:
        scope = Scope(node, self.scope, is_class=is_class)
        self.table.scopes[node] = scope
        self.scope = scope
        return scope

    def _pop(self) -> None:
        assert self.scope.parent is not None
        self.scope = self.scope.parent

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for name in node.names:
            if name.asname is not None:
                self.scope.bind(name.asname, name.name)
            else:
                # ``import a.b`` binds only ``a`` (to the root module);
                # ``a.b.c`` accesses then resolve naturally.
                root = name.name.split(".")[0]
                self.scope.bind(root, root)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        prefix = "." * node.level + (node.module or "")
        for name in node.names:
            if name.name == "*":
                continue
            local = name.asname or name.name
            self.scope.bind(local, f"{prefix}.{name.name}"
                            if prefix else name.name)

    # -- functions / classes / comprehensions --------------------------

    def _visit_function(
            self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self.scope.bind(node.name, LOCAL)
        for decorator in node.decorator_list:
            self.visit(decorator)
        for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]:
            self.visit(default)
        scope = self._push(node)
        for argument in (list(node.args.posonlyargs) + list(node.args.args)
                         + list(node.args.kwonlyargs)
                         + [a for a in (node.args.vararg, node.args.kwarg)
                            if a is not None]):
            scope.bind(argument.arg, LOCAL)
            if argument.annotation is not None:
                scope.annotations[argument.arg] = argument.annotation
        for stmt in node.body:
            self.visit(stmt)
        self._pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        scope = self._push(node)
        for argument in (list(node.args.posonlyargs) + list(node.args.args)
                         + list(node.args.kwonlyargs)):
            scope.bind(argument.arg, LOCAL)
        self.visit(node.body)
        self._pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.bind(node.name, LOCAL)
        for expr in node.bases + node.keywords + node.decorator_list:
            self.visit(expr.value if isinstance(expr, ast.keyword) else expr)
        self._push(node, is_class=True)
        for stmt in node.body:
            self.visit(stmt)
        self._pop()

    def _visit_comprehension(self, node: ast.expr) -> None:
        scope = self._push(node)
        for comp in node.generators:  # type: ignore[attr-defined]
            self._bind_target(comp.target)
        self.generic_visit(node)
        del scope
        self._pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- bindings from statements --------------------------------------

    def _bind_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.scope.bind(target.id, LOCAL)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                parts = _chain_parts(node.value)
                if parts is not None:
                    self.scope.bind(target.id,
                                    Alias(parts, self.scope))
                else:
                    self.scope.bind(target.id, LOCAL)
                self.scope.assignments.setdefault(
                    target.id, []).append(node.value)
            else:
                self._bind_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self.scope.bind(node.target.id, LOCAL)
            self.scope.annotations[node.target.id] = node.annotation
            if node.value is not None:
                self.scope.assignments.setdefault(
                    node.target.id, []).append(node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            self.scope.bind(node.target.id, LOCAL)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._bind_target(node.target)
        self.generic_visit(node)

    visit_AsyncFor = visit_For  # type: ignore[assignment]

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars)
        self.generic_visit(node)

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name is not None:
            self.scope.bind(node.name, LOCAL)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.scope.globals = self.scope.globals | frozenset(node.names)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._bind_target(node.target)
        self.generic_visit(node)
