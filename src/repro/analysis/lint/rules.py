"""The rule set (pass 3): REP001–REP011, REP013 checker implementations.

Each checker receives one :class:`~repro.analysis.lint.model.
ModuleModel` and yields raw findings; suppression markers, baselines,
and rule selection are applied by the engine.  REP012
(stale/unknown suppression markers) is implemented in the engine
itself because it needs the *other* rules' raw findings.

Rule semantics are documented in the catalog table in ``DESIGN.md``
(and summarized by ``repro lint --list-rules``); the docstrings here
note only the implementation subtleties.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Set, Tuple

from .model import ModuleModel
from .registry import LintViolation, Severity, register_meta_rule, rule
from .symbols import Scope

__all__ = ["load_rules"]

# ---------------------------------------------------------------------------
# Shared constants
# ---------------------------------------------------------------------------

#: Dotted call prefixes that consume global random state (REP001).
_RANDOM_PREFIXES = ("random.", "numpy.random.")

#: Constructors that are *explicitly seeded* when called with at least
#: one argument (``default_rng(seed)``); zero-argument calls draw their
#: seed from OS entropy and stay violations.
_SEEDED_CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng", "numpy.random.SeedSequence",
    "numpy.random.Generator", "numpy.random.PCG64",
    "numpy.random.Philox", "numpy.random.SFC64", "numpy.random.MT19937",
    "numpy.random.RandomState",
})

#: Dotted calls that read the host wall clock (REP003).
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.monotonic", "time.perf_counter",
    "time.process_time", "time.time_ns", "time.monotonic_ns",
    "time.perf_counter_ns", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Packages in which REP003 applies — the DES clock owns time in the
#: kernel and the flow layer too, not just the simulator package.
_WALL_CLOCK_SCOPE = ("sim", "core", "flow", "perf")

#: Constructors whose call produces a fresh mutable object (REP004).
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})

#: Container factories REP006/REP007 treat as mutable shared storage.
_CONTAINER_FACTORIES = frozenset({
    "dict", "set", "list", "collections.OrderedDict",
    "collections.defaultdict", "collections.deque",
    "collections.Counter", "weakref.WeakKeyDictionary",
    "weakref.WeakValueDictionary",
})

#: Mutable-cursor factories: not containers, but module-level instances
#: are shared mutable state all the same (REP007).
_CURSOR_FACTORIES = frozenset({"itertools.count"})

#: Method calls that mutate a container in place (REP007).
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
    "appendleft", "extendleft", "popleft",
})

#: Lowercase substrings that make a name "cache-named" (REP006).
_CACHE_NAME_HINTS = ("cache", "memo", "_tables", "_stacks", "matrices")

#: SchedulingContext caches whose keys embed a calendar content version
#: or a domain epoch slice; reads must visibly involve one (REP008).
_VERSIONED_CACHES = frozenset({"fit_cache", "plans", "_gap_tables",
                               "_stacks"})

#: Identifier substrings that count as a version/epoch guard (REP008).
_GUARD_TOKENS = ("version", "epoch")

#: Caches of the two-tier plan cache kind: keys lead with a semantic
#: job-shape hash and end in an epoch slice, so reads must visibly
#: involve BOTH a shape/structure token and a version/epoch token
#: (REP008).  A read guarded on epochs alone can still alias plans of
#: structurally different jobs; a read guarded on shape alone serves
#: plans across calendar drift.
_SHAPE_KEYED_CACHES = frozenset({"plans"})

#: Identifier substrings that count as a shape/structure guard (REP008).
_SHAPE_TOKENS = ("shape", "struct")

#: Method names that read an entry out of a cache (REP008); plain
#: mapping caches expose ``get``, the two-tier plan cache ``lookup``.
_CACHE_READ_METHODS = frozenset({"get", "lookup"})

#: Order-free consumers: passing a set to these is not an ordered
#: iteration (REP009).
_ORDER_FREE_CONSUMERS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set",
    "frozenset",
})

#: Iteration-forcing builtins that preserve (arbitrary) order (REP009).
_ORDERING_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter"})

#: Set-producing methods (receiver must itself be a set) (REP009).
_SET_METHODS = frozenset({"union", "intersection", "difference",
                          "symmetric_difference", "copy"})

#: Blocking calls that stall an event loop inside ``async def``
#: (REP010).
_BLOCKING_CALLS = frozenset({
    "time.sleep", "os.system", "os.popen", "os.wait", "os.waitpid",
    "socket.create_connection", "urllib.request.urlopen",
    "open", "input",
})
_BLOCKING_PREFIXES = ("subprocess.", "requests.", "shutil.")

#: Counter-name suffixes reserved for context-owned caches (REP011).
_PAIRED_SUFFIXES = ("_hits", "_misses", "_evictions")

#: Attribute names holding per-shard collections (REP007/REP008): a
#: subscript into one of these selects ONE shard's private state
#: (its planner, context, replica calendars).  Mutating or cache-reading
#: through such a subscript outside the merge/arbitration seam is how
#: shard isolation silently breaks.
_SHARD_COLLECTIONS = frozenset({
    "shards", "planners", "shard_planners", "replicas",
    "shard_contexts",
})

#: Mutating method names for the shard-crossing check (REP007): the
#: container mutators plus the domain mutators of calendars, plan
#: caches, and perf registries.
_SHARD_MUTATOR_METHODS = _MUTATOR_METHODS | frozenset({
    "reserve", "release", "release_tag", "release_prefix",
    "store", "store_coarse", "incr", "adopt", "merge",
})

#: Function-name substrings that mark the sanctioned seam (REP007/
#: REP008): commit/merge/arbitration/sync functions own cross-shard
#: state by design.
_SHARD_SEAM_TOKENS = ("commit", "merge", "arbitrat", "sync", "seam")


# ---------------------------------------------------------------------------
# Small helpers
# ---------------------------------------------------------------------------

def _finding(model: ModuleModel, node: ast.AST, code: str, name: str,
             severity: Severity, message: str) -> LintViolation:
    return LintViolation(
        path=model.display_path, line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0), code=code, message=message,
        severity=severity, rule_name=name)


def _is_cache_name(name: str) -> bool:
    lowered = name.lower()
    return any(hint in lowered for hint in _CACHE_NAME_HINTS)


def _is_container_value(model: ModuleModel, node: ast.expr,
                        scope: Scope) -> bool:
    """True when the expression builds a mutable container."""
    if isinstance(node, (ast.Dict, ast.Set, ast.List, ast.DictComp,
                         ast.SetComp, ast.ListComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = model.symbols.resolve(node.func, scope)
        if dotted is None:
            return False
        return (dotted in _CONTAINER_FACTORIES
                or dotted.split(".")[-1] in _CONTAINER_FACTORIES)
    return False


def _is_cursor_value(model: ModuleModel, node: ast.expr,
                     scope: Scope) -> bool:
    if isinstance(node, ast.Call):
        dotted = model.symbols.resolve(node.func, scope)
        return dotted in _CURSOR_FACTORIES
    return False


def _module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module-body statements, looking through top-level If/Try."""
    stack: list = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, ast.If):
            stack = list(stmt.body) + list(stmt.orelse) + stack
        elif isinstance(stmt, ast.Try):
            bodies = (list(stmt.body) + list(stmt.orelse)
                      + list(stmt.finalbody)
                      + [s for handler in stmt.handlers
                         for s in handler.body])
            stack = bodies + stack
        else:
            yield stmt


def load_rules() -> None:
    """Import-time hook: registration happens via decorators below."""


# ---------------------------------------------------------------------------
# REP001 unseeded-random
# ---------------------------------------------------------------------------

@rule("REP001", "unseeded-random", Severity.ERROR,
      "call into global random.*/numpy.random.* state outside "
      "repro.sim.rng (explicitly seeded constructors are allowed)",
      marker="rng-ok", scope="every module except repro/sim/rng.py")
def check_unseeded_random(model: ModuleModel) -> Iterator[LintViolation]:
    if model.is_module("sim", "rng.py"):
        return
    for node in model.calls():
        dotted = model.resolve_call(node)
        if dotted is None:
            continue
        if not any(dotted == prefix[:-1] or dotted.startswith(prefix)
                   for prefix in _RANDOM_PREFIXES) \
                and dotted != "random.Random":
            continue
        if dotted in _SEEDED_CONSTRUCTORS and (node.args or node.keywords):
            continue  # explicitly seeded: reproducible by construction
        yield _finding(
            model, node, "REP001", "unseeded-random", Severity.ERROR,
            f"unseeded global randomness `{dotted}`; draw from a named "
            f"repro.sim.rng.RandomStreams stream instead")


# ---------------------------------------------------------------------------
# REP002 float-equality
# ---------------------------------------------------------------------------

@rule("REP002", "float-equality", Severity.ERROR,
      "== / != against a float literal breeds off-by-one reservations",
      marker="exact-float", scope="every module")
def check_float_equality(model: ModuleModel) -> Iterator[LintViolation]:
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, (left, right) in zip(node.ops,
                                     zip(operands, operands[1:])):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if isinstance(side, ast.Constant) and \
                        isinstance(side.value, float):
                    yield _finding(
                        model, node, "REP002", "float-equality",
                        Severity.ERROR,
                        f"exact float comparison against {side.value!r}; "
                        f"use repro.core.units.EPSILON or math.isclose")
                    break


# ---------------------------------------------------------------------------
# REP003 wall-clock
# ---------------------------------------------------------------------------

@rule("REP003", "wall-clock", Severity.ERROR,
      "host-clock read where the DES clock owns time "
      "(sim, core, flow, perf)",
      marker="perf-timer", scope="sim/, core/, flow/, perf/ packages")
def check_wall_clock(model: ModuleModel) -> Iterator[LintViolation]:
    if not model.in_packages(_WALL_CLOCK_SCOPE):
        return
    for node in model.calls():
        dotted = model.resolve_call(node)
        if dotted in _WALL_CLOCK_CALLS:
            yield _finding(
                model, node, "REP003", "wall-clock", Severity.ERROR,
                f"wall-clock read `{dotted}`; simulated components use "
                f"the discrete-event clock (Environment.now) — real "
                f"measurement code carries `# lint: perf-timer`")


# ---------------------------------------------------------------------------
# REP004 mutable-default
# ---------------------------------------------------------------------------

@rule("REP004", "mutable-default", Severity.ERROR,
      "mutable default argument aliases state across calls",
      marker="shared-default", scope="every module")
def check_mutable_default(model: ModuleModel) -> Iterator[LintViolation]:
    for node in ast.walk(model.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        scope = model.scope_of(node)
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if not mutable and isinstance(default, ast.Call):
                dotted = model.symbols.resolve(default.func, scope)
                mutable = dotted in _MUTABLE_FACTORIES
            if mutable:
                yield _finding(
                    model, node, "REP004", "mutable-default",
                    Severity.ERROR,
                    "mutable default argument; default to None (or a "
                    "dataclasses.field factory) and build inside")


# ---------------------------------------------------------------------------
# REP005 scalar-fit-in-loop
# ---------------------------------------------------------------------------

@rule("REP005", "scalar-fit-in-loop", Severity.WARNING,
      "scalar earliest_fit in a DP loop bypasses the batched "
      "placement kernel",
      marker="scalar-fallback", scope="core/dp.py only")
def check_scalar_fit(model: ModuleModel) -> Iterator[LintViolation]:
    if not model.is_module("core", "dp.py"):
        return
    for node in model.calls():
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "earliest_fit"):
            continue
        if model.loop_depth(node) == 0:
            continue
        yield _finding(
            model, node, "REP005", "scalar-fit-in-loop", Severity.WARNING,
            "scalar earliest_fit inside a DP loop; batch through "
            "repro.core.placement (or mark the sanctioned fallback "
            "with `# lint: scalar-fallback`)")


# ---------------------------------------------------------------------------
# REP006 stray-cache
# ---------------------------------------------------------------------------

def _in_cache_scope(model: ModuleModel) -> bool:
    return (model.in_packages(("core", "flow"), require_repro=True)
            and model.path.parts[-1] != "context.py")


@rule("REP006", "stray-cache", Severity.WARNING,
      "cache state outside SchedulingContext (module/class container, "
      "self attribute, threaded parameter, __setattr__ smuggling)",
      marker="context-cache",
      scope="repro/core/ and repro/flow/ except context.py")
def check_stray_cache(model: ModuleModel) -> Iterator[LintViolation]:
    if not _in_cache_scope(model):
        return

    def stray(node: ast.AST, what: str) -> LintViolation:
        return _finding(
            model, node, "REP006", "stray-cache", Severity.WARNING,
            f"{what}; kernel caches belong on "
            "repro.core.context.SchedulingContext (or mark a sanctioned "
            "exception with `# lint: context-cache`)")

    for node in ast.walk(model.tree):
        scope = model.scope_of(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            arguments = node.args
            for argument in (list(arguments.posonlyargs)
                             + list(arguments.args)
                             + list(arguments.kwonlyargs)):
                if _is_cache_name(argument.arg):
                    yield stray(
                        argument,
                        f"cache-named parameter `{argument.arg}` threads "
                        f"cache state through a signature")
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None or not _is_container_value(model, value,
                                                        scope):
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            top_level = model.enclosing_function(node) is None
            for target in targets:
                if isinstance(target, ast.Name) and top_level \
                        and _is_cache_name(target.id):
                    yield stray(
                        node,
                        f"module/class-level cache container "
                        f"`{target.id}`")
                elif isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self" \
                        and _is_cache_name(target.attr):
                    yield stray(
                        node,
                        f"cache container assigned to `self.{target.attr}`")
        elif isinstance(node, ast.Call):
            dotted = model.resolve_call(node)
            if dotted != "object.__setattr__" or len(node.args) != 3:
                continue
            attr = node.args[1]
            if isinstance(attr, ast.Constant) \
                    and isinstance(attr.value, str) \
                    and _is_cache_name(attr.value) \
                    and _is_container_value(model, node.args[2], scope):
                yield stray(
                    node,
                    f"object.__setattr__ smuggles cache container "
                    f"`{attr.value}` onto a frozen object")


# ---------------------------------------------------------------------------
# REP007 shared-mutable-state
# ---------------------------------------------------------------------------

def _shard_subscript_base(expr: ast.expr) -> Optional[str]:
    """Shard-collection name a receiver chain subscripts, if any.

    ``self.planners[i].context.plans`` → ``"planners"``; chains that
    never index a :data:`_SHARD_COLLECTIONS` attribute return None.
    """
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        if isinstance(expr, ast.Subscript):
            base = expr.value
            if isinstance(base, ast.Attribute) and \
                    base.attr in _SHARD_COLLECTIONS:
                return base.attr
            if isinstance(base, ast.Name) and \
                    base.id in _SHARD_COLLECTIONS:
                return base.id
            expr = base
        else:
            expr = expr.value
    return None


def _in_shard_seam(model: ModuleModel, node: ast.AST) -> bool:
    """True inside a function whose name marks the sanctioned seam."""
    function = model.enclosing_function(node)
    if function is None:
        return False
    # Lambdas are anonymous: never a seam by name.
    name = getattr(function, "name", "").lower()
    return any(token in name for token in _SHARD_SEAM_TOKENS)


@rule("REP007", "shared-mutable-state", Severity.ERROR,
      "module/class-level mutable state mutated from function scope "
      "breaks process-pool shareability; shard-owned state mutated "
      "outside the merge/arbitration seam breaks shard isolation",
      marker="shared-state", scope="repro/core/ and repro/flow/ packages")
def check_shared_mutable_state(model: ModuleModel
                               ) -> Iterator[LintViolation]:
    if not model.in_packages(("core", "flow"), require_repro=True):
        return
    module_scope = model.symbols.module_scope

    # Shard-isolation pass: state selected through a per-shard
    # collection subscript (``planners[i].context...``, ``replicas[s]
    # ...``) is one shard's private world; mutating it from a function
    # outside the commit/merge/arbitration/sync seam means two shards
    # can observe each other mid-window — the exact coupling the
    # sharded engine's bit-identity depends on never happening.
    def crossing(node: ast.AST, collection: str, how: str
                 ) -> LintViolation:
        return _finding(
            model, node, "REP007", "shared-mutable-state", Severity.ERROR,
            f"{how} shard-owned state through `{collection}[...]` "
            f"outside the merge/arbitration seam; shards must stay "
            f"isolated between merges — move this into a function "
            f"named for the seam ({', '.join(_SHARD_SEAM_TOKENS)}) or "
            f"mark `# lint: shared-state` with a justification")

    for node in ast.walk(model.tree):
        if model.enclosing_function(node) is None \
                or _in_shard_seam(model, node):
            continue
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _SHARD_MUTATOR_METHODS:
            collection = _shard_subscript_base(node.func.value)
            if collection is not None:
                yield crossing(node, collection,
                               f"mutating call `.{node.func.attr}(...)` on")
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            shard_targets = (node.targets if not isinstance(
                node, ast.AugAssign) else [node.target])
            for target in shard_targets:
                if not isinstance(target, (ast.Subscript, ast.Attribute)):
                    continue
                collection = _shard_subscript_base(target)
                if collection is not None:
                    yield crossing(node, collection, "write to")

    # Pass A: module-level mutable declarations (containers + cursors).
    containers: dict = {}
    cursors: dict = {}
    class_attrs: dict = {}
    for stmt in _module_level_statements(model.tree):
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            if value is None:
                continue
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if _is_container_value(model, value, module_scope):
                    containers[target.id] = stmt.lineno
                elif _is_cursor_value(model, value, module_scope):
                    cursors[target.id] = stmt.lineno
        elif isinstance(stmt, ast.ClassDef):
            attrs: dict = {}
            assigned_on_self: Set[str] = set()
            for body_stmt in stmt.body:
                if isinstance(body_stmt, (ast.Assign, ast.AnnAssign)):
                    value = body_stmt.value
                    if value is None:
                        continue
                    targets = (body_stmt.targets
                               if isinstance(body_stmt, ast.Assign)
                               else [body_stmt.target])
                    for target in targets:
                        if isinstance(target, ast.Name) and \
                                _is_container_value(model, value,
                                                    module_scope):
                            attrs[target.id] = body_stmt.lineno
            # ``self.X = ...`` anywhere in the class shadows the class
            # attribute per instance; mutation through self is then
            # instance state, not shared state.
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    node_targets = (node.targets
                                    if isinstance(node, ast.Assign)
                                    else [node.target])
                    for target in node_targets:
                        if isinstance(target, ast.Attribute) \
                                and isinstance(target.value, ast.Name) \
                                and target.value.id == "self":
                            assigned_on_self.add(target.attr)
            live = {name: line for name, line in attrs.items()
                    if name not in assigned_on_self}
            if live:
                class_attrs[stmt] = live
    if not containers and not cursors and not class_attrs:
        return

    def refers_to_module_global(name_node: ast.Name,
                                registry: dict) -> bool:
        if name_node.id not in registry:
            return False
        scope = model.scope_of(name_node)
        owner = model.symbols.binding_scope(name_node.id, scope)
        return owner is module_scope or owner is None

    def shared(node: ast.AST, name: str, line: int,
               how: str) -> LintViolation:
        return _finding(
            model, node, "REP007", "shared-mutable-state", Severity.ERROR,
            f"{how} `{name}` (declared at line {line}) from function "
            f"scope; module/class state is not shareable across worker "
            f"processes — move it onto SchedulingContext or pass it "
            f"explicitly (or mark `# lint: shared-state` with a "
            f"justification)")

    decl_lines = dict(containers)
    decl_lines.update(cursors)

    for node in ast.walk(model.tree):
        if model.enclosing_function(node) is None:
            continue
        if isinstance(node, ast.Call):
            func = node.func
            # container.mutator(...)
            if isinstance(func, ast.Attribute) \
                    and func.attr in _MUTATOR_METHODS:
                receiver = func.value
                if isinstance(receiver, ast.Name) and \
                        refers_to_module_global(receiver, containers):
                    yield shared(node, receiver.id,
                                 containers[receiver.id],
                                 "in-place mutation of module-level "
                                 "container")
                elif isinstance(receiver, ast.Attribute) \
                        and isinstance(receiver.value, ast.Name) \
                        and receiver.value.id == "self":
                    owner_class = model.enclosing_class(node)
                    live = class_attrs.get(owner_class, {})
                    if receiver.attr in live:
                        yield shared(node, receiver.attr,
                                     live[receiver.attr],
                                     "in-place mutation of class-level "
                                     "container")
            # next(cursor)
            elif isinstance(func, ast.Name) and func.id == "next" \
                    and node.args \
                    and isinstance(node.args[0], ast.Name) \
                    and refers_to_module_global(node.args[0], cursors):
                cursor = node.args[0]
                yield shared(node, cursor.id, cursors[cursor.id],
                             "advance of module-level cursor")
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            if isinstance(node, ast.Assign):
                targets: Sequence[ast.expr] = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            else:
                targets = node.targets
            for target in targets:
                base: Optional[ast.expr] = None
                if isinstance(target, ast.Subscript):
                    base = target.value
                elif isinstance(target, ast.Name) and \
                        isinstance(node, (ast.Assign, ast.AugAssign)):
                    # Plain rebinding only mutates module state under a
                    # ``global`` declaration.
                    scope = model.scope_of(target)
                    if target.id in scope.globals and \
                            target.id in decl_lines:
                        yield shared(node, target.id,
                                     decl_lines[target.id],
                                     "rebinding of module-level state")
                    continue
                if isinstance(base, ast.Name) and \
                        refers_to_module_global(base, containers):
                    yield shared(node, base.id, containers[base.id],
                                 "subscript write to module-level "
                                 "container")
                elif isinstance(base, ast.Attribute) \
                        and isinstance(base.value, ast.Name) \
                        and base.value.id == "self":
                    owner_class = model.enclosing_class(node)
                    live = class_attrs.get(owner_class, {})
                    if base.attr in live:
                        yield shared(node, base.attr, live[base.attr],
                                     "subscript write to class-level "
                                     "container")


# ---------------------------------------------------------------------------
# REP008 unguarded-cache-read
# ---------------------------------------------------------------------------

@rule("REP008", "unguarded-cache-read", Severity.ERROR,
      "read of a version-keyed context cache in a function that never "
      "touches a calendar version or epoch; cache reads crossing into "
      "another shard's context outside the merge/arbitration seam",
      marker="epoch-keyed", scope="repro/core/ and repro/flow/ packages")
def check_unguarded_cache_read(model: ModuleModel
                               ) -> Iterator[LintViolation]:
    if not model.in_packages(("core", "flow"), require_repro=True):
        return

    def is_versioned_cache(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Attribute) and \
                expr.attr in _VERSIONED_CACHES:
            return expr.attr
        if isinstance(expr, ast.Name) and expr.id in _VERSIONED_CACHES:
            return expr.id
        return None

    guarded_functions: dict = {}

    def guarded(node: ast.AST, tokens: tuple) -> bool:
        function = model.enclosing_function(node)
        root = function if function is not None else model.tree
        key = (root, tokens)
        cached = guarded_functions.get(key)
        if cached is None:
            cached = any(
                guard_token in identifier.lower()
                for identifier in model.identifier_tokens(root)
                for guard_token in tokens)
            guarded_functions[key] = cached
        return cached

    for node in ast.walk(model.tree):
        cache_name: Optional[str] = None
        site: Optional[ast.AST] = None
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _CACHE_READ_METHODS:
            cache_name = is_versioned_cache(node.func.value)
            site = node
            # Shard-isolation extension: a cache read whose receiver
            # chain subscripts a per-shard collection reaches into one
            # shard's private caches; outside the merge/arbitration
            # seam that lets one shard's planning observe another's
            # session state mid-window.
            crossed = _shard_subscript_base(node.func.value)
            if crossed is not None and not _in_shard_seam(model, node):
                yield _finding(
                    model, node, "REP008", "unguarded-cache-read",
                    Severity.ERROR,
                    f"cross-shard cache read `.{node.func.attr}(...)` "
                    f"through `{crossed}[...]` outside the "
                    f"merge/arbitration seam; a shard may only consult "
                    f"its own context between merges — route this "
                    f"through a seam function "
                    f"({', '.join(_SHARD_SEAM_TOKENS)}) or mark "
                    f"`# lint: epoch-keyed` with a justification")
                continue
        elif isinstance(node, ast.Subscript) and \
                isinstance(node.ctx, ast.Load):
            cache_name = is_versioned_cache(node.value)
            site = node
        if cache_name is None or site is None:
            continue
        if not guarded(site, _GUARD_TOKENS):
            yield _finding(
                model, site, "REP008", "unguarded-cache-read",
                Severity.ERROR,
                f"read of version-keyed cache `{cache_name}` in a "
                f"function that never references a calendar version or "
                f"epoch — a stale entry would be served silently; key "
                f"the lookup on the content version / epoch slice (or "
                f"mark `# lint: epoch-keyed` with the guard's location)")
            continue
        if cache_name in _SHAPE_KEYED_CACHES and \
                not guarded(site, _SHAPE_TOKENS):
            yield _finding(
                model, site, "REP008", "unguarded-cache-read",
                Severity.ERROR,
                f"read of shape-keyed plan cache `{cache_name}` in a "
                f"function that references an epoch/version but never a "
                f"shape or structural hash — the lookup could alias "
                f"plans of structurally different jobs; key it on the "
                f"job's shape/structural hash as well (or mark "
                f"`# lint: epoch-keyed` with the guard's location)")


# ---------------------------------------------------------------------------
# REP009 nondeterministic-iteration
# ---------------------------------------------------------------------------

_SET_ANNOTATIONS = ("set", "frozenset", "Set", "FrozenSet", "AbstractSet",
                    "MutableSet")


def _is_set_annotation(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        text = annotation.value.strip()
        return any(text == name or text.startswith(f"{name}[")
                   for name in _SET_ANNOTATIONS)
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in _SET_ANNOTATIONS
    if isinstance(target, ast.Attribute):
        return target.attr in _SET_ANNOTATIONS
    return False


def _is_set_expr(model: ModuleModel, expr: ast.expr, scope: Scope,
                 depth: int = 0) -> bool:
    """Conservative local inference: True only when the expression is
    provably an unordered set."""
    if depth > 6:
        return False
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        dotted = model.symbols.resolve(func, scope)
        if dotted in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and \
                func.attr in _SET_METHODS:
            return _is_set_expr(model, func.value, scope, depth + 1)
        return False
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(model, expr.left, scope, depth + 1)
                or _is_set_expr(model, expr.right, scope, depth + 1))
    if isinstance(expr, ast.Name):
        owner = model.symbols.binding_scope(expr.id, scope)
        if owner is None:
            return False
        annotation = owner.annotations.get(expr.id)
        if annotation is not None and _is_set_annotation(annotation):
            return True
        values = owner.assignments.get(expr.id)
        if values:
            return all(_is_set_expr(model, value, owner, depth + 1)
                       for value in values)
        return False
    return False


@rule("REP009", "nondeterministic-iteration", Severity.ERROR,
      "ordered iteration over an unordered set feeds schedule/merge/"
      "tie-break order",
      marker="order-free", scope="repro/core/, repro/flow/, repro/sim/")
def check_nondeterministic_iteration(model: ModuleModel
                                     ) -> Iterator[LintViolation]:
    if not model.in_packages(("core", "flow", "sim"), require_repro=True):
        return

    def flag(node: ast.AST, what: str) -> LintViolation:
        return _finding(
            model, node, "REP009", "nondeterministic-iteration",
            Severity.ERROR,
            f"{what} iterates an unordered set: string/tuple hashes "
            f"vary per process (PYTHONHASHSEED), so anything fed by "
            f"this order diverges across runs and workers — iterate "
            f"`sorted(...)` with a total key (or mark "
            f"`# lint: order-free` if order provably cannot escape)")

    for node in ast.walk(model.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(model, node.iter, model.scope_of(node.iter)):
                yield flag(node, "for-loop")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            if isinstance(node, ast.SetComp):
                continue  # set -> set keeps the result unordered anyway
            for comp in node.generators:
                if _is_set_expr(model, comp.iter,
                                model.scope_of(comp.iter)):
                    yield flag(node, "comprehension")
        elif isinstance(node, ast.Call):
            dotted = model.resolve_call(node)
            if dotted in _ORDERING_CONSUMERS and len(node.args) >= 1 \
                    and not node.keywords:
                if _is_set_expr(model, node.args[0],
                                model.scope_of(node)):
                    yield flag(node, f"{dotted}(...) materialization")


# ---------------------------------------------------------------------------
# REP010 blocking-call-in-async
# ---------------------------------------------------------------------------

@rule("REP010", "blocking-call-in-async", Severity.ERROR,
      "synchronous sleep/IO inside `async def` stalls the event loop",
      marker="blocking-ok", scope="every module")
def check_blocking_in_async(model: ModuleModel) -> Iterator[LintViolation]:
    for node in model.calls():
        function = model.enclosing_function(node)
        if not isinstance(function, ast.AsyncFunctionDef):
            continue
        dotted = model.resolve_call(node)
        if dotted is None:
            continue
        blocking = (dotted in _BLOCKING_CALLS
                    or any(dotted.startswith(prefix)
                           for prefix in _BLOCKING_PREFIXES))
        if not blocking:
            continue
        hint = ("await asyncio.sleep(...)" if dotted == "time.sleep"
                else "an executor (loop.run_in_executor / asyncio.to_thread)")
        yield _finding(
            model, node, "REP010", "blocking-call-in-async",
            Severity.ERROR,
            f"blocking call `{dotted}` inside `async def "
            f"{function.name}` stalls every other coroutine on the "
            f"loop; use {hint} (or mark `# lint: blocking-ok`)")


# ---------------------------------------------------------------------------
# REP011 counter-discipline
# ---------------------------------------------------------------------------

def _perf_incr_literals(model: ModuleModel) -> Set[str]:
    names: Set[str] = set()
    for node in model.calls():
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "incr" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "PERF" and node.args \
                and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            names.add(node.args[0].value)
    return names


@rule("REP011", "counter-discipline", Severity.WARNING,
      "perf counters must be static literals, and *_hits/*_misses/"
      "*_evictions pairs must be complete per module",
      marker="counter-ok", scope="src/repro/ packages")
def check_counter_discipline(model: ModuleModel
                             ) -> Iterator[LintViolation]:
    if "repro" not in model.path.parts:
        return
    literals = _perf_incr_literals(model)
    for node in model.calls():
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "incr"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "PERF"):
            continue
        if not node.args:
            continue
        name_arg = node.args[0]
        if not (isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)):
            yield _finding(
                model, node, "REP011", "counter-discipline",
                Severity.WARNING,
                "dynamic counter name passed to PERF.incr; counter "
                "names must be static string literals so the "
                "*_hits/*_misses registry convention stays auditable "
                "(or mark `# lint: counter-ok`)")
            continue
        name = name_arg.value
        suffix = next((s for s in _PAIRED_SUFFIXES
                       if name.endswith(s)), None)
        if suffix is None:
            continue
        base = name[: -len(suffix)]
        if suffix == "_evictions":
            required = f"{base}_hits"
        else:
            required = base + ("_misses" if suffix == "_hits" else "_hits")
        if required not in literals:
            yield _finding(
                model, node, "REP011", "counter-discipline",
                Severity.WARNING,
                f"counter `{name}` has no `{required}` partner in this "
                f"module; the {suffix} suffix is reserved for complete "
                f"cache pairs owned by the SchedulingContext (rename "
                f"the counter or add the partner; see "
                f"repro.perf.registry)")


# ---------------------------------------------------------------------------
# REP013 ad-hoc-study-plumbing
# ---------------------------------------------------------------------------

def _is_study_entry(function: ast.AST) -> bool:
    """True for the experiment entry points REP013 audits: ``run*``
    functions and ``*_study`` drivers.  Cell workers and private
    helpers keep returning plain payload dicts by design — that is the
    store's record format."""
    name = getattr(function, "name", "")
    return name.startswith("run") or name.endswith("_study")


@rule("REP013", "ad-hoc-study-plumbing", Severity.WARNING,
      "direct ProcessPoolExecutor construction, or a raw result-dict "
      "returned from a run*/*_study entry point, in experiments/",
      marker="platform-ok", scope="repro/experiments/ package")
def check_ad_hoc_study_plumbing(model: ModuleModel
                                ) -> Iterator[LintViolation]:
    if not model.in_packages(("experiments",), require_repro=True):
        return
    for node in model.calls():
        dotted = model.resolve_call(node)
        if dotted is not None and \
                dotted.split(".")[-1] == "ProcessPoolExecutor":
            yield _finding(
                model, node, "REP013", "ad-hoc-study-plumbing",
                Severity.WARNING,
                "direct ProcessPoolExecutor construction in an "
                "experiment module; fan cells out through the study "
                "platform (StudyGrid.run / repro.platform.fanout_map) "
                "so worker clamping, in-order merge, and the result "
                "store stay in one place (or mark "
                "`# lint: platform-ok`)")
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        function = model.enclosing_function(node)
        if function is None or not _is_study_entry(function):
            continue
        value = node.value
        ad_hoc = isinstance(value, (ast.Dict, ast.DictComp))
        if not ad_hoc and isinstance(value, ast.Call):
            ad_hoc = model.resolve_call(value) == "dict"
        if ad_hoc:
            yield _finding(
                model, node, "REP013", "ad-hoc-study-plumbing",
                Severity.WARNING,
                f"ad-hoc result dict returned from study entry point "
                f"`{getattr(function, 'name', '<lambda>')}`; return a "
                f"typed result (platform Results, an ExperimentTable, "
                f"or rows folded through to_row/from_row) so exports "
                f"stay schema-versioned (or mark `# lint: platform-ok`)")


# ---------------------------------------------------------------------------
# REP012 stale-suppression (engine-implemented meta rule)
# ---------------------------------------------------------------------------

register_meta_rule(
    "REP012", "stale-suppression", Severity.WARNING,
    "a `# lint: <marker>` comment that suppresses nothing (or names no "
    "known marker) is dead sanction debt",
    scope="every module")
