"""Baseline support: adopt-now, ratchet-later workflows.

A baseline file records content-based fingerprints of accepted
findings so a new rule can land with existing debt frozen: ``repro
lint --write-baseline lint-baseline.json`` snapshots today's findings,
``repro lint --baseline lint-baseline.json`` reports only *new* ones.

Fingerprints hash path + rule code + message (not line numbers), so
unrelated edits that shift a finding up or down do not resurface it;
the same finding appearing more times than the baseline recorded does.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Sequence

from .registry import LintViolation

__all__ = ["finding_fingerprint", "write_baseline", "load_baseline",
           "apply_baseline", "BaselineError"]

_BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is missing or malformed."""


def finding_fingerprint(violation: LintViolation) -> str:
    """Line-independent identity of a finding."""
    identity = "|".join((
        violation.path.replace("\\", "/"),
        violation.code,
        violation.message,
    ))
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:20]


def write_baseline(path: Path,
                   violations: Sequence[LintViolation]) -> None:
    counts: Dict[str, int] = {}
    for violation in violations:
        fingerprint = finding_fingerprint(violation)
        counts[fingerprint] = counts.get(fingerprint, 0) + 1
    payload = {"version": _BASELINE_VERSION, "fingerprints": counts}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def load_baseline(path: Path) -> Dict[str, int]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(
            f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or \
            payload.get("version") != _BASELINE_VERSION or \
            not isinstance(payload.get("fingerprints"), dict):
        raise BaselineError(
            f"baseline {path} has an unsupported layout (expected "
            f'{{"version": {_BASELINE_VERSION}, "fingerprints": ...}})')
    return dict(payload["fingerprints"])


def apply_baseline(violations: Sequence[LintViolation],
                   baseline: Dict[str, int]) -> List[LintViolation]:
    """Findings not accounted for by the baseline, order preserved."""
    remaining = dict(baseline)
    kept: List[LintViolation] = []
    for violation in violations:
        fingerprint = finding_fingerprint(violation)
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
        else:
            kept.append(violation)
    return kept
