"""Finding serialization: text, JSON, and SARIF 2.1.0.

SARIF is the CI artifact format (uploadable to code-scanning UIs); the
emitted subset is deliberately small — one run, one tool, physical
locations only — and is validated against a 2.1.0 subset schema in the
test suite.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .baseline import finding_fingerprint
from .registry import LintViolation, Severity, rules_in_order

__all__ = ["render_text", "render_json", "render_sarif", "FORMATS"]

FORMATS = ("text", "json", "sarif")

_TOOL_NAME = "repro-lint"
_TOOL_VERSION = "2.0"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_SARIF_VERSION = "2.1.0"


def render_text(violations: Sequence[LintViolation],
                errors: Sequence[str]) -> str:
    lines = [str(v) for v in violations]
    lines.extend(f"error: {message}" for message in errors)
    if not lines:
        return "repro lint: clean"
    counts = {
        "error": sum(1 for v in violations
                     if v.severity is Severity.ERROR),
        "warning": sum(1 for v in violations
                       if v.severity is Severity.WARNING),
    }
    lines.append(
        f"repro lint: {counts['error']} error(s), "
        f"{counts['warning']} warning(s)"
        + (f", {len(errors)} unparsable file(s)" if errors else ""))
    return "\n".join(lines)


def render_json(violations: Sequence[LintViolation],
                errors: Sequence[str]) -> str:
    payload = {
        "tool": _TOOL_NAME,
        "version": _TOOL_VERSION,
        "findings": [v.as_dict() for v in violations],
        "errors": list(errors),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_rules() -> List[Dict[str, object]]:
    descriptors: List[Dict[str, object]] = []
    for registered in rules_in_order():
        descriptor: Dict[str, object] = {
            "id": registered.code,
            "name": registered.name,
            "shortDescription": {"text": registered.summary},
            "helpUri": registered.docs_url,
            "defaultConfiguration": {
                "level": registered.severity.value},
        }
        if registered.marker is not None:
            descriptor["properties"] = {
                "suppressionMarker": f"# lint: {registered.marker}"}
        descriptors.append(descriptor)
    return descriptors


def render_sarif(violations: Sequence[LintViolation],
                 errors: Sequence[str]) -> str:
    rule_index = {registered.code: index for index, registered
                  in enumerate(rules_in_order())}
    results: List[Dict[str, object]] = []
    for violation in violations:
        results.append({
            "ruleId": violation.code,
            "ruleIndex": rule_index[violation.code],
            "level": violation.severity.value,
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path.replace("\\", "/")},
                    "region": {
                        "startLine": max(violation.line, 1),
                        "startColumn": violation.col + 1,
                    },
                },
            }],
            "partialFingerprints": {
                "reproLint/v1": finding_fingerprint(violation)},
        })
    invocation: Dict[str, object] = {
        "executionSuccessful": not errors,
    }
    if errors:
        invocation["toolExecutionNotifications"] = [
            {"level": "error", "message": {"text": message}}
            for message in errors]
    sarif = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": _TOOL_NAME,
                "version": _TOOL_VERSION,
                "informationUri":
                    "https://github.com/paper-repro/"
                    "conf-pact-toporkov09",
                "rules": _sarif_rules(),
            }},
            "invocations": [invocation],
            "results": results,
        }],
    }
    return json.dumps(sarif, indent=2, sort_keys=True)
