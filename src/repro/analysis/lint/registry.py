"""Rule registry: codes, severities, docs anchors, suppression markers.

Every rule is registered once with the :func:`rule` decorator; the
registry is what the CLI's ``--list-rules``, the SARIF ``tool.driver.
rules`` array, and the documentation catalog are generated from, so a
rule cannot exist without a code, a severity, a one-line summary, and
(unless it is a meta rule like REP012) a suppression marker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, List,
                    Optional, Tuple)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .model import ModuleModel

__all__ = ["Severity", "LintViolation", "Rule", "RULES", "rule",
           "rules_in_order", "DOCS_URL"]

#: Rule catalog anchor base (DESIGN.md carries the authoritative table).
DOCS_URL = "https://github.com/paper-repro/conf-pact-toporkov09/blob/main/DESIGN.md"


class Severity(str, enum.Enum):
    """SARIF-compatible severity levels."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class LintViolation:
    """One finding of the simulator lint.

    The name predates the engine (kept for API compatibility with the
    single-file lint this package replaced); ``str()`` renders the
    stable ``path:line:col: CODE message`` form the CI log greps.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: Severity = Severity.ERROR
    rule_name: str = ""

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "severity": self.severity.value,
            "rule": self.rule_name,
        }


Checker = Callable[["ModuleModel"], Iterable[LintViolation]]


@dataclass(frozen=True)
class Rule:
    """One registered rule and its metadata."""

    code: str
    name: str
    severity: Severity
    summary: str
    #: ``# lint: <marker>`` sanctions a finding on the marker's line or
    #: the line below; None means the rule is not suppressible.
    marker: Optional[str]
    #: What the rule scans (prose; surfaced by ``--list-rules``).
    scope: str
    check: Optional[Checker] = field(default=None, compare=False)

    @property
    def docs_url(self) -> str:
        return f"{DOCS_URL}#{self.code.lower()}-{self.name}"


#: Registered rules by code, in registration (= catalog) order.
RULES: Dict[str, Rule] = {}


def rule(code: str, name: str, severity: Severity, summary: str,
         marker: Optional[str], scope: str) -> Callable[[Checker], Checker]:
    """Class-body decorator registering a checker function as a rule."""

    def decorate(check: Checker) -> Checker:
        if code in RULES:  # pragma: no cover - programming error
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(code=code, name=name, severity=severity,
                           summary=summary, marker=marker, scope=scope,
                           check=check)
        return check

    return decorate


def register_meta_rule(code: str, name: str, severity: Severity,
                       summary: str, scope: str) -> None:
    """Register a rule the engine implements itself (no checker)."""
    RULES[code] = Rule(code=code, name=name, severity=severity,
                       summary=summary, marker=None, scope=scope)


def rules_in_order() -> List[Rule]:
    """Rules sorted by code (REP001, REP002, ...)."""
    return [RULES[code] for code in sorted(RULES)]


def markers_by_name() -> Dict[str, Tuple[Rule, ...]]:
    """Suppression marker name -> the rules it sanctions."""
    table: Dict[str, List[Rule]] = {}
    for registered in RULES.values():
        if registered.marker is not None:
            table.setdefault(registered.marker, []).append(registered)
    return {name: tuple(rules) for name, rules in table.items()}
