"""Command-line front end: ``repro lint`` / ``python -m repro.analysis.lint``.

Exit codes: 0 clean (or error-free without ``--strict``), 1 findings
failed the gate or files failed to parse, 2 usage errors (argparse).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import baseline as baseline_mod
from . import engine, output
from .registry import RULES, Severity, rules_in_order

__all__ = ["add_arguments", "run", "main"]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach lint options (shared by ``repro lint`` and ``-m``)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (directories recurse *.py)")
    parser.add_argument(
        "--format", choices=output.FORMATS, default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="write the report to FILE instead of stdout")
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too, not only errors")
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="suppress findings recorded in this baseline file")
    parser.add_argument(
        "--write-baseline", type=Path, default=None, metavar="FILE",
        help="snapshot current findings to FILE and exit 0")
    parser.add_argument(
        "--select", action="append", default=None, metavar="CODE",
        help="run only these rule codes (repeatable, e.g. "
             "--select REP001)")
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="CODE",
        help="skip these rule codes (repeatable)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")


def _list_rules() -> str:
    lines = []
    for registered in rules_in_order():
        marker = (f"# lint: {registered.marker}"
                  if registered.marker else "(not suppressible)")
        lines.append(f"{registered.code} {registered.name} "
                     f"[{registered.severity}] — {registered.summary}")
        lines.append(f"    scope: {registered.scope}")
        lines.append(f"    suppress: {marker}")
        lines.append(f"    docs: {registered.docs_url}")
    return "\n".join(lines)


def run(args: argparse.Namespace,
        parser: Optional[argparse.ArgumentParser] = None) -> int:
    def usage_error(message: str) -> int:
        if parser is not None:
            parser.error(message)  # raises SystemExit(2)
        print(f"repro lint: error: {message}", file=sys.stderr)
        return 2

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        return usage_error("no paths given (or use --list-rules)")
    try:
        codes = engine.select_codes(args.select, args.ignore)
    except ValueError as exc:
        return usage_error(str(exc))

    violations, errors = engine.lint_paths(args.paths, codes=codes)

    if args.write_baseline is not None:
        baseline_mod.write_baseline(args.write_baseline, violations)
        print(f"repro lint: wrote baseline for {len(violations)} "
              f"finding(s) to {args.write_baseline}")
        return 0

    if args.baseline is not None:
        try:
            known = baseline_mod.load_baseline(args.baseline)
        except baseline_mod.BaselineError as exc:
            return usage_error(str(exc))
        violations = baseline_mod.apply_baseline(violations, known)

    renderers = {"text": output.render_text, "json": output.render_json,
                 "sarif": output.render_sarif}
    report = renderers[args.format](violations, errors)
    if args.output is not None:
        args.output.write_text(report + "\n", encoding="utf-8")
        if args.format != "text":
            # Keep the human-readable verdict on stdout for CI logs.
            print(output.render_text(violations, errors))
    else:
        print(report)

    if errors:
        return 1
    if args.strict:
        return 1 if violations else 0
    has_errors = any(v.severity is Severity.ERROR for v in violations)
    return 1 if has_errors else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & shareability lint for the "
                    "repro scheduling kernel")
    add_arguments(parser)
    args = parser.parse_args(argv)
    return run(args, parser)


# Referenced by docs/tests to keep the catalog and CLI in sync.
ALL_CODES: List[str] = sorted(RULES)
