"""The lint driver: parse -> model -> rules -> suppression -> REP012.

``lint_source``/``lint_path``/``lint_paths`` keep the signatures of the
single-file lint this package replaced, so ``repro analyze`` and the
existing tests keep working unchanged.  New capabilities (rule
selection, baselines, structured output) layer on top without touching
those entry points.
"""

from __future__ import annotations

from pathlib import Path
from typing import (Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple)

from .model import ModuleModel
from .registry import RULES, LintViolation, Severity, markers_by_name
from . import rules as _rules  # noqa: F401  (registers REP001-REP013)

__all__ = ["lint_source", "lint_path", "lint_paths", "iter_python_files",
           "select_codes"]


def select_codes(select: Optional[Sequence[str]] = None,
                 ignore: Optional[Sequence[str]] = None) -> Set[str]:
    """The enabled rule codes after ``--select`` / ``--ignore``."""
    codes: Set[str] = set(RULES)
    if select:
        unknown = set(select) - codes
        if unknown:
            raise ValueError(
                f"unknown rule code(s): {', '.join(sorted(unknown))}")
        codes = set(select)
    if ignore:
        unknown = set(ignore) - set(RULES)
        if unknown:
            raise ValueError(
                f"unknown rule code(s): {', '.join(sorted(unknown))}")
        codes -= set(ignore)
    return codes


def _suppressed_lines(marker: Optional[str],
                      model: ModuleModel) -> Set[int]:
    """Lines a rule's marker sanctions: the marker's own line and the
    line below (marker-above-the-statement style)."""
    lines: Set[int] = set()
    if marker is None:
        return lines
    for occurrence in model.markers:
        if occurrence.name == marker:
            lines.add(occurrence.line)
            lines.add(occurrence.line + 1)
    return lines


def _stale_marker_findings(model: ModuleModel,
                           raw_by_code: Dict[str, List[LintViolation]],
                           codes: Set[str]) -> List[LintViolation]:
    """REP012: markers that name no rule or suppress no finding.

    Staleness is judged against *raw* findings (pre-suppression) of the
    marker's own rules, and only for rules that actually ran — a
    ``--select REP001`` run must not call every other marker stale.
    """
    findings: List[LintViolation] = []
    marker_table = markers_by_name()
    for occurrence in model.markers:
        rules_for_marker = marker_table.get(occurrence.name)
        if rules_for_marker is None:
            findings.append(LintViolation(
                path=model.display_path, line=occurrence.line, col=0,
                code="REP012", message=(
                    f"unknown suppression marker `lint: "
                    f"{occurrence.name}`; known markers: "
                    f"{', '.join(sorted(marker_table))}"),
                severity=Severity.WARNING, rule_name="stale-suppression"))
            continue
        ran = [r for r in rules_for_marker if r.code in codes]
        if not ran:
            continue  # the sanctioned rule was not enabled this run
        covered_lines = {occurrence.line, occurrence.line + 1}
        suppresses = any(
            finding.line in covered_lines
            for registered in ran
            for finding in raw_by_code.get(registered.code, ()))
        if not suppresses:
            findings.append(LintViolation(
                path=model.display_path, line=occurrence.line, col=0,
                code="REP012", message=(
                    f"stale suppression `lint: {occurrence.name}`: no "
                    f"{'/'.join(r.code for r in ran)} finding on this "
                    f"line or the next — delete the marker (sanction "
                    f"debt hides real findings)"),
                severity=Severity.WARNING, rule_name="stale-suppression"))
    return findings


def lint_source(source: str, path: str = "<string>",
                codes: Optional[Set[str]] = None) -> List[LintViolation]:
    """Lint one module's source; raises SyntaxError on unparsable input."""
    if codes is None:
        codes = set(RULES)
    model = ModuleModel(source, path)
    raw_by_code: Dict[str, List[LintViolation]] = {}
    kept: List[LintViolation] = []
    for code in sorted(codes):
        registered = RULES[code]
        if registered.check is None:
            continue  # meta rules run below
        raw = list(registered.check(model))
        raw_by_code[code] = raw
        if not raw:
            continue
        suppressed = _suppressed_lines(registered.marker, model)
        kept.extend(f for f in raw if f.line not in suppressed)
    if "REP012" in codes:
        kept.extend(_stale_marker_findings(model, raw_by_code, codes))
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    return kept


def lint_path(path: Path,
              codes: Optional[Set[str]] = None) -> List[LintViolation]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), codes=codes)


def iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(paths: Iterable[Path],
               codes: Optional[Set[str]] = None
               ) -> Tuple[List[LintViolation], List[str]]:
    """Lint files/directories; returns (findings, parse-error messages)."""
    violations: List[LintViolation] = []
    errors: List[str] = []
    for file_path in iter_python_files(paths):
        try:
            violations.extend(lint_path(file_path, codes=codes))
        except (SyntaxError, ValueError) as exc:
            errors.append(f"{file_path}: {exc}")
        except OSError as exc:
            errors.append(f"{file_path}: {exc}")
    return violations, errors
