"""Determinism & shareability lint for the repro scheduling kernel.

A multi-pass static-analysis engine: per-module symbol table with
import/alias resolution and scope tracking (:mod:`.symbols`), a shared
module model (:mod:`.model`), a rule registry with codes, severities,
docs anchors, and suppression markers (:mod:`.registry`), the REP001–
REP013 rule set (:mod:`.rules`), and structured output in text, JSON,
and SARIF 2.1.0 (:mod:`.output`).

The rule catalog lives in ``DESIGN.md`` (and ``repro lint
--list-rules``); sanction a deliberate exception with ``# lint:
<marker>`` plus a one-line justification on the finding's line or the
line above.  REP012 flags markers that no longer suppress anything.

Public API (compatible with the single-file lint this replaced)::

    from repro.analysis.lint import lint_source, lint_paths, main
"""

from .baseline import (apply_baseline, finding_fingerprint,
                       load_baseline, write_baseline)
from .cli import main
from .engine import (iter_python_files, lint_path, lint_paths,
                     lint_source, select_codes)
from .output import render_json, render_sarif, render_text
from .registry import RULES, LintViolation, Rule, Severity, rules_in_order

__all__ = [
    "LintViolation", "Rule", "RULES", "Severity", "rules_in_order",
    "lint_source", "lint_path", "lint_paths", "iter_python_files",
    "select_codes", "main",
    "render_text", "render_json", "render_sarif",
    "finding_fingerprint", "write_baseline", "load_baseline",
    "apply_baseline",
]
