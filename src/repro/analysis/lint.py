"""Simulator-specific static analysis (AST lint).

Custom rules that generic linters cannot know about, encoding this
repository's reproducibility and modelling conventions:

* **REP001 unseeded-random** — calls into the global ``random.*`` /
  ``numpy.random.*`` state anywhere outside :mod:`repro.sim.rng`.
  Every stochastic draw must flow through a named, seeded
  :class:`~repro.sim.rng.RandomStreams` stream, or experiments stop
  being reproducible.
* **REP002 float-equality** — ``==`` / ``!=`` against a float literal.
  Slot arithmetic mixes integers with performance factors such as 1/3;
  exact float comparison is how off-by-one reservations are born.  Use
  the tolerant helpers in :mod:`repro.core.units` (``EPSILON``,
  ``ceil_units``) or ``math.isclose``.
* **REP003 wall-clock** — ``time.time()`` / ``datetime.now()`` and
  friends inside the ``sim`` package.  The discrete-event kernel owns
  simulated time; reading the host clock there makes runs
  machine-dependent.
* **REP004 mutable-default** — mutable default argument values
  (``[]``, ``{}``, ``set()``, ...).  The dataclass-heavy core shares
  instances across jobs and strategies; an aliased default list is a
  cross-job state leak.
* **REP005 scalar-fit-in-loop** — scalar ``.earliest_fit(...)`` calls
  inside a loop of ``core/dp.py``.  The DP's hot loops must answer
  placement queries through the batched gap-table kernel
  (:mod:`repro.core.placement`) or the interval-witness fit cache; a
  bare per-row ``earliest_fit`` re-bisects the calendar on every
  iteration.  The sanctioned scalar fallback (what-if copy-on-write
  snapshots without materialized gap tables) is marked with a
  ``# lint: scalar-fallback`` comment on the call line or the line
  above it.
* **REP006 stray-cache** — cache state declared outside
  :mod:`repro.core.context` in the ``core``/``flow`` packages: a
  module- or class-level cache dict/set, a cache-named ``self``
  attribute, a cache-named function parameter (cache threading through
  signatures is exactly what the context replaced), or an
  ``object.__setattr__`` smuggling a mutable cache onto a frozen
  object.  "Cache-named" means the lowercase name contains ``cache``,
  ``memo``, ``_tables``, ``_stacks``, or ``matrices``.  Every kernel
  cache must live on :class:`~repro.core.context.SchedulingContext`,
  where invalidation, eviction, and stats are uniform; sanctioned
  exceptions (pure value-keyed memos on immutable objects) carry a
  ``# lint: context-cache`` comment on the line or the line above it.

Run as a module over any file or directory tree::

    python -m repro.analysis.lint src/

Exit status is 1 when any violation is found, 0 otherwise.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = ["LintViolation", "lint_source", "lint_path", "lint_paths", "main"]

#: Files allowed to touch the global numpy/stdlib random state.
_RNG_SANCTUARY = ("sim", "rng.py")

#: Dotted call prefixes that consume unseeded global randomness.
_RANDOM_PREFIXES = ("random.", "numpy.random.")

#: Dotted calls that read the host wall clock.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.monotonic", "time.perf_counter",
    "time.process_time", "time.time_ns", "time.monotonic_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Packages in which REP003 (wall-clock) applies.
_WALL_CLOCK_SCOPE = ("sim",)

#: Constructors whose call produces a fresh mutable object.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})

#: Comment marker sanctioning a scalar ``earliest_fit`` in a DP loop
#: (REP005); effective on the call's line or the line above it.
_SCALAR_FIT_MARKER = "lint: scalar-fallback"

#: Comment marker sanctioning cache state outside the
#: SchedulingContext (REP006); effective on the declaration's line or
#: the line above it.
_CONTEXT_CACHE_MARKER = "lint: context-cache"

#: Lowercase substrings that make a name "cache-named" for REP006.
_CACHE_NAME_HINTS = ("cache", "memo", "_tables", "_stacks", "matrices")

#: Packages in which REP006 (stray-cache) applies.
_CACHE_SCOPE = ("core", "flow")

#: Constructors whose call produces a container REP006 treats as cache
#: storage.
_CACHE_FACTORIES = frozenset({
    "dict", "set", "list", "OrderedDict", "defaultdict",
    "WeakKeyDictionary", "WeakValueDictionary",
})


def _is_cache_scope(path: Path) -> bool:
    """True where REP006 applies: ``repro.core``/``repro.flow`` modules
    other than the context module itself (tests may build scratch
    caches freely)."""
    return ("repro" in path.parts and _in_scope(path, _CACHE_SCOPE)
            and path.parts[-1] != "context.py")


def _is_cache_name(name: str) -> bool:
    lowered = name.lower()
    return any(hint in lowered for hint in _CACHE_NAME_HINTS)


def _is_cache_value(node: ast.expr, aliases: dict[str, str]) -> bool:
    """True when the expression builds a mutable container."""
    if isinstance(node, (ast.Dict, ast.Set, ast.List, ast.DictComp,
                         ast.SetComp, ast.ListComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted_name(node.func, aliases)
        if dotted is not None and \
                dotted.split(".")[-1] in _CACHE_FACTORIES:
            return True
    return False


def _is_dp_module(path: Path) -> bool:
    """True for the DP kernel module (``core/dp.py``), where REP005
    applies."""
    parts = path.parts
    return (len(parts) >= 2 and parts[-1] == "dp.py"
            and parts[-2] == "core")


@dataclass(frozen=True)
class LintViolation:
    """One finding of the custom lint."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _module_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module/object they alias.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``; ``from time
    import time`` maps ``time -> time.time``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for name in node.names:
                aliases[name.asname or name.name] = \
                    f"{node.module}.{name.name}"
    return aliases


def _dotted_name(node: ast.expr, aliases: dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain / name to a normalized dotted string."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    parts[0] = aliases.get(parts[0], parts[0])
    return ".".join(parts)


def _in_scope(path: Path, scope_packages: Sequence[str]) -> bool:
    """True when ``path`` lies inside one of the named packages."""
    return any(package in path.parts for package in scope_packages)


def _is_rng_sanctuary(path: Path) -> bool:
    """True for the one module allowed to seed from global numpy state."""
    parts = path.parts
    return (len(parts) >= 2 and parts[-1] == _RNG_SANCTUARY[1]
            and parts[-2] == _RNG_SANCTUARY[0])


class _Checker(ast.NodeVisitor):
    """Walks one module and accumulates violations."""

    def __init__(self, path: Path, aliases: dict[str, str],
                 sanctioned_lines: Optional[frozenset[int]] = None,
                 cache_sanctioned_lines: Optional[frozenset[int]] = None):
        self.path = path
        self.aliases = aliases
        self.violations: list[LintViolation] = []
        #: Lines carrying the REP005 sanction marker.
        self.sanctioned_lines = sanctioned_lines or frozenset()
        #: Lines carrying the REP006 sanction marker.
        self.cache_sanctioned_lines = cache_sanctioned_lines or frozenset()
        #: Loop nesting depth of the *current* function body; a nested
        #: function starts its own count (its body does not execute
        #: inside the enclosing loop's iteration).  The stack length
        #: doubles as the function nesting depth: length 1 means
        #: module/class level.
        self._loop_depth = [0]

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(LintViolation(
            path=str(self.path), line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), code=code, message=message))

    # REP001 / REP003 -------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func, self.aliases)
        if dotted is not None:
            if not _is_rng_sanctuary(self.path) and any(
                    dotted.startswith(prefix)
                    for prefix in _RANDOM_PREFIXES):
                self._report(
                    node, "REP001",
                    f"unseeded global randomness `{dotted}`; draw from a "
                    f"named repro.sim.rng.RandomStreams stream instead")
            if dotted in _WALL_CLOCK_CALLS and \
                    _in_scope(self.path, _WALL_CLOCK_SCOPE):
                self._report(
                    node, "REP003",
                    f"wall-clock read `{dotted}` inside the simulator; "
                    f"use the discrete-event clock (Environment.now)")
        self._check_scalar_fit(node)
        self._check_cache_setattr(node)
        self.generic_visit(node)

    # REP005 ----------------------------------------------------------

    def _check_scalar_fit(self, node: ast.Call) -> None:
        if not _is_dp_module(self.path) or self._loop_depth[-1] == 0:
            return
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "earliest_fit"):
            return
        if node.lineno in self.sanctioned_lines \
                or node.lineno - 1 in self.sanctioned_lines:
            return
        self._report(
            node, "REP005",
            "scalar earliest_fit inside a DP loop; batch through "
            "repro.core.placement (or mark the sanctioned fallback "
            f"with `# {_SCALAR_FIT_MARKER}`)")

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth[-1] += 1
        self.generic_visit(node)
        self._loop_depth[-1] -= 1

    visit_For = visit_AsyncFor = visit_While = _visit_loop
    visit_ListComp = visit_SetComp = visit_DictComp = _visit_loop
    visit_GeneratorExp = _visit_loop

    # REP002 ----------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, (left, right) in zip(node.ops,
                                     zip(operands, operands[1:])):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if isinstance(side, ast.Constant) and \
                        isinstance(side.value, float):
                    self._report(
                        node, "REP002",
                        f"exact float comparison against {side.value!r}; "
                        f"use repro.core.units.EPSILON or math.isclose")
                    break
        self.generic_visit(node)

    # REP004 ----------------------------------------------------------

    def _check_defaults(self, node: ast.AST,
                        defaults: Iterable[Optional[ast.expr]]) -> None:
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if not mutable and isinstance(default, ast.Call):
                name = _dotted_name(default.func, self.aliases)
                mutable = name in _MUTABLE_FACTORIES
            if mutable:
                self._report(
                    node, "REP004",
                    "mutable default argument; default to None (or a "
                    "dataclasses.field factory) and build inside")

    def _visit_function(
            self,
            node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda",
    ) -> None:
        self._check_defaults(node, node.args.defaults)
        self._check_defaults(node, node.args.kw_defaults)
        self._check_cache_params(node)
        self._loop_depth.append(0)
        self.generic_visit(node)
        self._loop_depth.pop()

    visit_FunctionDef = visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    # REP006 ----------------------------------------------------------

    def _cache_sanctioned(self, node: ast.AST) -> bool:
        lineno = getattr(node, "lineno", 0)
        return (lineno in self.cache_sanctioned_lines
                or lineno - 1 in self.cache_sanctioned_lines)

    def _report_stray_cache(self, node: ast.AST, what: str) -> None:
        self._report(
            node, "REP006",
            f"{what}; kernel caches belong on "
            "repro.core.context.SchedulingContext (or mark a sanctioned "
            f"exception with `# {_CONTEXT_CACHE_MARKER}`)")

    def _check_cache_params(
            self,
            node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda",
    ) -> None:
        if not _is_cache_scope(self.path) or self._cache_sanctioned(node):
            return
        arguments = node.args
        for argument in (list(arguments.posonlyargs) + list(arguments.args)
                         + list(arguments.kwonlyargs)):
            if _is_cache_name(argument.arg):
                self._report_stray_cache(
                    argument,
                    f"cache-named parameter `{argument.arg}` threads cache "
                    f"state through a signature")

    def _check_cache_assign(self, node: "ast.Assign | ast.AnnAssign",
                            targets: Sequence[ast.expr],
                            value: Optional[ast.expr]) -> None:
        if not _is_cache_scope(self.path) or self._cache_sanctioned(node):
            return
        if value is None or not _is_cache_value(value, self.aliases):
            return
        at_top_level = len(self._loop_depth) == 1
        for target in targets:
            if isinstance(target, ast.Name) and at_top_level \
                    and _is_cache_name(target.id):
                self._report_stray_cache(
                    node,
                    f"module/class-level cache container `{target.id}`")
            elif isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self" \
                    and _is_cache_name(target.attr):
                self._report_stray_cache(
                    node,
                    f"cache container assigned to `self.{target.attr}`")

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_cache_assign(node, node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_cache_assign(node, [node.target], node.value)
        self.generic_visit(node)

    def _check_cache_setattr(self, node: ast.Call) -> None:
        if not _is_cache_scope(self.path) or self._cache_sanctioned(node):
            return
        dotted = _dotted_name(node.func, self.aliases)
        if dotted != "object.__setattr__" or len(node.args) != 3:
            return
        name = node.args[1]
        if isinstance(name, ast.Constant) and isinstance(name.value, str) \
                and _is_cache_name(name.value) \
                and _is_cache_value(node.args[2], self.aliases):
            self._report_stray_cache(
                node,
                f"object.__setattr__ smuggles cache container "
                f"`{name.value}` onto a frozen object")


def lint_source(source: str, path: str = "<string>") -> list[LintViolation]:
    """Lint one module's source text."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    sanctioned = frozenset(
        number for number, line in enumerate(lines, start=1)
        if _SCALAR_FIT_MARKER in line)
    cache_sanctioned = frozenset(
        number for number, line in enumerate(lines, start=1)
        if _CONTEXT_CACHE_MARKER in line)
    checker = _Checker(Path(path), _module_aliases(tree), sanctioned,
                       cache_sanctioned)
    checker.visit(tree)
    return sorted(checker.violations,
                  key=lambda v: (v.path, v.line, v.col, v.code))


def lint_path(path: Path) -> list[LintViolation]:
    """Lint one ``.py`` file."""
    return lint_source(path.read_text(encoding="utf-8"), path=str(path))


def lint_paths(paths: Iterable[Path]) -> list[LintViolation]:
    """Lint files and directory trees (``.py`` files, recursively)."""
    violations: list[LintViolation] = []
    for path in paths:
        if path.is_dir():
            violations.extend(
                finding for file in sorted(path.rglob("*.py"))
                for finding in lint_path(file))
        else:
            violations.extend(lint_path(path))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: lint the given paths, print findings, exit 0/1."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments:
        print("usage: python -m repro.analysis.lint PATH [PATH ...]",
              file=sys.stderr)
        return 2
    missing = [argument for argument in arguments
               if not Path(argument).exists()]
    if missing:
        for argument in missing:
            print(f"error: no such file or directory: {argument}",
                  file=sys.stderr)
        return 2
    try:
        violations = lint_paths(Path(argument) for argument in arguments)
    except SyntaxError as error:
        print(f"{error.filename}:{error.lineno}:{error.offset or 0}: "
              f"syntax error: {error.msg}", file=sys.stderr)
        return 1
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} simulator-lint violation(s)")
        return 1
    print("simulator lint: clean")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
